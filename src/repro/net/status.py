"""Failure statuses (Figure 4) and the failure oracle.

The paper adds input actions ``good_p``, ``bad_p``, ``ugly_p`` for each
location p and ``good_{p,q}``, ``bad_{p,q}``, ``ugly_{p,q}`` for each
ordered pair; the status of a location/pair after a finite prefix is the
last such action (default *good*).  The :class:`FailureOracle` is the
runtime embodiment: it records status-change events with their times and
answers status queries, and it is what channels and processors consult.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from collections.abc import Hashable, Iterable

ProcId = Hashable


class FailureStatus(enum.Enum):
    """good: prompt and reliable; bad: stopped/dead; ugly: erratic."""

    GOOD = "good"
    BAD = "bad"
    UGLY = "ugly"


@dataclass(frozen=True)
class StatusEvent:
    """A recorded failure-status change.

    ``target`` is a processor id for per-processor events, or an ordered
    (src, dst) pair for link events.
    """

    time: float
    target: object
    status: FailureStatus

    @property
    def is_link_event(self) -> bool:
        return isinstance(self.target, tuple)


class FailureOracle:
    """Tracks the current failure status of processors and links.

    Defaults are *good* for every processor and every link, matching the
    paper's default choice when no failure-status action has occurred.
    The oracle also keeps the full event history, which the property
    checkers need to locate the stabilisation point l.
    """

    def __init__(self, processors: Iterable[ProcId]) -> None:
        self.processors: tuple[ProcId, ...] = tuple(processors)
        self._proc_status: dict[ProcId, FailureStatus] = {
            p: FailureStatus.GOOD for p in self.processors
        }
        self._link_status: dict[tuple[ProcId, ProcId], FailureStatus] = {}
        self.history: list[StatusEvent] = []
        self._last_change_time: float = 0.0
        self._listeners: list = []

    def add_listener(self, listener) -> None:
        """Register a callback invoked with each :class:`StatusEvent`.

        Layers above the network use this to react to recoveries (e.g.
        the VStoTO runtime drains a processor's deferred enabled actions
        once it is no longer bad)."""
        self._listeners.append(listener)

    def _notify(self, event: StatusEvent) -> None:
        for listener in self._listeners:
            listener(event)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def processor_status(self, p: ProcId) -> FailureStatus:
        return self._proc_status[p]

    def link_status(self, src: ProcId, dst: ProcId) -> FailureStatus:
        return self._link_status.get((src, dst), FailureStatus.GOOD)

    def processor_good(self, p: ProcId) -> bool:
        return self._proc_status[p] is FailureStatus.GOOD

    def processor_bad(self, p: ProcId) -> bool:
        return self._proc_status[p] is FailureStatus.BAD

    def link_good(self, src: ProcId, dst: ProcId) -> bool:
        return self.link_status(src, dst) is FailureStatus.GOOD

    @property
    def last_change_time(self) -> float:
        """Time of the most recent status change (0.0 if none) — the
        candidate stabilisation point l in the conditional properties."""
        return self._last_change_time

    # ------------------------------------------------------------------
    # Updates
    # ------------------------------------------------------------------
    def set_processor(
        self, p: ProcId, status: FailureStatus, time: float = 0.0
    ) -> None:
        if p not in self._proc_status:
            raise KeyError(f"unknown processor {p!r}")
        self._proc_status[p] = status
        event = StatusEvent(time, p, status)
        self.history.append(event)
        self._last_change_time = max(self._last_change_time, time)
        self._notify(event)

    def set_link(
        self, src: ProcId, dst: ProcId, status: FailureStatus, time: float = 0.0
    ) -> None:
        if src not in self._proc_status or dst not in self._proc_status:
            raise KeyError(f"unknown link ({src!r}, {dst!r})")
        self._link_status[(src, dst)] = status
        event = StatusEvent(time, (src, dst), status)
        self.history.append(event)
        self._last_change_time = max(self._last_change_time, time)
        self._notify(event)

    def set_link_pair(
        self, p: ProcId, q: ProcId, status: FailureStatus, time: float = 0.0
    ) -> None:
        """Set both directions of the link between p and q."""
        self.set_link(p, q, status, time)
        self.set_link(q, p, status, time)

    # ------------------------------------------------------------------
    # Scenario helpers
    # ------------------------------------------------------------------
    def apply_partition(
        self, groups: Iterable[Iterable[ProcId]], time: float = 0.0
    ) -> None:
        """Install a *consistent partition*: processors within a group
        are good with good links; links across groups are bad.

        Processors not mentioned in any group are marked bad.  This is
        exactly the premise shape of TO-property / VS-property clause 2:
        all of Q good internally, (p, q) bad whenever p in Q, q outside.
        """
        group_list = [tuple(g) for g in groups]
        member_of: dict[ProcId, int] = {}
        for index, group in enumerate(group_list):
            for p in group:
                if p in member_of:
                    raise ValueError(f"processor {p!r} in two groups")
                member_of[p] = index
        for p in self.processors:
            if p in member_of:
                self.set_processor(p, FailureStatus.GOOD, time)
            else:
                self.set_processor(p, FailureStatus.BAD, time)
        for p in self.processors:
            for q in self.processors:
                if p == q:
                    continue
                same = (
                    p in member_of
                    and q in member_of
                    and member_of[p] == member_of[q]
                )
                status = FailureStatus.GOOD if same else FailureStatus.BAD
                self.set_link(p, q, status, time)

    def is_consistently_partitioned(self, group: Iterable[ProcId]) -> bool:
        """Does ``group`` currently satisfy the premise of the
        conditional properties?  (All members and internal pairs good;
        all links from a member to a non-member bad.)"""
        members = set(group)
        for p in members:
            if not self.processor_good(p):
                return False
            for q in members:
                if p != q and not self.link_good(p, q):
                    return False
            for q in self.processors:
                if q in members:
                    continue
                if self.link_status(p, q) is not FailureStatus.BAD:
                    return False
                if self.link_status(q, p) is not FailureStatus.BAD:
                    return False
        return True
