"""Point-to-point channels over the discrete-event simulator.

Channel behaviour is driven by the failure oracle at *send* time and at
*delivery* time:

- good link: the packet arrives after a delay drawn uniformly from
  (latency_floor, delta]; the paper's model only bounds delay above by
  ``delta``;
- bad link: the packet is dropped;
- ugly link: with probability ``ugly_loss`` the packet is dropped,
  otherwise it arrives after a delay up to ``ugly_max_delay`` — i.e. no
  timing guarantee, which is the paper's "might or might not deliver".

A packet in flight when the link turns bad is also dropped at its
scheduled arrival time (the link "delivers all messages sent while it is
good", so messages straddling a failure may be lost).

Interception middleware
-----------------------

Beyond the oracle, each channel carries an ordered list of *packet
interceptors* — the hook the :mod:`repro.faults` nemesis layer uses to
perturb individual packets (drop, duplicate, delay, reorder-by-holding)
in ways the status oracle does not model.  An interceptor is a callable
``(Packet, PacketFate) -> PacketFate | None``; it sees the fate the
oracle (and any earlier interceptor) decided and may return a replacement
fate, or ``None`` to leave the packet alone.  Interceptors run only for
packets that survived the oracle's send-time verdict, so fault injection
composes with — never masks — the modelled failure statuses.

Drops are accounted per reason in :attr:`Channel.drops` (keys in
:data:`DROP_REASONS`); :attr:`Channel.dropped_count` is the sum.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from collections.abc import Callable, Hashable
from typing import Any

from repro.net.status import FailureOracle, FailureStatus
from repro.sim.engine import Simulator

ProcId = Hashable
DeliveryHandler = Callable[[ProcId, ProcId, Any], None]

#: Structured drop accounting: the oracle's three verdicts plus
#: nemesis-injected drops.
DROP_REASONS = ("bad_at_send", "ugly_loss", "bad_in_flight", "injected")


@dataclass(frozen=True)
class Packet:
    """What an interceptor sees: one send on one directed channel."""

    src: ProcId
    dst: ProcId
    message: Any
    packet_id: int
    sent_at: float


@dataclass(frozen=True)
class PacketFate:
    """The scheduled outcome of a send.

    ``delays`` holds one relative delivery delay per copy that will be
    scheduled — the singleton tuple is a normal delivery, a longer tuple
    means duplication, the empty tuple means the packet is dropped (with
    ``drop_reason`` naming the counter to charge, default "injected").
    """

    delays: tuple[float, ...]
    drop_reason: str | None = None

    @property
    def dropped(self) -> bool:
        return not self.delays


PacketInterceptor = Callable[[Packet, PacketFate], PacketFate | None]


@dataclass(frozen=True)
class ChannelConfig:
    """Timing parameters of the physical links.

    ``delta`` is the paper's bound on good-link delivery delay.
    """

    delta: float = 1.0
    latency_floor: float = 0.0
    ugly_loss: float = 0.5
    ugly_max_delay: float = 50.0

    def __post_init__(self) -> None:
        if self.delta <= 0:
            raise ValueError("delta must be positive")
        if not 0 <= self.latency_floor < self.delta:
            raise ValueError("latency_floor must lie in [0, delta)")
        if not 0 <= self.ugly_loss <= 1:
            raise ValueError("ugly_loss must lie in [0, 1]")


class Channel:
    """The directed channel from ``src`` to ``dst``."""

    def __init__(
        self,
        src: ProcId,
        dst: ProcId,
        simulator: Simulator,
        oracle: FailureOracle,
        config: ChannelConfig,
        rng: random.Random,
        deliver: DeliveryHandler,
    ) -> None:
        self.src = src
        self.dst = dst
        self._sim = simulator
        self._oracle = oracle
        self._config = config
        self._rng = rng
        self._deliver = deliver
        self._interceptors: list[PacketInterceptor] = []
        self._packet_ids = 0
        self.sent_count = 0
        self.delivered_count = 0
        self.drops: dict[str, int] = {reason: 0 for reason in DROP_REASONS}
        # Observability slots (pre-bound by attach_obs; one `is None`
        # branch per send/arrival when no hub is attached).
        self._m_sent = None
        self._m_delivered = None
        self._m_drops: dict[str, Any] | None = None
        self._m_in_flight = None

    @property
    def dropped_count(self) -> int:
        """Total drops across all reasons (legacy aggregate view)."""
        return sum(self.drops.values())

    # ------------------------------------------------------------------
    def attach_obs(self, obs) -> None:
        """Bind per-link metric children: sends, deliveries, per-reason
        drops and an in-flight depth gauge, all labelled by the directed
        link."""
        if obs is None or obs.metrics is None:
            return
        metrics = obs.metrics
        link = f"{self.src}->{self.dst}"
        self._m_sent = metrics.counter(
            "net_packets_sent_total", "packets submitted per link",
            labels=("link",),
        ).labels(link)
        self._m_delivered = metrics.counter(
            "net_packets_delivered_total", "packets handed to the network",
            labels=("link",),
        ).labels(link)
        drops = metrics.counter(
            "net_drops_total", "drops per link and reason",
            labels=("link", "reason"),
        )
        self._m_drops = {
            reason: drops.labels(link, reason) for reason in DROP_REASONS
        }
        self._m_in_flight = metrics.gauge(
            "net_in_flight", "scheduled deliveries not yet arrived",
            labels=("link",),
        ).labels(link)

    def _count_drop(self, reason: str) -> None:
        self.drops[reason] += 1
        if self._m_drops is not None:
            self._m_drops[reason].inc()

    # ------------------------------------------------------------------
    # Interception middleware
    # ------------------------------------------------------------------
    def add_interceptor(self, interceptor: PacketInterceptor) -> None:
        """Append an interceptor to this channel's pipeline."""
        self._interceptors.append(interceptor)

    def remove_interceptor(self, interceptor: PacketInterceptor) -> None:
        self._interceptors.remove(interceptor)

    # ------------------------------------------------------------------
    def send(self, message: Any) -> None:
        """Submit a packet; schedules delivery per the link status."""
        self.sent_count += 1
        if self._m_sent is not None:
            self._m_sent.inc()
        status = self._oracle.link_status(self.src, self.dst)
        if status is FailureStatus.BAD:
            self._count_drop("bad_at_send")
            return
        if status is FailureStatus.GOOD:
            delay = self._rng.uniform(
                self._config.latency_floor, self._config.delta
            )
        else:  # UGLY
            if self._rng.random() < self._config.ugly_loss:
                self._count_drop("ugly_loss")
                return
            delay = self._rng.uniform(0.0, self._config.ugly_max_delay)
        fate = PacketFate((delay,))
        if self._interceptors:
            self._packet_ids += 1
            packet = Packet(
                self.src, self.dst, message, self._packet_ids, self._sim.now
            )
            for interceptor in self._interceptors:
                replacement = interceptor(packet, fate)
                if replacement is not None:
                    fate = replacement
                if fate.dropped:
                    break
        if fate.dropped:
            self._count_drop(fate.drop_reason or "injected")
            return
        for copy_delay in fate.delays:
            self._sim.schedule(max(0.0, copy_delay), lambda: self._arrive(message))
            if self._m_in_flight is not None:
                self._m_in_flight.inc()

    def _arrive(self, message: Any) -> None:
        if self._m_in_flight is not None:
            self._m_in_flight.dec()
        # A packet is lost if the link has gone bad while it was in
        # flight: the good-link guarantee covers only packets whose whole
        # flight happens while the link is good.
        if self._oracle.link_status(self.src, self.dst) is FailureStatus.BAD:
            self._count_drop("bad_in_flight")
            return
        self.delivered_count += 1
        if self._m_delivered is not None:
            self._m_delivered.inc()
        self._deliver(self.src, self.dst, message)
