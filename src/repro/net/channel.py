"""Point-to-point channels over the discrete-event simulator.

Channel behaviour is driven by the failure oracle at *send* time and at
*delivery* time:

- good link: the packet arrives after a delay drawn uniformly from
  (latency_floor, delta]; the paper's model only bounds delay above by
  ``delta``;
- bad link: the packet is dropped;
- ugly link: with probability ``ugly_loss`` the packet is dropped,
  otherwise it arrives after a delay up to ``ugly_max_delay`` — i.e. no
  timing guarantee, which is the paper's "might or might not deliver".

A packet in flight when the link turns bad is also dropped at its
scheduled arrival time (the link "delivers all messages sent while it is
good", so messages straddling a failure may be lost).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Callable, Hashable

from repro.net.status import FailureOracle, FailureStatus
from repro.sim.engine import Simulator

ProcId = Hashable
DeliveryHandler = Callable[[ProcId, ProcId, Any], None]


@dataclass(frozen=True)
class ChannelConfig:
    """Timing parameters of the physical links.

    ``delta`` is the paper's bound on good-link delivery delay.
    """

    delta: float = 1.0
    latency_floor: float = 0.0
    ugly_loss: float = 0.5
    ugly_max_delay: float = 50.0

    def __post_init__(self) -> None:
        if self.delta <= 0:
            raise ValueError("delta must be positive")
        if not 0 <= self.latency_floor < self.delta:
            raise ValueError("latency_floor must lie in [0, delta)")
        if not 0 <= self.ugly_loss <= 1:
            raise ValueError("ugly_loss must lie in [0, 1]")


class Channel:
    """The directed channel from ``src`` to ``dst``."""

    def __init__(
        self,
        src: ProcId,
        dst: ProcId,
        simulator: Simulator,
        oracle: FailureOracle,
        config: ChannelConfig,
        rng: random.Random,
        deliver: DeliveryHandler,
    ) -> None:
        self.src = src
        self.dst = dst
        self._sim = simulator
        self._oracle = oracle
        self._config = config
        self._rng = rng
        self._deliver = deliver
        self.sent_count = 0
        self.delivered_count = 0
        self.dropped_count = 0

    def send(self, message: Any) -> None:
        """Submit a packet; schedules delivery per the link status."""
        self.sent_count += 1
        status = self._oracle.link_status(self.src, self.dst)
        if status is FailureStatus.BAD:
            self.dropped_count += 1
            return
        if status is FailureStatus.GOOD:
            delay = self._rng.uniform(
                self._config.latency_floor, self._config.delta
            )
        else:  # UGLY
            if self._rng.random() < self._config.ugly_loss:
                self.dropped_count += 1
                return
            delay = self._rng.uniform(0.0, self._config.ugly_max_delay)
        self._sim.schedule(delay, lambda: self._arrive(message))

    def _arrive(self, message: Any) -> None:
        # A packet is lost if the link has gone bad while it was in
        # flight: the good-link guarantee covers only packets whose whole
        # flight happens while the link is good.
        if self._oracle.link_status(self.src, self.dst) is FailureStatus.BAD:
            self.dropped_count += 1
            return
        self.delivered_count += 1
        self._deliver(self.src, self.dst, message)
