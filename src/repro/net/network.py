"""The complete-graph network and the processor execution gate.

:class:`Network` owns a directed :class:`~repro.net.channel.Channel` for
every ordered processor pair and dispatches arrivals to registered
:class:`NetworkNode` handlers, subject to the *destination processor's*
failure status:

- a bad processor takes no steps, so arrivals while bad are dropped
  (state is preserved — the paper models crashes as unbounded step
  delays without loss of state, and our scenarios bring processors back
  by marking them good again);
- an ugly processor handles arrivals after an extra random delay;
- a good processor handles arrivals immediately.

Protocol code (the membership/token layer) subclasses or registers a
:class:`NetworkNode` and uses :meth:`Network.send` / broadcast helpers.
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable
from typing import Any

from repro.net.channel import (
    DROP_REASONS,
    Channel,
    ChannelConfig,
    PacketInterceptor,
)
from repro.net.status import FailureOracle, FailureStatus
from repro.sim.engine import Simulator
from repro.sim.rng import RngRegistry

ProcId = Hashable


class NetworkNode:
    """Base class for protocol endpoints attached to the network."""

    def __init__(self, proc_id: ProcId) -> None:
        self.proc_id = proc_id

    def on_message(self, src: ProcId, message: Any) -> None:
        """Handle an arriving message (override)."""
        raise NotImplementedError


class Network:
    """All-pairs network with failure statuses.

    Parameters
    ----------
    processors:
        Processor ids (the paper's totally ordered finite set P); their
        iteration order defines the total order used by protocols.
    simulator, rngs:
        Shared simulation clock and seeded RNG registry.
    config:
        Link timing parameters (delta etc.).
    ugly_proc_max_delay:
        Extra handling delay bound for ugly destination processors.
    """

    def __init__(
        self,
        processors: Iterable[ProcId],
        simulator: Simulator,
        rngs: RngRegistry | None = None,
        config: ChannelConfig | None = None,
        ugly_proc_max_delay: float = 50.0,
    ) -> None:
        self.processors: tuple[ProcId, ...] = tuple(processors)
        if len(set(self.processors)) != len(self.processors):
            raise ValueError("duplicate processor ids")
        self.simulator = simulator
        self.rngs = rngs if rngs is not None else RngRegistry(0)
        self.config = config if config is not None else ChannelConfig()
        self.oracle = FailureOracle(self.processors)
        self._ugly_proc_max_delay = ugly_proc_max_delay
        self._nodes: dict[ProcId, NetworkNode] = {}
        self._channels: dict[tuple[ProcId, ProcId], Channel] = {}
        for src in self.processors:
            for dst in self.processors:
                if src == dst:
                    continue
                rng = self.rngs.stream(f"channel:{src}->{dst}")
                self._channels[(src, dst)] = Channel(
                    src, dst, simulator, self.oracle, self.config, rng,
                    self._on_arrival,
                )
        self.messages_sent = 0
        self.messages_delivered = 0

    # ------------------------------------------------------------------
    def register(self, node: NetworkNode) -> None:
        """Attach a protocol endpoint for its processor id."""
        if node.proc_id not in self.processors:
            raise KeyError(f"unknown processor {node.proc_id!r}")
        self._nodes[node.proc_id] = node

    def node(self, proc_id: ProcId) -> NetworkNode:
        return self._nodes[proc_id]

    def channel(self, src: ProcId, dst: ProcId) -> Channel:
        return self._channels[(src, dst)]

    # ------------------------------------------------------------------
    # Packet interception (the fault-injection middleware hook)
    # ------------------------------------------------------------------
    def add_interceptor(
        self,
        interceptor: PacketInterceptor,
        links: Iterable[tuple[ProcId, ProcId]] | None = None,
    ) -> None:
        """Install ``interceptor`` on every channel (default) or on the
        given directed ``links`` only.  See :mod:`repro.net.channel` for
        the interceptor contract; :mod:`repro.faults` builds on this."""
        targets = (
            self._channels.values()
            if links is None
            else (self._channels[link] for link in links)
        )
        for channel in targets:
            channel.add_interceptor(interceptor)

    def remove_interceptor(self, interceptor: PacketInterceptor) -> None:
        """Remove ``interceptor`` from every channel that carries it."""
        for channel in self._channels.values():
            if interceptor in channel._interceptors:
                channel.remove_interceptor(interceptor)

    def drop_stats(self) -> dict[str, int]:
        """Aggregate per-reason drop counters across all channels."""
        totals = {reason: 0 for reason in DROP_REASONS}
        for channel in self._channels.values():
            for reason, count in channel.drops.items():
                totals[reason] = totals.get(reason, 0) + count
        return totals

    def dropped_total(self) -> int:
        """Aggregate drop count across all channels and reasons."""
        return sum(c.dropped_count for c in self._channels.values())

    # ------------------------------------------------------------------
    def attach_obs(self, obs) -> None:
        """Propagate an observability hub to every channel (per-link
        send/drop/in-flight metrics)."""
        if obs is None:
            return
        for channel in self._channels.values():
            channel.attach_obs(obs)

    # ------------------------------------------------------------------
    def send(self, src: ProcId, dst: ProcId, message: Any) -> None:
        """Send a unicast packet.  A bad source sends nothing (a bad
        processor takes no steps); protocol code normally checks its own
        status before acting, but the gate here is a backstop."""
        if src == dst:
            raise ValueError("self-sends are local; do not use the network")
        if self.oracle.processor_bad(src):
            return
        self.messages_sent += 1
        self._channels[(src, dst)].send(message)

    def broadcast(
        self, src: ProcId, message: Any, include_self: bool = False
    ) -> None:
        """Send to every other processor (and optionally loop back to
        self immediately, which protocols use for symmetric handling)."""
        for dst in self.processors:
            if dst == src:
                continue
            self.send(src, dst, message)
        if include_self and not self.oracle.processor_bad(src):
            self.simulator.call_soon(
                lambda: self._handle_if_alive(src, src, message)
            )

    def multicast(
        self, src: ProcId, dests: Iterable[ProcId], message: Any
    ) -> None:
        for dst in dests:
            if dst != src:
                self.send(src, dst, message)

    # ------------------------------------------------------------------
    def _on_arrival(self, src: ProcId, dst: ProcId, message: Any) -> None:
        status = self.oracle.processor_status(dst)
        if status is FailureStatus.BAD:
            return
        if status is FailureStatus.UGLY:
            delay = self.rngs.stream(f"uglyproc:{dst}").uniform(
                0.0, self._ugly_proc_max_delay
            )
            self.simulator.schedule(
                delay, lambda: self._handle_if_alive(src, dst, message)
            )
            return
        self._handle_if_alive(src, dst, message)

    def _handle_if_alive(self, src: ProcId, dst: ProcId, message: Any) -> None:
        if self.oracle.processor_bad(dst):
            return
        node = self._nodes.get(dst)
        if node is not None:
            self.messages_delivered += 1
            node.on_message(src, message)
