"""Simulated network substrate.

Implements the physical-system model under the Section 8 analysis:

- each processor and each ordered pair of processors has a *failure
  status* in {good, bad, ugly} (Figure 4 of the paper);
- while a link (p, q) is good, every packet sent from p to q arrives
  within time ``delta``;
- while it is bad, no packet is delivered;
- while it is ugly, packets may or may not be delivered, with no timing
  guarantee;
- a good processor takes enabled steps immediately, a bad processor takes
  no steps, an ugly one runs at nondeterministic speed.

:class:`PartitionScenario` scripts failure-status changes over virtual
time — in particular the "stabilise to a consistently partitioned
system" shape that the conditional properties TO-property and
VS-property quantify over.
"""

from repro.net.status import FailureStatus, FailureOracle, StatusEvent
from repro.net.channel import Channel, ChannelConfig
from repro.net.network import Network, NetworkNode
from repro.net.scenarios import PartitionScenario, ScenarioEvent, stable_partition

__all__ = [
    "FailureStatus",
    "FailureOracle",
    "StatusEvent",
    "Channel",
    "ChannelConfig",
    "Network",
    "NetworkNode",
    "PartitionScenario",
    "ScenarioEvent",
    "stable_partition",
]
