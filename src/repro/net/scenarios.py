"""Scripted failure scenarios.

A :class:`PartitionScenario` is a timeline of network layouts — at each
scheduled time the failure oracle is reconfigured to a new consistent
partition (or to chaos: selected links/processors turned ugly).  The
conditional properties of the paper quantify over executions that
*stabilise*: after some point the failure status stops changing and
matches a consistent partition.  Scenario timelines end with such a
final layout, and record its start time so measurements can compute the
stabilisation interval l' relative to it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Hashable, Iterable, Sequence

from repro.net.network import Network
from repro.net.status import FailureStatus

ProcId = Hashable


@dataclass(frozen=True)
class ScenarioEvent:
    """One reconfiguration: at ``time``, install ``groups`` as a
    consistent partition.  Processors in no group become bad.  When
    ``ugly_links`` is non-empty those ordered pairs are made ugly after
    the partition layout is installed (used to model unstable periods).
    """

    time: float
    groups: tuple[tuple[ProcId, ...], ...]
    ugly_links: tuple[tuple[ProcId, ProcId], ...] = ()
    ugly_processors: tuple[ProcId, ...] = ()

    def __post_init__(self) -> None:
        # A consistent partition needs pairwise-disjoint groups (and no
        # processor twice within one group).  Validating here, at
        # construction, catches the mistake before the event is scheduled
        # — by install time the error surfaces mid-run, inside a
        # simulator callback, far from the code that built the scenario.
        seen: set[ProcId] = set()
        for group in self.groups:
            for p in group:
                if p in seen:
                    raise ValueError(
                        f"scenario groups are not pairwise disjoint: "
                        f"processor {p!r} appears more than once in "
                        f"{self.groups!r}"
                    )
                seen.add(p)

    def primary_group(self) -> tuple[ProcId, ...]:
        """The largest group (ties broken by order) — convenient for
        measurements that track the quorum side of a split."""
        return max(self.groups, key=len) if self.groups else ()


@dataclass
class PartitionScenario:
    """An ordered list of scenario events applied to a network."""

    events: list[ScenarioEvent] = field(default_factory=list)

    def add(
        self,
        time: float,
        groups: Sequence[Sequence[ProcId]],
        ugly_links: Iterable[tuple[ProcId, ProcId]] = (),
        ugly_processors: Iterable[ProcId] = (),
    ) -> PartitionScenario:
        event = ScenarioEvent(
            time=time,
            groups=tuple(tuple(g) for g in groups),
            ugly_links=tuple(ugly_links),
            ugly_processors=tuple(ugly_processors),
        )
        if self.events and event.time < self.events[-1].time:
            raise ValueError("scenario events must be in time order")
        self.events.append(event)
        return self

    @property
    def stabilization_time(self) -> float:
        """Time of the last reconfiguration — the point l after which the
        failure status no longer changes."""
        if not self.events:
            return 0.0
        return self.events[-1].time

    @property
    def final_groups(self) -> tuple[tuple[ProcId, ...], ...]:
        if not self.events:
            raise ValueError("empty scenario")
        return self.events[-1].groups

    def install(self, network: Network) -> None:
        """Schedule every event on the network's simulator."""
        for event in self.events:
            network.simulator.schedule_at(
                event.time, lambda e=event: self._apply(network, e)
            )

    @staticmethod
    def _apply(network: Network, event: ScenarioEvent) -> None:
        now = network.simulator.now
        network.oracle.apply_partition(event.groups, time=now)
        for src, dst in event.ugly_links:
            network.oracle.set_link(src, dst, FailureStatus.UGLY, time=now)
        for p in event.ugly_processors:
            network.oracle.set_processor(p, FailureStatus.UGLY, time=now)


def stable_partition(
    processors: Sequence[ProcId],
    groups: Sequence[Sequence[ProcId]] | None = None,
    at: float = 0.0,
) -> PartitionScenario:
    """A scenario with a single layout: everyone in one group by default,
    or the given grouping, installed at time ``at`` and stable forever."""
    if groups is None:
        groups = [list(processors)]
    return PartitionScenario().add(at, groups)
