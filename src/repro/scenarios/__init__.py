"""The scenario-exploration engine: directed fault journeys,
protocol-state coverage, and violating-schedule shrinking.

Random chaos (:mod:`repro.faults`, experiment E18) samples the fault
space blindly; this package directs it:

- :mod:`~repro.scenarios.dsl` — a declarative scenario DSL: named
  journeys (partition shapes, crash-during-state-exchange,
  token-loss-during-view-change, timer-skew storms) serialized as JSON
  scenario files, compiling to :class:`repro.faults.FaultSchedule`
  windows — including windows keyed to *protocol events* via the
  trigger hook of :mod:`repro.faults.triggers`;
- :mod:`~repro.scenarios.coverage` — which VStoTO statuses, Fig. 9
  status edges, view-transition edges, and fault×state pairs a run
  actually visited, mergeable across parallel sweeps;
- :mod:`~repro.scenarios.shrink` — delta-debugging over fault windows:
  a failing scenario is reduced to a minimal reproduction that
  deterministically re-runs to the same verdict;
- ``python -m repro.scenarios`` — run / coverage / shrink CLI.

Experiment E23 (``benchmarks/bench_scenarios.py``) gates the directed
suite's coverage against the equal-budget random baseline.
"""

from repro.scenarios.coverage import CoverageReport, CoverageTracker
from repro.scenarios.dsl import (
    JOURNEYS,
    ScenarioOutcome,
    ScenarioSpec,
    build_journey,
    journey_suite,
    run_scenario,
    verdict_of,
)
from repro.scenarios.runner import run_scenario_sweep
from repro.scenarios.shrink import ShrinkResult, shrink_scenario

__all__ = [
    "JOURNEYS",
    "CoverageReport",
    "CoverageTracker",
    "ScenarioOutcome",
    "ScenarioSpec",
    "ShrinkResult",
    "build_journey",
    "journey_suite",
    "run_scenario",
    "run_scenario_sweep",
    "shrink_scenario",
    "verdict_of",
]
