"""Parallel scenario execution (the directed counterpart of
:func:`repro.faults.chaos.run_chaos_sweep`).

Scenario runs are isolated seeded simulations, so they fan out over
worker processes exactly like random chaos soaks; results come back in
input order with the same worker-count-independence contract as
:mod:`repro.parallel` (``workers=1`` is the inline reference path).
"""

from __future__ import annotations

from typing import Any

from repro.parallel import parallel_map
from repro.scenarios.dsl import ScenarioOutcome, ScenarioSpec, run_scenario


def _scenario_worker(spec_dict: dict[str, Any]) -> ScenarioOutcome:
    """Module-level so it pickles into worker processes."""
    return run_scenario(ScenarioSpec.from_dict(spec_dict))


def run_scenario_sweep(
    specs: list[ScenarioSpec], *, workers: int = 1
) -> list[ScenarioOutcome]:
    """Run every scenario, optionally across worker processes, returning
    outcomes in input order (independent of worker count)."""
    return parallel_map(
        _scenario_worker, [s.to_dict() for s in specs], workers=workers
    )
