"""Protocol-state coverage: which VStoTO edges did a run exercise?

Random chaos (E18) samples the fault space blindly — it can tell you a
run *passed*, not which of the paper's protocol states it visited.  This
module makes coverage first-class:

- :class:`CoverageTracker` rides the passive listener hooks
  (:meth:`~repro.core.vstoto.runtime.VStoTORuntime.add_status_listener`,
  :meth:`~repro.membership.service.TokenRingVS.add_vs_listener`) and
  records, per run, the VStoTO statuses entered, the Fig. 9 status
  edges (``normal->send``, ``send->collect``, ``collect->normal``, and
  the rare ``collect->send`` when a view change lands mid state
  exchange), the view-transition edges (grow/shrink/shift, split by
  whether the installed view is primary), and the fault×status pairs
  (which nemesis kinds were active while a processor sat in each
  status);
- :class:`CoverageReport` is the JSON-shaped, mergeable summary wired
  into :class:`~repro.faults.chaos.ChaosReport` and the sweep envelopes,
  so ``run_chaos_sweep`` reports protocol-state coverage — identical at
  any worker count — and the E23 bench can compare directed journeys
  against the equal-budget random baseline.

The tracker is a pure observer: it draws no randomness and schedules no
simulator events, so attaching it never perturbs an execution (the same
contract as the lifecycle tracer, enforced by the zero-perturbation
goldens).

Fault×status pairs are reconstructed *at report time* from the recorded
status timeline crossed with the fault windows — recording them live
would require polling, and polling would mean scheduled events.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from math import inf
from collections.abc import Hashable, Iterable
from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:
    from repro.core.vstoto.runtime import VStoTORuntime

ProcId = Hashable


@dataclass(frozen=True)
class CoverageReport:
    """Mergeable protocol-state coverage over one or more runs.

    All edge sets are sorted tuples of strings — JSON-stable, digestable
    with :func:`repro.parallel.canonical_digest`, and mergeable by set
    union via :meth:`merge` (or, in dict form, by
    :func:`repro.parallel.merge_coverage_dicts`).
    """

    #: number of runs merged into this report
    runs: int = 1
    #: VStoTO statuses entered ("normal"/"send"/"collect")
    statuses: tuple[str, ...] = ()
    #: Fig. 9 status transitions, as "old->new"
    status_edges: tuple[str, ...] = ()
    #: view transitions, as "kind:primariness" (kind in grow/shrink/
    #: shift, primariness of the newly installed view)
    view_edges: tuple[str, ...] = ()
    #: sized view transitions, as "|old|->|new|:primariness" — the
    #: membership-cardinality abstraction of the view graph the paper's
    #: Figs. 8–10 walk (which component sizes actually formed, and
    #: whether the installed view kept a quorum)
    view_transitions: tuple[str, ...] = ()
    #: nemesis kinds active while some processor sat in a status, as
    #: "kind@status"
    fault_status_pairs: tuple[str, ...] = ()
    #: protocol-event-triggered windows that actually opened
    triggered_windows: int = 0

    @property
    def protocol_edges(self) -> int:
        """The E23 headline number: distinct status edges plus view
        edges, counting sized view transitions."""
        return (
            len(self.status_edges)
            + len(self.view_edges)
            + len(self.view_transitions)
        )

    def merge(self, other: CoverageReport) -> CoverageReport:
        return CoverageReport(
            runs=self.runs + other.runs,
            statuses=_union(self.statuses, other.statuses),
            status_edges=_union(self.status_edges, other.status_edges),
            view_edges=_union(self.view_edges, other.view_edges),
            view_transitions=_union(
                self.view_transitions, other.view_transitions
            ),
            fault_status_pairs=_union(
                self.fault_status_pairs, other.fault_status_pairs
            ),
            triggered_windows=self.triggered_windows
            + other.triggered_windows,
        )

    @classmethod
    def merge_all(cls, reports: Iterable[CoverageReport]) -> CoverageReport:
        merged = cls(runs=0)
        for report in reports:
            merged = merged.merge(report)
        return merged

    def to_dict(self) -> dict[str, Any]:
        return {
            "runs": self.runs,
            "statuses": list(self.statuses),
            "status_edges": list(self.status_edges),
            "view_edges": list(self.view_edges),
            "view_transitions": list(self.view_transitions),
            "fault_status_pairs": list(self.fault_status_pairs),
            "triggered_windows": self.triggered_windows,
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> CoverageReport:
        return cls(
            runs=data.get("runs", 1),
            statuses=tuple(sorted(data.get("statuses", ()))),
            status_edges=tuple(sorted(data.get("status_edges", ()))),
            view_edges=tuple(sorted(data.get("view_edges", ()))),
            view_transitions=tuple(
                sorted(data.get("view_transitions", ()))
            ),
            fault_status_pairs=tuple(
                sorted(data.get("fault_status_pairs", ()))
            ),
            triggered_windows=data.get("triggered_windows", 0),
        )


def _union(a: tuple[str, ...], b: tuple[str, ...]) -> tuple[str, ...]:
    return tuple(sorted(set(a) | set(b)))


@dataclass
class _Window:
    kind: str
    start: float
    stop: float


class CoverageTracker:
    """Record one run's protocol-state coverage from the passive hooks.

    Construct after the runtime (``ChaosRunner`` does this
    automatically); call :meth:`note_window` for every fault window —
    timed ones at install, triggered ones via
    :meth:`~repro.faults.triggers.ProtocolEventHub.add_window_observer`
    — then :meth:`report` after the run.
    """

    def __init__(self, runtime: VStoTORuntime) -> None:
        self.runtime = runtime
        service = runtime.service
        self._quorums = runtime.quorums
        self._statuses: set[str] = set()
        self._status_edges: set[str] = set()
        self._view_edges: set[str] = set()
        self._view_transitions: set[str] = set()
        self._windows: list[_Window] = []
        self._triggered = 0
        #: per-proc status timeline as [(since, status), ...]
        self._timeline: dict[ProcId, list[tuple[float, str]]] = {}
        self._members: dict[ProcId, frozenset[ProcId]] = {}
        for p in runtime.processors:
            status = runtime.procs[p].status.value
            self._statuses.add(status)
            self._timeline[p] = [(0.0, status)]
            if p in service.initial_view.set:
                self._members[p] = service.initial_view.set
        runtime.add_status_listener(self._on_status_edge)
        service.add_vs_listener(self._on_vs_event)

    # ------------------------------------------------------------------
    # Feeds (pure observers)
    # ------------------------------------------------------------------
    def _on_status_edge(
        self, time: float, p: ProcId, old: str, new: str
    ) -> None:
        self._statuses.add(new)
        self._status_edges.add(f"{old}->{new}")
        self._timeline[p].append((time, new))

    def _on_vs_event(
        self, time: float, name: str, args: tuple[Any, ...]
    ) -> None:
        if name != "newview":
            return
        view, p = args
        previous = self._members.get(p)
        self._members[p] = view.set
        if previous is None or previous == view.set:
            return
        if previous < view.set:
            kind = "grow"
        elif view.set < previous:
            kind = "shrink"
        else:
            kind = "shift"
        primariness = (
            "primary" if self._quorums.is_primary(view.set) else "non_primary"
        )
        self._view_edges.add(f"{kind}:{primariness}")
        self._view_transitions.add(
            f"{len(previous)}->{len(view.set)}:{primariness}"
        )

    def note_window(self, kind: str, start: float, stop: float) -> None:
        """A fault window of spec ``kind`` was active over
        [``start``, ``stop``); triggered windows count separately."""
        self._windows.append(_Window(kind, start, stop))

    def note_triggered_window(
        self, kind: str, start: float, stop: float
    ) -> None:
        self._triggered += 1
        self.note_window(kind, start, stop)

    # ------------------------------------------------------------------
    def report(self) -> CoverageReport:
        """The run's coverage; call after the run completes."""
        pairs: set[str] = set()
        for p in sorted(self._timeline, key=str):
            timeline = self._timeline[p]
            for i, (since, status) in enumerate(timeline):
                until = timeline[i + 1][0] if i + 1 < len(timeline) else inf
                for window in self._windows:
                    if window.start < until and since < window.stop:
                        pairs.add(f"{window.kind}@{status}")
        return CoverageReport(
            runs=1,
            statuses=tuple(sorted(self._statuses)),
            status_edges=tuple(sorted(self._status_edges)),
            view_edges=tuple(sorted(self._view_edges)),
            view_transitions=tuple(sorted(self._view_transitions)),
            fault_status_pairs=tuple(sorted(pairs)),
            triggered_windows=self._triggered,
        )
