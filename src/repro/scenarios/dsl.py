"""The scenario DSL: named, serializable fault journeys.

A :class:`ScenarioSpec` is a complete, declarative description of one
directed chaos experiment: processor count, seed, workload size, settle
time, and a serialized :class:`~repro.faults.FaultSchedule` (timed
windows plus protocol-event-triggered windows).  Specs round-trip
through JSON (:meth:`ScenarioSpec.save` / :meth:`ScenarioSpec.load`), so
a journey, a shrunk minimal reproduction, and a CI artifact are all the
same kind of file.

The built-in journeys (:data:`JOURNEYS`) are the directed counterparts
of the paper's interesting interleavings:

- ``majority_split`` — one windowed partition into a quorum side and a
  minority side, then heal (Fig. 6 view-change edges, primary and
  non-primary installations);
- ``flapping_link`` — a link that drops everything in short repeated
  bursts (spurious formations, Fig. 8 recovery edges);
- ``cascade`` — a sequence of deepening partitions, each reshaping
  membership before the last formation settled;
- ``crash_during_state_exchange`` — a partition forces a re-formation,
  and the moment any member enters state exchange (status ``collect``,
  Fig. 9) a processor is crash-restarted;
- ``token_loss_during_view_change`` — total token loss opens the moment
  a new view is installed, stalling the ring's liveness core mid
  transition;
- ``timer_skew_storm`` — overlapping fast and slow clock windows plus
  background loss (spurious watchdog formations under degraded links);
- ``split_ladder`` / ``heal_ladder`` — staged partitions that walk the
  view-size lattice edge by edge (peel to singletons; regrow through
  pairs, a pair swap, and a rotated near-full quorum), so every
  cardinality transition and same-size shift in the Figs. 8–10 view
  graph is visited *deterministically* rather than sampled.

Journeys that need a *protocol-state* cue embed a partition window to
force the view change, then hang a triggered window off the resulting
``status_enter``/``newview`` event — wall-clock guessing is exactly
what the trigger hook exists to avoid.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, replace
from pathlib import Path
from collections.abc import Callable, Hashable, Sequence
from typing import TYPE_CHECKING, Any

from repro.faults import (
    CrashRestartInjector,
    FaultSchedule,
    PacketLossInjector,
    PartitionInjector,
    TimerSkewInjector,
    TokenLossInjector,
    TriggerSpec,
)
from repro.faults.chaos import ChaosReport, ChaosRunner

if TYPE_CHECKING:
    from repro.obs import Observability

ProcId = Hashable


@dataclass(frozen=True)
class ScenarioSpec:
    """One complete, serializable scenario."""

    name: str
    #: serialized :class:`FaultSchedule` (``FaultSchedule.to_dict()``)
    schedule: dict[str, Any]
    #: processor count; the run uses ids ``1..processors``
    processors: int = 5
    seed: int = 0
    #: client values submitted before the horizon
    sends: int = 8
    #: extra virtual time after stabilisation for recovery
    settle: float = 400.0
    description: str = ""

    def __post_init__(self) -> None:
        if self.processors < 1:
            raise ValueError("scenario needs at least one processor")
        if self.sends < 0 or self.settle < 0:
            raise ValueError("sends/settle must be >= 0")
        # Validate the schedule eagerly: a bad scenario file should fail
        # at load time with a clear error, not mid-run.
        self.build_schedule()

    @property
    def proc_ids(self) -> tuple[int, ...]:
        return tuple(range(1, self.processors + 1))

    def build_schedule(self) -> FaultSchedule:
        """A fresh :class:`FaultSchedule` (injectors bind once, so every
        run — and every shrink candidate — gets its own instances)."""
        return FaultSchedule.from_dict(self.schedule)

    # ------------------------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "description": self.description,
            "processors": self.processors,
            "seed": self.seed,
            "sends": self.sends,
            "settle": self.settle,
            "schedule": self.schedule,
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> ScenarioSpec:
        return cls(
            name=data["name"],
            schedule=data["schedule"],
            processors=data.get("processors", 5),
            seed=data.get("seed", 0),
            sends=data.get("sends", 8),
            settle=data.get("settle", 400.0),
            description=data.get("description", ""),
        )

    def save(self, path: str | Path) -> None:
        Path(path).write_text(
            json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n"
        )

    @classmethod
    def load(cls, path: str | Path) -> ScenarioSpec:
        return cls.from_dict(json.loads(Path(path).read_text()))

    def with_schedule(self, schedule: dict[str, Any]) -> ScenarioSpec:
        return replace(self, schedule=schedule)


@dataclass
class ScenarioOutcome:
    """One scenario run: the spec, the full chaos report, the verdict."""

    spec: ScenarioSpec
    report: ChaosReport
    verdict: str = field(init=False)

    def __post_init__(self) -> None:
        self.verdict = verdict_of(self.report)


def verdict_of(report: ChaosReport) -> str:
    """The failure class of a run — what the shrinker must preserve.

    ``violation`` (VS-level, including forced ones) dominates
    ``to_failure`` (TO trace check), which dominates ``incomplete``
    (values not delivered everywhere after settle); a clean run is
    ``ok``.
    """
    if report.violations:
        return "violation"
    if not report.to_ok:
        return "to_failure"
    if not report.delivered_complete:
        return "incomplete"
    return "ok"


def run_scenario(
    spec: ScenarioSpec, *, obs: Observability | None = None
) -> ScenarioOutcome:
    """Execute one scenario end-to-end under the full chaos harness
    (online VS monitor, TO trace check, coverage tracking)."""
    runner = ChaosRunner(
        spec.proc_ids,
        spec.build_schedule(),
        seed=spec.seed,
        sends=spec.sends,
        settle=spec.settle,
        obs=obs,
    )
    return ScenarioOutcome(spec=spec, report=runner.run())


# ----------------------------------------------------------------------
# Built-in journeys
# ----------------------------------------------------------------------
JourneyBuilder = Callable[[tuple[int, ...], int], ScenarioSpec]


def _spec(
    name: str,
    description: str,
    procs: tuple[int, ...],
    seed: int,
    schedule: FaultSchedule,
) -> ScenarioSpec:
    return ScenarioSpec(
        name=f"{name}@{seed}",
        description=description,
        processors=len(procs),
        seed=seed,
        schedule=schedule.to_dict(),
    )


def _majority_split(procs: tuple[int, ...], seed: int) -> ScenarioSpec:
    half = len(procs) // 2 + 1
    schedule = FaultSchedule(horizon=200.0)
    schedule.add(
        PartitionInjector(
            "split", groups=[list(procs[:half]), list(procs[half:])]
        ),
        40.0,
        120.0,
    )
    return _spec(
        "majority_split",
        "quorum/minority partition for 80 time units, then heal",
        procs,
        seed,
        schedule,
    )


def _flapping_link(procs: tuple[int, ...], seed: int) -> ScenarioSpec:
    a, b = procs[0], procs[1]
    schedule = FaultSchedule(horizon=200.0)
    flap = PacketLossInjector("flap", rate=1.0, links=((a, b), (b, a)))
    for start in (40.0, 64.0, 88.0, 112.0):
        schedule.add(flap, start, start + 12.0)
    return _spec(
        "flapping_link",
        f"link {a}<->{b} drops everything in four 12-unit bursts",
        procs,
        seed,
        schedule,
    )


def _cascade(procs: tuple[int, ...], seed: int) -> ScenarioSpec:
    schedule = FaultSchedule(horizon=220.0)
    for i, (start, stop) in enumerate(
        ((40.0, 88.0), (92.0, 140.0), (144.0, 180.0)), start=1
    ):
        depth = min(i, len(procs) - 1)
        schedule.add(
            PartitionInjector(
                f"cut{i}",
                groups=[list(procs[:depth]), list(procs[depth:])],
            ),
            start,
            stop,
        )
    return _spec(
        "cascade",
        "three successive partitions, each reshaping membership "
        "before the previous formation settled",
        procs,
        seed,
        schedule,
    )


def _crash_during_state_exchange(
    procs: tuple[int, ...], seed: int
) -> ScenarioSpec:
    half = len(procs) // 2 + 1
    schedule = FaultSchedule(horizon=200.0)
    schedule.add(
        PartitionInjector(
            "warm-split", groups=[list(procs[:half]), list(procs[half:])]
        ),
        40.0,
        80.0,
    )
    schedule.add_triggered(
        CrashRestartInjector(
            "crash-se", min_down=20.0, max_down=20.0, targets=procs
        ),
        TriggerSpec(
            event="status_enter", status="collect", duration=25.0, after=38.0
        ),
    )
    return _spec(
        "crash_during_state_exchange",
        "partition forces a re-formation; the moment any member enters "
        "state exchange (status collect) a processor crash-restarts",
        procs,
        seed,
        schedule,
    )


def _token_loss_during_view_change(
    procs: tuple[int, ...], seed: int
) -> ScenarioSpec:
    half = len(procs) // 2 + 1
    schedule = FaultSchedule(horizon=200.0)
    schedule.add(
        PartitionInjector(
            "vc-split", groups=[list(procs[:half]), list(procs[half:])]
        ),
        40.0,
        80.0,
    )
    schedule.add_triggered(
        TokenLossInjector("tl-vc", rate=1.0),
        TriggerSpec(event="newview", duration=30.0, after=42.0),
    )
    return _spec(
        "token_loss_during_view_change",
        "total token loss opens the moment a new view is installed",
        procs,
        seed,
        schedule,
    )


#: one ladder stage: long enough for detection (π) plus formation (μ)
#: at the default ring timings, with a 1-unit gap so a stage's heal
#: never races the next stage's cut at the same timestamp.
_STAGE = 60.0
_GAP = 1.0


def _staged(
    schedule: FaultSchedule,
    name: str,
    stages: Sequence[Sequence[Sequence[int]]],
) -> float:
    """Install consecutive partition stages; returns the last stop."""
    start = 40.0
    stop = start
    for i, groups in enumerate(stages, start=1):
        stop = start + _STAGE
        schedule.add(
            PartitionInjector(
                f"{name}{i}", groups=[list(g) for g in groups]
            ),
            start,
            stop,
        )
        start = stop + _GAP
    return stop


def _split_ladder(procs: tuple[int, ...], seed: int) -> ScenarioSpec:
    """Peel one processor off per stage: n -> n-1 -> ... -> 1, heal.

    Walks the shrink half of the view-size lattice edge by edge — every
    ``k -> k-1`` installation plus the singleton drops — deterministic
    coverage of transitions random churn only samples."""
    n = len(procs)
    stages = [
        [procs[: n - k]] + [(p,) for p in procs[n - k :]]
        for k in range(1, n)
    ]
    schedule = FaultSchedule()
    last = _staged(schedule, "peel", stages)
    schedule.explicit_horizon = last + 80.0
    return _spec(
        "split_ladder",
        "peel one processor per stage down to singletons, then heal",
        procs,
        seed,
        schedule,
    )


def _heal_ladder(procs: tuple[int, ...], seed: int) -> ScenarioSpec:
    """Reassemble from singletons: a triple, pairs, shifted pairs, an
    n-1 group, a rotated n-1 group, then full heal.

    The grow half of the lattice plus the same-size ``shift``
    reconfigurations (pair swap, quorum rotation) that need two
    disjoint same-cardinality memberships in a row."""
    n = len(procs)
    singles = [(p,) for p in procs]
    triple = [procs[:3]] + [(p,) for p in procs[3:]]
    pairs = [procs[i : i + 2] for i in range(0, n - 1, 2)]
    if n % 2:
        pairs.append((procs[-1],))
    stages: list[list[Sequence[int]]] = [singles, triple, pairs]
    if n >= 4:
        # Swap pair partners: every pair member sees a same-size,
        # different-set installation (shift:non_primary).
        swapped = [(procs[0], procs[2]), (procs[1], procs[3])]
        swapped += [
            (p,) for p in procs[4:]
        ]
        stages.append(swapped)
    stages.append([procs[:-1], (procs[-1],)])
    stages.append([procs[1:], (procs[0],)])
    schedule = FaultSchedule()
    last = _staged(schedule, "join", stages)
    schedule.explicit_horizon = last + 80.0
    return _spec(
        "heal_ladder",
        "regrow from singletons through a triple, pairs, a pair swap, "
        "and a rotated near-full quorum, then heal",
        procs,
        seed,
        schedule,
    )


def _timer_skew_storm(procs: tuple[int, ...], seed: int) -> ScenarioSpec:
    schedule = FaultSchedule(horizon=200.0)
    schedule.add(
        TimerSkewInjector("skew-fast", skew_min=0.5, skew_max=0.7),
        40.0,
        120.0,
    )
    schedule.add(
        TimerSkewInjector("skew-slow", skew_min=1.4, skew_max=1.8),
        60.0,
        140.0,
    )
    schedule.add(PacketLossInjector("storm-loss", rate=0.1), 50.0, 130.0)
    return _spec(
        "timer_skew_storm",
        "overlapping fast and slow clock windows over lossy links",
        procs,
        seed,
        schedule,
    )


#: name -> builder for every built-in journey.
JOURNEYS: dict[str, JourneyBuilder] = {
    "majority_split": _majority_split,
    "flapping_link": _flapping_link,
    "cascade": _cascade,
    "crash_during_state_exchange": _crash_during_state_exchange,
    "token_loss_during_view_change": _token_loss_during_view_change,
    "timer_skew_storm": _timer_skew_storm,
    "split_ladder": _split_ladder,
    "heal_ladder": _heal_ladder,
}


def build_journey(
    name: str, *, processors: int = 5, seed: int = 0
) -> ScenarioSpec:
    """Instantiate a built-in journey for a processor count and seed."""
    if name not in JOURNEYS:
        raise ValueError(
            f"unknown journey {name!r}; known: {sorted(JOURNEYS)}"
        )
    if processors < 3:
        raise ValueError("journeys need at least 3 processors")
    return JOURNEYS[name](tuple(range(1, processors + 1)), seed)


def journey_suite(
    *, processors: int = 5, seeds: Sequence[int] = (0,)
) -> list[ScenarioSpec]:
    """Every journey at every seed — the E23 directed suite."""
    return [
        build_journey(name, processors=processors, seed=seed)
        for name in sorted(JOURNEYS)
        for seed in seeds
    ]
