"""``python -m repro.scenarios`` — run, measure, shrink.

Subcommands:

- ``list`` — the built-in journeys and what they exercise;
- ``run`` — execute a scenario file (or a named journey) under the full
  chaos harness and report verdict, recovery and coverage;
- ``coverage`` — run the journey suite (optionally in parallel) and
  print the merged protocol-state coverage report, optionally next to
  an equal-budget random-chaos baseline (the E23 comparison);
- ``shrink`` — delta-debug a failing scenario file down to a minimal
  reproduction and write it back out as a scenario file.
"""

from __future__ import annotations

import argparse
import json
import sys
from collections.abc import Sequence
from typing import Any

from repro.faults.chaos import run_chaos_sweep
from repro.parallel import merge_coverage_dicts
from repro.scenarios.coverage import CoverageReport
from repro.scenarios.dsl import (
    JOURNEYS,
    ScenarioSpec,
    build_journey,
    journey_suite,
    run_scenario,
)
from repro.scenarios.runner import run_scenario_sweep
from repro.scenarios.shrink import shrink_scenario


def _load_spec(args: argparse.Namespace) -> ScenarioSpec:
    if args.journey is not None:
        return build_journey(
            args.journey, processors=args.procs, seed=args.seed
        )
    if args.file is None:
        raise SystemExit("need a scenario FILE or --journey NAME")
    return ScenarioSpec.load(args.file)


def _cmd_list(args: argparse.Namespace) -> int:
    for name in sorted(JOURNEYS):
        spec = build_journey(name, processors=5, seed=0)
        print(f"{name:32s} {spec.description}")
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    spec = _load_spec(args)
    outcome = run_scenario(spec)
    report = outcome.report
    if args.json:
        print(
            json.dumps(
                {
                    "scenario": spec.to_dict(),
                    "verdict": outcome.verdict,
                    "violations": report.violations,
                    "to_ok": report.to_ok,
                    "delivered_complete": report.delivered_complete,
                    "recovery_time": report.recovery_time,
                    "coverage": report.coverage,
                },
                indent=2,
                sort_keys=True,
            )
        )
    else:
        print(f"scenario   {spec.name}")
        print(f"verdict    {outcome.verdict}")
        print(f"violations {len(report.violations)}")
        print(f"recovery   {report.recovery_time:.1f} after stabilisation")
        coverage = CoverageReport.from_dict(report.coverage)
        print(
            f"coverage   {len(coverage.status_edges)} status edges, "
            f"{len(coverage.view_edges)} view edges, "
            f"{len(coverage.view_transitions)} view transitions, "
            f"{len(coverage.fault_status_pairs)} fault-status pairs"
        )
    return 0 if outcome.verdict == "ok" else 1


def _merged_coverage(coverages: Sequence[dict[str, Any]]) -> CoverageReport:
    return CoverageReport.from_dict(merge_coverage_dicts(coverages))


def _cmd_coverage(args: argparse.Namespace) -> int:
    seeds = [int(s) for s in args.seeds.split(",")] if args.seeds else [0]
    specs = journey_suite(processors=args.procs, seeds=seeds)
    outcomes = run_scenario_sweep(specs, workers=args.workers)
    directed = _merged_coverage([o.report.coverage for o in outcomes])
    payload: dict[str, Any] = {"directed": directed.to_dict()}
    if args.baseline:
        # Equal budget: one random-chaos run per journey run.
        envelopes = run_chaos_sweep(
            tuple(range(1, args.procs + 1)),
            list(range(len(specs))),
            workers=args.workers,
            horizon=200.0,
            settle=400.0,
            sends=8,
        )
        baseline = _merged_coverage([e.coverage for e in envelopes])
        payload["baseline"] = baseline.to_dict()
    if args.json:
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0
    print(
        f"directed journeys ({directed.runs} runs): "
        f"{directed.protocol_edges} protocol edges "
        f"({len(directed.status_edges)} status, "
        f"{len(directed.view_edges)} view, "
        f"{len(directed.view_transitions)} sized transitions), "
        f"{len(directed.fault_status_pairs)} fault-status pairs, "
        f"{directed.triggered_windows} triggered windows"
    )
    if args.baseline:
        base = CoverageReport.from_dict(payload["baseline"])
        print(
            f"random baseline  ({base.runs} runs): "
            f"{base.protocol_edges} protocol edges "
            f"({len(base.status_edges)} status, "
            f"{len(base.view_edges)} view, "
            f"{len(base.view_transitions)} sized transitions), "
            f"{len(base.fault_status_pairs)} fault-status pairs"
        )
    return 0


def _cmd_shrink(args: argparse.Namespace) -> int:
    spec = ScenarioSpec.load(args.file)
    result = shrink_scenario(
        spec, max_evaluations=args.max_evaluations
    )
    result.minimal.save(args.output)
    if args.json:
        print(
            json.dumps(
                {
                    "verdict": result.verdict,
                    "windows_before": result.windows_before,
                    "windows_after": result.windows_after,
                    "evaluations": result.evaluations,
                    "steps": result.steps,
                    "output": str(args.output),
                },
                indent=2,
                sort_keys=True,
            )
        )
    else:
        print(
            f"shrunk {result.windows_before} -> {result.windows_after} "
            f"window(s) preserving verdict {result.verdict!r} "
            f"({result.evaluations} runs); wrote {args.output}"
        )
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.scenarios",
        description="directed fault journeys, coverage, shrinking",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list built-in journeys").set_defaults(
        fn=_cmd_list
    )

    run = sub.add_parser("run", help="run a scenario file or journey")
    run.add_argument("file", nargs="?", help="scenario JSON file")
    run.add_argument("--journey", help="built-in journey name")
    run.add_argument("--procs", type=int, default=5)
    run.add_argument("--seed", type=int, default=0)
    run.add_argument("--json", action="store_true")
    run.set_defaults(fn=_cmd_run)

    cov = sub.add_parser(
        "coverage", help="merged coverage of the journey suite"
    )
    cov.add_argument("--procs", type=int, default=5)
    cov.add_argument("--seeds", default="0", help="comma-separated seeds")
    cov.add_argument("--workers", type=int, default=1)
    cov.add_argument(
        "--baseline",
        action="store_true",
        help="also run the equal-budget random-chaos baseline",
    )
    cov.add_argument("--json", action="store_true")
    cov.set_defaults(fn=_cmd_coverage)

    shrink = sub.add_parser(
        "shrink", help="minimize a failing scenario file"
    )
    shrink.add_argument("file", help="failing scenario JSON file")
    shrink.add_argument(
        "-o", "--output", required=True, help="minimal scenario output path"
    )
    shrink.add_argument("--max-evaluations", type=int, default=200)
    shrink.add_argument("--json", action="store_true")
    shrink.set_defaults(fn=_cmd_shrink)
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    result: int = args.fn(args)
    return result


if __name__ == "__main__":
    sys.exit(main())
