"""Violating-schedule shrinking: delta-debugging over fault windows.

A failing chaos run hands back an opaque multi-window schedule; this
module reduces it to a minimal reproduction while *preserving the
verdict class* (:func:`repro.scenarios.dsl.verdict_of`) — a shrink step
is accepted only if re-running the candidate deterministically produces
the same failure class as the original.

Three reduction passes, each re-verified per candidate:

1. **ddmin over windows** — the classic delta-debugging loop over the
   combined list of timed and triggered windows: try dropping
   complement chunks at increasing granularity until no single window
   can be removed.
2. **Duration shrinking** — repeatedly halve each surviving window
   (and triggered-window duration) down to ``min_duration``.
3. **Target narrowing** — injectors with a ``targets`` parameter are
   narrowed to a single target when one suffices.

Every candidate is a plain scenario dict rebuilt into a fresh
:class:`~repro.faults.FaultSchedule` (injectors bind once, so instances
are never reused across runs), and evaluation results are cached by
canonical digest, so the whole search is a deterministic function of
the input spec.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass
from typing import Any

from repro.parallel import canonical_digest
from repro.scenarios.dsl import ScenarioSpec, run_scenario, verdict_of


@dataclass
class ShrinkResult:
    """The outcome of one shrink search."""

    original: ScenarioSpec
    minimal: ScenarioSpec
    #: the preserved failure class (e.g. "violation")
    verdict: str
    #: scenario runs executed during the search (cache misses only)
    evaluations: int
    #: human-readable log of accepted reduction steps
    steps: list[str]

    @property
    def windows_before(self) -> int:
        return _window_count(self.original)

    @property
    def windows_after(self) -> int:
        return _window_count(self.minimal)


def _window_count(spec: ScenarioSpec) -> int:
    return len(spec.schedule.get("windows", ())) + len(
        spec.schedule.get("triggered", ())
    )


class _Evaluator:
    """Run candidates, caching verdicts by canonical digest."""

    def __init__(self, spec: ScenarioSpec, budget: int) -> None:
        self.spec = spec
        self.budget = budget
        self.evaluations = 0
        self._cache: dict[str, str] = {}

    def verdict(self, schedule: dict[str, Any]) -> str:
        key = canonical_digest(schedule)
        if key not in self._cache:
            if self.evaluations >= self.budget:
                raise RuntimeError(
                    f"shrink budget of {self.budget} evaluations exhausted"
                )
            self.evaluations += 1
            outcome = run_scenario(self.spec.with_schedule(schedule))
            self._cache[key] = outcome.verdict
        return self._cache[key]


def _split_schedule(
    schedule: dict[str, Any]
) -> tuple[list[dict[str, Any]], list[dict[str, Any]]]:
    return (
        list(schedule.get("windows", ())),
        list(schedule.get("triggered", ())),
    )


def _rebuild(
    schedule: dict[str, Any],
    items: list[tuple[str, dict[str, Any]]],
) -> dict[str, Any]:
    built = copy.deepcopy(schedule)
    built["windows"] = [w for tag, w in items if tag == "w"]
    built["triggered"] = [t for tag, t in items if tag == "t"]
    return built


def shrink_scenario(
    spec: ScenarioSpec,
    *,
    min_duration: float = 5.0,
    max_evaluations: int = 200,
) -> ShrinkResult:
    """Shrink a failing scenario to a minimal reproduction.

    Raises ``ValueError`` if ``spec`` does not fail in the first place
    (there is nothing to preserve), and ``RuntimeError`` if the
    evaluation budget runs out mid-search.
    """
    evaluator = _Evaluator(spec, max_evaluations)
    target = evaluator.verdict(spec.schedule)
    if target == "ok":
        raise ValueError(
            f"scenario {spec.name!r} runs clean; nothing to shrink"
        )
    steps: list[str] = []

    windows, triggered = _split_schedule(spec.schedule)
    items = [("w", w) for w in windows] + [("t", t) for t in triggered]

    # Pass 1: ddmin over the combined window list.
    granularity = 2
    while len(items) >= 2:
        chunk = max(1, len(items) // granularity)
        reduced = False
        start = 0
        while start < len(items):
            candidate = items[:start] + items[start + chunk :]
            if candidate and (
                evaluator.verdict(_rebuild(spec.schedule, candidate))
                == target
            ):
                steps.append(
                    f"dropped {len(items) - len(candidate)} window(s), "
                    f"{len(candidate)} left"
                )
                items = candidate
                granularity = max(granularity - 1, 2)
                reduced = True
                start = 0
            else:
                start += chunk
        if not reduced:
            if granularity >= len(items):
                break
            granularity = min(len(items), granularity * 2)

    # Pass 2: halve durations toward min_duration.
    for tag, item in items:
        while True:
            if tag == "w":
                duration = item["stop"] - item["start"]
                if duration / 2.0 < min_duration:
                    break
                candidate = dict(item, stop=item["start"] + duration / 2.0)
            else:
                duration = item["trigger"]["duration"]
                if duration / 2.0 < min_duration:
                    break
                candidate = copy.deepcopy(item)
                candidate["trigger"]["duration"] = duration / 2.0
            trial = [
                (t, candidate if i is item else i) for t, i in items
            ]
            if evaluator.verdict(_rebuild(spec.schedule, trial)) != target:
                break
            item.clear()
            item.update(candidate)
            steps.append(
                f"halved a window to {duration / 2.0:g} time units"
            )

    # Pass 3: narrow multi-target injectors to a single target.
    for tag, item in items:
        injector = item["injector"]
        targets = injector.get("targets")
        if not targets or len(targets) < 2:
            continue
        for single in targets:
            candidate = copy.deepcopy(item)
            candidate["injector"]["targets"] = [single]
            trial = [
                (t, candidate if i is item else i) for t, i in items
            ]
            if evaluator.verdict(_rebuild(spec.schedule, trial)) == target:
                item.clear()
                item.update(candidate)
                steps.append(f"narrowed targets to {single!r}")
                break

    minimal_schedule = _rebuild(spec.schedule, items)
    # The minimal schedule must still reproduce (cache-hit re-check).
    assert evaluator.verdict(minimal_schedule) == target
    return ShrinkResult(
        original=spec,
        minimal=spec.with_schedule(minimal_schedule),
        verdict=target,
        evaluations=evaluator.evaluations,
        steps=steps,
    )
