"""The paper's formal content.

- :mod:`repro.core.types` — views, view identifiers, labels (Fig. 8 types);
- :mod:`repro.core.to_spec` — the TO specification (Section 3);
- :mod:`repro.core.vs_spec` — the VS specification (Section 4);
- :mod:`repro.core.quorums` — quorum systems used to define primary views;
- :mod:`repro.core.vstoto` — the VStoTO algorithm (Section 5), its
  invariants and forward simulation (Section 6), and timed wrappers
  (Section 7).
"""

from repro.core.monitor import OnlineVSMonitor, VSConformanceError
from repro.core.types import BOTTOM, Bottom, Label, View, view_id_less

__all__ = [
    "BOTTOM",
    "Bottom",
    "Label",
    "View",
    "view_id_less",
    "OnlineVSMonitor",
    "VSConformanceError",
]
