"""The TO specification (Section 3): *TO-machine*, trace checking, and
*TO-property(b, d, Q)*.

*TO-machine* (Fig. 3) is transcribed action for action.  The state is a
global ``queue`` of (value, origin) pairs, a ``pending`` queue per
location of submitted-but-unordered values, and a ``next`` index per
location pointing into ``queue``.

Action encoding (paper subscripts become trailing parameters):

- ``act("bcast", a, p)`` — client at p submits value a (input);
- ``act("to-order", a, p)`` — a moves from pending[p] to the queue
  (internal);
- ``act("brcv", a, p, q)`` — value a originated by p is delivered at q
  (output).

:func:`check_to_trace` decides membership of an external action sequence
in the trace set of TO-machine (needed because the machine is
nondeterministic: trace inclusion, not equality of runs, is the
correctness statement of Theorem 6.26).  :class:`TOPropertyChecker`
evaluates the conditional performance property of Fig. 5 on timed traces.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Hashable, Iterable, Iterator, Sequence
from typing import Any

from repro.ioa.actions import Action, Signature, act
from repro.ioa.automaton import Automaton
from repro.ioa.timed import TimedTrace

ProcId = Hashable

TO_INPUTS = frozenset({"bcast"})
TO_OUTPUTS = frozenset({"brcv"})
TO_INTERNALS = frozenset({"to-order"})
TO_EXTERNAL = TO_INPUTS | TO_OUTPUTS

#: Failure-status action names (Fig. 4); ``args`` are (p,) or (p, q).
FAILURE_STATUS_NAMES = frozenset({"good", "bad", "ugly"})


class TOMachine(Automaton):
    """The TO-machine of Fig. 3.

    Parameters
    ----------
    processors:
        The paper's set P.
    """

    _SNAPSHOT_EXCLUDE = frozenset({"signature", "name", "processors"})

    def __init__(self, processors: Iterable[ProcId], name: str = "TO-machine") -> None:
        self.name = name
        self.signature = Signature(
            inputs=TO_INPUTS, outputs=TO_OUTPUTS, internals=TO_INTERNALS
        )
        self.processors: tuple[ProcId, ...] = tuple(processors)
        # queue: finite sequence of (a, p); initially empty.
        self.queue: list[tuple[Any, ProcId]] = []
        # pending[p]: finite sequence of A; initially empty.
        self.pending: dict[ProcId, list[Any]] = {p: [] for p in self.processors}
        # next[p] in N>0; initially 1.
        self.next: dict[ProcId, int] = {p: 1 for p in self.processors}

    # ------------------------------------------------------------------
    def is_enabled(self, action: Action) -> bool:
        if action.name == "bcast":
            return True  # input
        if action.name == "to-order":
            a, p = action.args
            return bool(self.pending[p]) and self.pending[p][0] == a
        if action.name == "brcv":
            a, p, q = action.args
            index = self.next[q]
            if index > len(self.queue):
                return False
            return self.queue[index - 1] == (a, p)
        return False

    def apply(self, action: Action) -> None:
        if action.name == "bcast":
            a, p = action.args
            self.pending[p].append(a)
        elif action.name == "to-order":
            a, p = action.args
            self.pending[p].pop(0)
            self.queue.append((a, p))
        elif action.name == "brcv":
            a, p, q = action.args
            self.next[q] += 1

    def enabled_actions(self) -> Iterator[Action]:
        for p in self.processors:
            if self.pending[p]:
                yield act("to-order", self.pending[p][0], p)
        for q in self.processors:
            index = self.next[q]
            if index <= len(self.queue):
                a, p = self.queue[index - 1]
                yield act("brcv", a, p, q)


# ----------------------------------------------------------------------
# Trace membership
# ----------------------------------------------------------------------
@dataclass
class TOTraceReport:
    """Result of :func:`check_to_trace`."""

    ok: bool
    reason: str = ""
    #: the least upper bound of per-destination delivery sequences
    common_order: list[tuple[Any, ProcId]] = field(default_factory=list)


def check_to_trace(
    trace: Sequence[Action], processors: Iterable[ProcId]
) -> TOTraceReport:
    """Decide whether ``trace`` (bcast/brcv actions) is a trace of
    TO-machine.

    A sequence is a TO trace iff:

    1. each location's delivered sequence of (a, p) pairs is a prefix of
       a single common order (pairwise prefix-consistency);
    2. for each sender p, the subsequence of the common order with
       origin p equals a prefix of p's bcast sequence, *and no delivery
       of a value precedes its bcast* (causality);
    3. deliveries at each destination never exceed the common order.

    This matches the observation in Section 3.1 that TO-machine traces
    are exactly the finite prefixes of totally-ordered causal broadcast
    traces.
    """
    processors = tuple(processors)
    delivered: dict[ProcId, list[tuple[Any, ProcId]]] = {p: [] for p in processors}
    bcast_seq: dict[ProcId, list[Any]] = {p: [] for p in processors}
    # Track, for causality, how many bcasts each sender has done at each
    # point; a delivery (a, p) as the k-th element of the common order of
    # origin p requires at least k bcasts by p to have occurred already.
    bcast_count: dict[ProcId, int] = {p: 0 for p in processors}
    origin_delivered_max: dict[ProcId, int] = {p: 0 for p in processors}

    for action in trace:
        if action.name == "bcast":
            a, p = action.args
            bcast_seq[p].append(a)
            bcast_count[p] += 1
        elif action.name == "brcv":
            a, p, q = action.args
            delivered[q].append((a, p))
            origin_rank = sum(1 for (_, src) in delivered[q] if src == p)
            if origin_rank > bcast_count[p]:
                return TOTraceReport(
                    ok=False,
                    reason=f"delivery of {a!r} at {q!r} precedes its bcast at {p!r}",
                )
            origin_delivered_max[p] = max(origin_delivered_max[p], origin_rank)
        elif action.name in TO_INTERNALS or action.name in FAILURE_STATUS_NAMES:
            continue
        else:
            return TOTraceReport(ok=False, reason=f"unexpected action {action}")

    # 1. pairwise prefix consistency; compute the lub.
    common: list[tuple[Any, ProcId]] = []
    for q in processors:
        seq = delivered[q]
        limit = min(len(seq), len(common))
        if seq[:limit] != common[:limit]:
            return TOTraceReport(
                ok=False,
                reason=f"delivery order at {q!r} inconsistent with other locations",
            )
        if len(seq) > len(common):
            common = list(seq)

    # 2. per-sender FIFO w.r.t. bcast order.
    for p in processors:
        from_p = [a for (a, src) in common if src == p]
        if from_p != bcast_seq[p][: len(from_p)]:
            return TOTraceReport(
                ok=False,
                reason=(
                    f"order of {p!r}'s values in the common order does not "
                    f"match its bcast order"
                ),
            )

    return TOTraceReport(ok=True, common_order=common)


# ----------------------------------------------------------------------
# TO-property(b, d, Q)  (Fig. 5)
# ----------------------------------------------------------------------
@dataclass
class TOPropertyReport:
    """Evaluation of TO-property(b, d, Q) on one timed trace.

    ``holds`` is the verdict.  The measured quantities let benchmarks
    report margins against the paper's bounds:

    - ``stabilization_l``: the premise point l (end of γ);
    - ``max_latency``: the largest observed gap between a delivery
      obligation's reference time max(t, l + l') and its fulfilment;
    - ``obligations`` / ``fulfilled``: counts of checked deadlines.
    """

    holds: bool
    reason: str = ""
    stabilization_l: float = 0.0
    l_prime_used: float = 0.0
    max_latency: float = 0.0
    obligations: int = 0
    fulfilled: int = 0


def _status_after(
    trace: TimedTrace, target: object, upto: float
) -> str:
    """Failure status ('good'/'bad'/'ugly') of a location or ordered pair
    after the prefix of ``trace`` up to (and including) time ``upto``."""
    status = "good"
    for event in trace.events:
        if event.time > upto:
            break
        if event.action.name in FAILURE_STATUS_NAMES and event.action.args == (
            target if isinstance(target, tuple) else (target,)
        ):
            status = event.action.name
    return status


def _premise_holds(
    trace: TimedTrace, group: frozenset, all_procs: Sequence[ProcId], l: float
) -> bool:
    """Clause 2(a)-(c) of the property: no failure events touching Q
    after l; Q internally good after l; links Q→outside bad after l."""
    for event in trace.events:
        if event.time <= l:
            continue
        if event.action.name in FAILURE_STATUS_NAMES:
            args = event.action.args
            touched = set(args) if len(args) > 1 else {args[0]}
            if touched & group:
                return False
    for p in group:
        if _status_after(trace, p, l) != "good":
            return False
        for q in group:
            if p != q and _status_after(trace, (p, q), l) != "good":
                return False
        for q in all_procs:
            if q in group:
                continue
            if _status_after(trace, (p, q), l) != "bad":
                return False
    return True


def find_stabilization_point(
    trace: TimedTrace, group: Iterable[ProcId], all_procs: Sequence[ProcId]
) -> float | None:
    """The earliest l such that the premise of the conditional property
    holds for Q = group with split point l, or None if it never does."""
    group = frozenset(group)
    candidate_times = [0.0] + [
        e.time for e in trace.events if e.action.name in FAILURE_STATUS_NAMES
    ]
    for l in sorted(set(candidate_times)):
        if _premise_holds(trace, group, all_procs, l):
            return l
    return None


class TOPropertyChecker:
    """Checks TO-property(b, d, Q) (Fig. 5) on an admissible timed trace.

    The trace must contain the external TO actions plus failure-status
    actions.  The premise split point l is located automatically (the
    earliest valid one); the existential over l' <= b is discharged by
    checking the deadlines with l' = b, which is sound because every
    deadline max(t, l + l') + d is monotone in l'.
    """

    def __init__(self, b: float, d: float, group: Iterable[ProcId]) -> None:
        if b < 0 or d < 0:
            raise ValueError("b and d must be nonnegative")
        self.b = b
        self.d = d
        self.group = frozenset(group)

    def check(
        self, trace: TimedTrace, processors: Sequence[ProcId]
    ) -> TOPropertyReport:
        untimed = [
            e.action for e in trace.events if e.action.name in TO_EXTERNAL
        ]
        safety = check_to_trace(untimed, processors)
        if not safety.ok:
            return TOPropertyReport(holds=False, reason=f"safety: {safety.reason}")

        l = find_stabilization_point(trace, self.group, processors)
        if l is None:
            # Premise never holds; the conditional property is vacuous.
            return TOPropertyReport(holds=True, reason="premise vacuous")

        deadline_base = l + self.b  # l + l' with l' = b
        report = TOPropertyReport(
            holds=True, stabilization_l=l, l_prime_used=self.b
        )

        # Index deliveries: (a, p, occurrence#) -> {q: time}.  Values can
        # repeat, so obligations are matched by occurrence counts per
        # (value, origin) pair.
        send_times: list[tuple[float, Any, ProcId, int]] = []
        sends_seen: dict[tuple[Any, ProcId], int] = {}
        deliveries: dict[tuple[Any, ProcId, int, ProcId], float] = {}
        recv_seen: dict[tuple[Any, ProcId, ProcId], int] = {}
        for event in trace.events:
            if event.action.name == "bcast":
                a, p = event.action.args
                occurrence = sends_seen.get((a, p), 0)
                sends_seen[(a, p)] = occurrence + 1
                if p in self.group:
                    send_times.append((event.time, a, p, occurrence))
            elif event.action.name == "brcv":
                a, p, q = event.action.args
                occurrence = recv_seen.get((a, p, q), 0)
                recv_seen[(a, p, q)] = occurrence + 1
                deliveries.setdefault((a, p, occurrence, q), event.time)

        def check_deadline(
            a: Any, p: ProcId, occurrence: int, reference: float, what: str
        ) -> None:
            deadline = max(reference, deadline_base) + self.d
            for q in self.group:
                report.obligations += 1
                delivered_at = deliveries.get((a, p, occurrence, q))
                if delivered_at is None or delivered_at > deadline + 1e-9:
                    report.holds = False
                    report.reason = (
                        f"{what}: value {a!r} from {p!r} not delivered at "
                        f"{q!r} by {deadline:.6g} "
                        f"(got {delivered_at})"
                    )
                else:
                    report.fulfilled += 1
                    lateness = delivered_at - max(reference, deadline_base)
                    report.max_latency = max(report.max_latency, lateness)

        # 2(b): values sent from Q.
        for t, a, p, occurrence in send_times:
            check_deadline(a, p, occurrence, t, "clause (b)")

        # 2(c): values delivered to any member of Q.
        for (a, p, occurrence, q), t in list(deliveries.items()):
            if q in self.group:
                check_deadline(a, p, occurrence, t, "clause (c)")

        return report
