"""Quorum systems (Section 5).

The paper fixes a set Q of quorums, subsets of P with pairwise nonempty
intersection, and calls a view *primary* when its membership contains a
quorum.  Majorities are the canonical instance; weighted and explicit
systems are provided for the ablation benchmarks (quorum choice affects
how often a partition side is primary, hence confirm latency).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from itertools import combinations
from collections.abc import Hashable, Iterable, Sequence

ProcId = Hashable


class QuorumSystem(ABC):
    """A set Q of quorums over a fixed processor set P."""

    @abstractmethod
    def is_quorum(self, members: Iterable[ProcId]) -> bool:
        """Is ``members`` a superset of some quorum?"""

    def is_primary(self, members: Iterable[ProcId]) -> bool:
        """A view membership is primary iff it contains a quorum
        (the derived variable *primary* of Fig. 9)."""
        return self.is_quorum(members)


class MajorityQuorumSystem(QuorumSystem):
    """Q = all majorities of P: any set of more than |P|/2 processors."""

    def __init__(self, processors: Iterable[ProcId]) -> None:
        self.processors: frozenset[ProcId] = frozenset(processors)
        if not self.processors:
            raise ValueError("empty processor set")
        self.threshold = len(self.processors) // 2 + 1

    def is_quorum(self, members: Iterable[ProcId]) -> bool:
        members = frozenset(members) & self.processors
        return len(members) >= self.threshold


class ExplicitQuorumSystem(QuorumSystem):
    """Q given as an explicit list of quorums; validates the pairwise
    intersection requirement the paper assumes."""

    def __init__(self, quorums: Sequence[Iterable[ProcId]]) -> None:
        self.quorums: tuple[frozenset[ProcId], ...] = tuple(
            frozenset(q) for q in quorums
        )
        if not self.quorums:
            raise ValueError("at least one quorum is required")
        if any(not q for q in self.quorums):
            raise ValueError("quorums must be nonempty")
        for q1, q2 in combinations(self.quorums, 2):
            if not (q1 & q2):
                raise ValueError(
                    f"quorums {sorted(map(str, q1))} and {sorted(map(str, q2))} "
                    f"do not intersect"
                )

    def is_quorum(self, members: Iterable[ProcId]) -> bool:
        members = frozenset(members)
        return any(q <= members for q in self.quorums)


class WeightedQuorumSystem(QuorumSystem):
    """Weighted majority: a quorum is any set whose total weight exceeds
    half the total.  Pairwise intersection holds by the weight argument."""

    def __init__(self, weights: dict[ProcId, float]) -> None:
        if not weights:
            raise ValueError("empty weight map")
        if any(w < 0 for w in weights.values()):
            raise ValueError("weights must be nonnegative")
        total = sum(weights.values())
        if total <= 0:
            raise ValueError("total weight must be positive")
        self.weights = dict(weights)
        self.half_total = total / 2.0

    def is_quorum(self, members: Iterable[ProcId]) -> bool:
        members = frozenset(members)
        weight = sum(self.weights.get(p, 0.0) for p in members)
        return weight > self.half_total


class NoQuorumSystem(QuorumSystem):
    """A degenerate system in which no view is ever primary — used in
    tests to exercise the non-primary code paths of VStoTO."""

    def is_quorum(self, members: Iterable[ProcId]) -> bool:
        return False
