"""Core value types shared by the specifications and the algorithm.

The paper fixes:

- ``P``: a totally ordered finite set of processor identifiers;
- ``G``: a totally ordered set of view identifiers with minimal element
  ``g0``; ``views = G x powerset(P)``;
- ``L = G x N x P``: labels ordered lexicographically (Fig. 8);
- ``S_bot``: any basic set extended with a bottom element smaller than
  everything.

View identifiers here are any values comparable among themselves — the
specs use integers, the token-ring implementation uses
``(epoch, initiator)`` pairs; both are totally ordered.  :data:`BOTTOM`
implements the paper's bottom: it compares less than every non-bottom
value via :func:`view_id_less`.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import total_ordering
from collections.abc import Hashable, Iterable
from typing import Any

ProcId = Hashable
ViewId = Any  # any value totally ordered within one run


class Bottom:
    """The bottom element: less than every view identifier.

    A singleton; compare with ``is BOTTOM`` or through
    :func:`view_id_less`.
    """

    _instance: Bottom | None = None

    def __new__(cls) -> Bottom:
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "⊥"

    def __deepcopy__(self, memo: dict) -> Bottom:
        return self

    def __copy__(self) -> Bottom:
        return self


BOTTOM = Bottom()


def view_id_less(a: ViewId, b: ViewId) -> bool:
    """Strict order on ``G_bot``: bottom is below everything else."""
    if a is BOTTOM:
        return b is not BOTTOM
    if b is BOTTOM:
        return False
    return a < b


def view_id_max(ids: Iterable[ViewId]) -> ViewId:
    """Maximum over ``G_bot`` values (bottom if the iterable is empty or
    all-bottom)."""
    best: ViewId = BOTTOM
    for candidate in ids:
        if view_id_less(best, candidate):
            best = candidate
    return best


@dataclass(frozen=True)
class View:
    """A view: an identifier paired with a membership set.

    Matches the paper's ``v.id`` / ``v.set`` selectors.
    """

    id: ViewId
    set: frozenset[ProcId]

    def __post_init__(self) -> None:
        object.__setattr__(self, "set", frozenset(self.set))

    def __contains__(self, p: ProcId) -> bool:
        return p in self.set

    def __str__(self) -> str:
        members = ",".join(str(m) for m in sorted(self.set, key=str))
        return f"⟨{self.id},{{{members}}}⟩"


@total_ordering
@dataclass(frozen=True)
class Label:
    """A system-wide unique message label (Fig. 8): ``L = G x N>0 x P``
    with selectors id, seqno, origin; ordered lexicographically."""

    id: ViewId
    seqno: int
    origin: ProcId

    def _key(self) -> tuple:
        return (self.id, self.seqno, self.origin)

    def __lt__(self, other: Label) -> bool:
        if not isinstance(other, Label):
            return NotImplemented
        return self._key() < other._key()

    def __str__(self) -> str:
        return f"⟨{self.id},{self.seqno},{self.origin}⟩"


def initial_view(members: Iterable[ProcId], g0: ViewId = 0) -> View:
    """The distinguished initial view ``v0 = (g0, P0)``."""
    return View(g0, frozenset(members))
