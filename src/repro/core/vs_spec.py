"""The VS specification (Section 4): *VS-machine*, *WeakVS-machine*,
trace-level checks for the Lemma 4.2 properties, and
*VS-property(b, d, Q)* (Fig. 7).

Action encoding (paper subscripts become trailing parameters; the source
location precedes the destination, as in the paper's ``gprcv(m)_{p,q}``):

- ``act("gpsnd", m, p)`` — client at p sends message m (input);
- ``act("gprcv", m, p, q)`` — m from p delivered at q (output);
- ``act("safe", m, p, q)`` — safe notification at q for m from p (output);
- ``act("newview", v, p)`` — view v reported at p, with p in v.set (output);
- ``act("createview", v)`` — internal;
- ``act("vs-order", m, p, g)`` — internal.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Hashable, Iterable, Iterator, Sequence
from typing import Any

from repro.core.types import BOTTOM, View, ViewId, view_id_less
from repro.ioa.actions import Action, Signature, act
from repro.ioa.automaton import Automaton
from repro.ioa.timed import TimedTrace

ProcId = Hashable

VS_INPUTS = frozenset({"gpsnd"})
VS_OUTPUTS = frozenset({"gprcv", "safe", "newview"})
VS_INTERNALS = frozenset({"createview", "vs-order"})
VS_EXTERNAL = VS_INPUTS | VS_OUTPUTS

FAILURE_STATUS_NAMES = frozenset({"good", "bad", "ugly"})


class VSMachine(Automaton):
    """The VS-machine of Fig. 6.

    Parameters
    ----------
    processors:
        The paper's set P.
    initial_members:
        P0, the membership of the distinguished initial view v0.  The
        hybrid initial-view rule: processors in P0 start with current
        view v0; the rest start with current view bottom.
    g0:
        The minimal view identifier.

    View creation is unboundedly nondeterministic in the spec; for
    driving runs, candidate views are queued with :meth:`offer_view` and
    surface as enabled ``createview`` actions.
    """

    #: When True (VS-machine), createview requires the new id to exceed
    #: every created id; when False (WeakVS-machine), only uniqueness.
    REQUIRE_ORDERED_CREATION = True

    def __init__(
        self,
        processors: Iterable[ProcId],
        initial_members: Iterable[ProcId] | None = None,
        g0: ViewId = 0,
        name: str = "VS-machine",
    ) -> None:
        self.name = name
        self.signature = Signature(
            inputs=VS_INPUTS, outputs=VS_OUTPUTS, internals=VS_INTERNALS
        )
        self.processors: tuple[ProcId, ...] = tuple(processors)
        members = (
            frozenset(initial_members)
            if initial_members is not None
            else frozenset(self.processors)
        )
        unknown = members - set(self.processors)
        if unknown:
            raise ValueError(f"initial members not in P: {sorted(map(str, unknown))}")
        self.initial_view = View(g0, members)
        # created ⊆ views, initially {⟨g0, P0⟩}.
        self.created: dict[ViewId, View] = {g0: self.initial_view}
        # current-viewid[p] ∈ G⊥.
        self.current_viewid: dict[ProcId, ViewId] = {
            p: (g0 if p in members else BOTTOM) for p in self.processors
        }
        # pending[p, g], queue[g], next[p, g], next-safe[p, g].
        self.pending: dict[tuple[ProcId, ViewId], list[Any]] = {}
        self.queue: dict[ViewId, list[tuple[Any, ProcId]]] = {}
        self.next: dict[tuple[ProcId, ViewId], int] = {}
        self.next_safe: dict[tuple[ProcId, ViewId], int] = {}
        #: externally offered candidate views for createview
        self.view_candidates: list[View] = []

    # ------------------------------------------------------------------
    # Helpers (default-1 indices, default-empty sequences)
    # ------------------------------------------------------------------
    def get_pending(self, p: ProcId, g: ViewId) -> list[Any]:
        return self.pending.setdefault((p, g), [])

    def get_queue(self, g: ViewId) -> list[tuple[Any, ProcId]]:
        return self.queue.setdefault(g, [])

    def get_next(self, p: ProcId, g: ViewId) -> int:
        return self.next.get((p, g), 1)

    def get_next_safe(self, p: ProcId, g: ViewId) -> int:
        return self.next_safe.get((p, g), 1)

    def offer_view(self, members: Iterable[ProcId], vid: ViewId | None = None) -> View:
        """Queue a candidate view for the internal createview action."""
        if vid is None:
            existing = list(self.created) + [v.id for v in self.view_candidates]
            vid = max(existing) + 1 if existing else 0
        view = View(vid, frozenset(members))
        self.view_candidates.append(view)
        return view

    def current_view(self, p: ProcId) -> Any:
        """The current view at p: a :class:`View`, or BOTTOM."""
        g = self.current_viewid[p]
        if g is BOTTOM:
            return BOTTOM
        return self.created[g]

    # ------------------------------------------------------------------
    def _createview_enabled(self, view: View) -> bool:
        if view.id in self.created:
            return False
        if self.REQUIRE_ORDERED_CREATION:
            return all(view_id_less(w, view.id) for w in self.created)
        return True

    def is_enabled(self, action: Action) -> bool:
        name = action.name
        if name == "gpsnd":
            return True  # input
        if name == "createview":
            (view,) = action.args
            return self._createview_enabled(view)
        if name == "newview":
            view, p = action.args
            if p not in view.set:
                return False  # signature constraint
            if view.id not in self.created or self.created[view.id] != view:
                return False
            current = self.current_viewid[p]
            return current is BOTTOM or view_id_less(current, view.id)
        if name == "vs-order":
            m, p, g = action.args
            pending = self.pending.get((p, g), [])
            return bool(pending) and pending[0] == m
        if name == "gprcv":
            m, p, q = action.args
            g = self.current_viewid[q]
            if g is BOTTOM:
                return False
            queue = self.queue.get(g, [])
            index = self.get_next(q, g)
            return index <= len(queue) and queue[index - 1] == (m, p)
        if name == "safe":
            m, p, q = action.args
            g = self.current_viewid[q]
            if g is BOTTOM or g not in self.created:
                return False
            members = self.created[g].set
            queue = self.queue.get(g, [])
            index = self.get_next_safe(q, g)
            if index > len(queue) or queue[index - 1] != (m, p):
                return False
            return all(self.get_next(r, g) > index for r in members)
        return False

    def apply(self, action: Action) -> None:
        name = action.name
        if name == "gpsnd":
            m, p = action.args
            g = self.current_viewid[p]
            if g is not BOTTOM:
                self.get_pending(p, g).append(m)
        elif name == "createview":
            (view,) = action.args
            self.created[view.id] = view
            if view in self.view_candidates:
                self.view_candidates.remove(view)
        elif name == "newview":
            view, p = action.args
            self.current_viewid[p] = view.id
        elif name == "vs-order":
            m, p, g = action.args
            self.pending[(p, g)].pop(0)
            self.get_queue(g).append((m, p))
        elif name == "gprcv":
            m, p, q = action.args
            g = self.current_viewid[q]
            self.next[(q, g)] = self.get_next(q, g) + 1
        elif name == "safe":
            m, p, q = action.args
            g = self.current_viewid[q]
            self.next_safe[(q, g)] = self.get_next_safe(q, g) + 1

    def enabled_actions(self) -> Iterator[Action]:
        for view in list(self.view_candidates):
            if self._createview_enabled(view):
                yield act("createview", view)
        for view in self.created.values():
            for p in view.set:
                current = self.current_viewid[p]
                if current is BOTTOM or view_id_less(current, view.id):
                    yield act("newview", view, p)
        for (p, g), pending in self.pending.items():
            if pending:
                yield act("vs-order", pending[0], p, g)
        for q in self.processors:
            g = self.current_viewid[q]
            if g is BOTTOM:
                continue
            queue = self.queue.get(g, [])
            index = self.get_next(q, g)
            if index <= len(queue):
                m, p = queue[index - 1]
                yield act("gprcv", m, p, q)
            safe_index = self.get_next_safe(q, g)
            if g in self.created and safe_index <= len(queue):
                members = self.created[g].set
                if all(self.get_next(r, g) > safe_index for r in members):
                    m, p = queue[safe_index - 1]
                    yield act("safe", m, p, q)


class WeakVSMachine(VSMachine):
    """WeakVS-machine (the Remark in Section 4.1): createview only
    requires *unique* ids, not in-order creation.  Equivalent to
    VS-machine in the sense of finite-trace equality."""

    REQUIRE_ORDERED_CREATION = False

    def __init__(self, *args: Any, **kwargs: Any) -> None:
        kwargs.setdefault("name", "WeakVS-machine")
        super().__init__(*args, **kwargs)


# ----------------------------------------------------------------------
# The WeakVS → VS reordering argument (Section 8)
# ----------------------------------------------------------------------
def reorder_weak_execution(actions: Sequence[Action]) -> list[Action]:
    """Reorder a WeakVS-machine action sequence into a VS-machine one.

    The Section 8 correctness sketch: WeakVS-machine and VS-machine have
    the same traces because ``createview`` events are internal and can
    be pushed "earlier than any createview event for a bigger view".
    This function performs that reordering executably: createview
    actions are re-emitted in increasing view-id order, each no later
    than its first dependent use — every other action keeps its relative
    order, so the external trace is untouched.

    The result replays verbatim on a VS-machine (validated in the test
    suite), which is the constructive content of the equivalence claim.
    """
    create_of: dict[Any, Action] = {}
    for action in actions:
        if action.name == "createview":
            (view,) = action.args
            create_of[view.id] = action
    pending_ids = sorted(create_of, key=lambda vid: (vid,))
    emitted: set[Any] = set()
    result: list[Action] = []

    def emit_creates_up_to(vid: Any) -> None:
        for candidate in pending_ids:
            if candidate in emitted:
                continue
            if candidate < vid or candidate == vid:
                emitted.add(candidate)
                result.append(create_of[candidate])

    for action in actions:
        if action.name == "createview":
            continue  # re-emitted at its dependency point
        if action.name == "newview":
            view, _p = action.args
            if view.id in create_of and view.id not in emitted:
                emit_creates_up_to(view.id)
        result.append(action)
    for candidate in pending_ids:
        if candidate not in emitted:
            emitted.add(candidate)
            result.append(create_of[candidate])
    return result


# ----------------------------------------------------------------------
# Trace-level checking (Lemma 4.2 properties + view discipline)
# ----------------------------------------------------------------------
@dataclass
class VSTraceReport:
    """Result of :func:`check_vs_trace`.

    ``per_view_order`` maps each view id to the lub of receive sequences
    observed within that view (the externally observable part of
    ``queue[g]``).
    """

    ok: bool
    reason: str = ""
    per_view_order: dict = field(default_factory=dict)
    views_seen: dict = field(default_factory=dict)


def check_vs_trace(
    trace: Sequence[Action],
    processors: Iterable[ProcId],
    initial_view: View,
) -> VSTraceReport:
    """Decide whether an external action sequence could be a trace of
    VS-machine, by checking the properties that characterise its traces:

    - view discipline: per-location monotone view ids, self-inclusion,
      consistent membership per view id;
    - all receive/safe events occur in the sender's sending view
      (message integrity, Lemma 4.2(1));
    - per view, receive sequences at all destinations are prefixes of a
      common total order (the prefix property), and that order restricted
      to one sender is a prefix of that sender's send sequence in the
      view (no duplication, no reordering, no losses — Lemma 4.2(2-4));
    - safe events at q within a view form a prefix of the common order,
      and the k-th safe event happens only after every member's k-th
      receive (the safe precondition);
    - causality: the j-th receive of (m, p) in a view follows the j-th
      send by p in that view.
    """
    processors = tuple(processors)
    current: dict[ProcId, Any] = {
        p: (initial_view if p in initial_view.set else BOTTOM) for p in processors
    }
    membership_of: dict[ViewId, frozenset] = {initial_view.id: initial_view.set}

    sent: dict[tuple[ViewId, ProcId], list[Any]] = {}
    sent_index: dict[tuple[ViewId, ProcId], list[int]] = {}
    received: dict[tuple[ViewId, ProcId], list[tuple[Any, ProcId]]] = {}
    received_index: dict[tuple[ViewId, ProcId], list[int]] = {}
    safed: dict[tuple[ViewId, ProcId], list[tuple[Any, ProcId]]] = {}
    safed_index: dict[tuple[ViewId, ProcId], list[int]] = {}
    report = VSTraceReport(ok=True)

    def fail(reason: str) -> VSTraceReport:
        return VSTraceReport(ok=False, reason=reason)

    for index, action in enumerate(trace):
        name = action.name
        if name == "newview":
            view, p = action.args
            if p not in view.set:
                return fail(f"newview {view} at {p!r}: not a member (self-inclusion)")
            prior = current[p]
            if prior is not BOTTOM and not view_id_less(prior.id, view.id):
                return fail(
                    f"newview {view} at {p!r}: id not above current {prior.id!r} "
                    f"(local monotonicity)"
                )
            known = membership_of.get(view.id)
            if known is not None and known != view.set:
                return fail(f"view id {view.id!r} seen with two memberships")
            membership_of[view.id] = view.set
            current[p] = view
            report.views_seen.setdefault(view.id, view)
        elif name == "gpsnd":
            m, p = action.args
            view = current[p]
            if view is BOTTOM:
                continue  # sent before any view: ignored, never delivered
            sent.setdefault((view.id, p), []).append(m)
            sent_index.setdefault((view.id, p), []).append(index)
        elif name == "gprcv":
            m, p, q = action.args
            view = current[q]
            if view is BOTTOM:
                return fail(f"gprcv at {q!r} with no current view")
            received.setdefault((view.id, q), []).append((m, p))
            received_index.setdefault((view.id, q), []).append(index)
        elif name == "safe":
            m, p, q = action.args
            view = current[q]
            if view is BOTTOM:
                return fail(f"safe at {q!r} with no current view")
            safed.setdefault((view.id, q), []).append((m, p))
            safed_index.setdefault((view.id, q), []).append(index)
        elif name in VS_INTERNALS or name in FAILURE_STATUS_NAMES:
            continue
        else:
            return fail(f"unexpected action {action}")

    view_ids = {g for (g, _q) in received} | {g for (g, _q) in safed} | {
        g for (g, _p) in sent
    }
    for g in view_ids:
        # 1. prefix-consistency of receive sequences; compute the lub.
        common: list[tuple[Any, ProcId]] = []
        for q in processors:
            seq = received.get((g, q), [])
            limit = min(len(seq), len(common))
            if seq[:limit] != common[:limit]:
                return fail(
                    f"view {g!r}: receive order at {q!r} inconsistent with "
                    f"other members (prefix property)"
                )
            if len(seq) > len(common):
                common = list(seq)
        report.per_view_order[g] = common

        # 2. the common order restricted to sender p must be a prefix of
        # p's send sequence in g (no dup / no reorder / no loss).
        for p in processors:
            from_p = [m for (m, src) in common if src == p]
            sent_by_p = sent.get((g, p), [])
            if from_p != sent_by_p[: len(from_p)]:
                return fail(
                    f"view {g!r}: delivered sequence from {p!r} is not a "
                    f"prefix of its sends"
                )

        # 3. causality: the j-th delivery of p's messages in g follows
        # p's j-th send in g.
        for q in processors:
            seq = received.get((g, q), [])
            indices = received_index.get((g, q), [])
            per_sender_rank: dict[ProcId, int] = {}
            for (m, p), recv_at in zip(seq, indices):
                rank = per_sender_rank.get(p, 0)
                per_sender_rank[p] = rank + 1
                send_at = sent_index[(g, p)][rank]
                if send_at >= recv_at:
                    return fail(
                        f"view {g!r}: receive of {m!r} at {q!r} precedes "
                        f"its send by {p!r}"
                    )

        # 4. safe discipline.
        members = membership_of.get(g)
        for q in processors:
            sseq = safed.get((g, q), [])
            if not sseq:
                continue
            if members is None:
                return fail(f"safe events in unknown view {g!r}")
            if sseq != common[: len(sseq)]:
                return fail(
                    f"view {g!r}: safe sequence at {q!r} is not a prefix of "
                    f"the common order"
                )
            sidx = safed_index[(g, q)]
            for k, safe_at in enumerate(sidx, start=1):
                for r in members:
                    ridx = received_index.get((g, r), [])
                    if len(ridx) < k or ridx[k - 1] >= safe_at:
                        return fail(
                            f"view {g!r}: {k}-th safe at {q!r} precedes the "
                            f"{k}-th receive at member {r!r}"
                        )
    return report


# ----------------------------------------------------------------------
# VS-property(b, d, Q)  (Fig. 7)
# ----------------------------------------------------------------------
@dataclass
class VSPropertyReport:
    """Evaluation of VS-property(b, d, Q) on one timed trace."""

    holds: bool
    reason: str = ""
    stabilization_l: float = 0.0
    #: measured l' — time after l until the last newview at Q plus view
    #: agreement (the membership-stabilisation interval, compare b)
    l_prime_measured: float = 0.0
    final_view: View | None = None
    #: worst observed send→all-safe latency relative to max(t, l + l')
    max_safe_latency: float = 0.0
    obligations: int = 0
    fulfilled: int = 0


from repro.core.to_spec import find_stabilization_point  # noqa: E402  (shared premise logic)


class VSPropertyChecker:
    """Checks VS-property(b, d, Q) (Fig. 7) on an admissible timed trace
    containing VS external actions and failure-status actions."""

    def __init__(self, b: float, d: float, group: Iterable[ProcId]) -> None:
        if b < 0 or d < 0:
            raise ValueError("b and d must be nonnegative")
        self.b = b
        self.d = d
        self.group = frozenset(group)

    def check(
        self,
        trace: TimedTrace,
        processors: Sequence[ProcId],
        initial_view: View,
    ) -> VSPropertyReport:
        untimed = [e.action for e in trace.events if e.action.name in VS_EXTERNAL]
        safety = check_vs_trace(untimed, processors, initial_view)
        if not safety.ok:
            return VSPropertyReport(holds=False, reason=f"safety: {safety.reason}")

        l = find_stabilization_point(trace, self.group, processors)
        if l is None:
            return VSPropertyReport(holds=True, reason="premise vacuous")

        # Find l'_min: after l + l' there are no newview events at Q and
        # the latest views at Q agree on ⟨g, Q⟩.
        last_newview_at_q = l
        latest_view: dict[ProcId, Any] = {
            p: (initial_view if p in initial_view.set else None)
            for p in self.group
        }
        for event in trace.events:
            if event.action.name != "newview":
                continue
            view, p = event.action.args
            if p in self.group:
                latest_view[p] = view
                if event.time > l:
                    last_newview_at_q = max(last_newview_at_q, event.time)

        views = set(latest_view.values())
        if len(views) != 1:
            return VSPropertyReport(
                holds=False,
                reason=f"members of Q end in different views: {views}",
                stabilization_l=l,
            )
        final_view = views.pop()
        if final_view is None or final_view.set != self.group:
            return VSPropertyReport(
                holds=False,
                reason=f"final view {final_view} does not have membership Q",
                stabilization_l=l,
            )
        l_prime = last_newview_at_q - l
        report = VSPropertyReport(
            holds=True,
            stabilization_l=l,
            l_prime_measured=l_prime,
            final_view=final_view,
        )
        if l_prime > self.b + 1e-9:
            report.holds = False
            report.reason = (
                f"membership stabilisation took {l_prime:.6g} > b = {self.b:.6g}"
            )
            return report

        # Clause (d) with l' = b (sound: deadlines are monotone in l').
        deadline_base = l + self.b
        g = final_view.id

        # j-th gpsnd by p while in view g  <->  j-th safe event with
        # source p at each q whose current view is g.
        current: dict[ProcId, Any] = {
            p: (initial_view if p in initial_view.set else BOTTOM)
            for p in processors
        }
        send_times: dict[ProcId, list[float]] = {}
        safe_times: dict[tuple[ProcId, ProcId], list[float]] = {}
        for event in trace.events:
            name = event.action.name
            if name == "newview":
                view, p = event.action.args
                current[p] = view
            elif name == "gpsnd":
                m, p = event.action.args
                view = current[p]
                if view is not BOTTOM and view.id == g and p in self.group:
                    send_times.setdefault(p, []).append(event.time)
            elif name == "safe":
                m, p, q = event.action.args
                view = current[q]
                if view is not BOTTOM and view.id == g:
                    safe_times.setdefault((p, q), []).append(event.time)

        for p, times in send_times.items():
            for j, t in enumerate(times):
                deadline = max(t, deadline_base) + self.d
                for q in self.group:
                    report.obligations += 1
                    q_safes = safe_times.get((p, q), [])
                    if len(q_safes) <= j or q_safes[j] > deadline + 1e-9:
                        report.holds = False
                        report.reason = (
                            f"clause (d): send #{j + 1} by {p!r} in view "
                            f"{g!r} at t={t:.6g} not safe at {q!r} by "
                            f"{deadline:.6g}"
                        )
                    else:
                        report.fulfilled += 1
                        lateness = q_safes[j] - max(t, deadline_base)
                        report.max_safe_latency = max(
                            report.max_safe_latency, lateness
                        )
        return report
