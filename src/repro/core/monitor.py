"""Online runtime verification of the VS interface.

:func:`repro.core.vs_spec.check_vs_trace` decides conformance of a
complete trace after the fact.  :class:`OnlineVSMonitor` does the same
work *incrementally*: feed it each VS event as it happens and it raises
(or records, in permissive mode) at the **first** non-conformant event —
which is how a deployed system would embed the specification as a
runtime monitor.

Checked online, per event:

- ``newview``: self-inclusion, per-location id monotonicity, consistent
  membership per view id;
- ``gprcv``: the receiver has a view; within (view, destination) the
  receive extends a prefix of the view's common order (the monitor
  maintains the lub of receive sequences and flags divergence); the
  per-sender subsequence extends that sender's sends in the view
  (integrity + FIFO + no-dup + no-loss, i.e. Lemma 4.2);
- ``safe``: safe events form a prefix of the common order and the k-th
  safe at q happens only after the k-th receive at every member.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Hashable, Iterable
from typing import Any

from repro.core.types import BOTTOM, View, view_id_less

ProcId = Hashable


class VSConformanceError(AssertionError):
    """An event contradicted the VS specification."""


@dataclass
class _ViewState:
    """Per-view bookkeeping."""

    membership: frozenset
    common_order: list = field(default_factory=list)
    sent: dict = field(default_factory=dict)        # sender -> [payload]
    received: dict = field(default_factory=dict)    # dest -> count
    received_from: dict = field(default_factory=dict)  # (dest, src) -> count
    safed: dict = field(default_factory=dict)       # dest -> count
    #: sender -> number of that sender's entries in common_order; a
    #: running cursor so extending the order is O(1) instead of a
    #: rescan of the whole order per receive.
    order_rank: dict = field(default_factory=dict)


class OnlineVSMonitor:
    """Incremental VS conformance monitor.

    Parameters
    ----------
    processors, initial_view:
        The system configuration (P and v0).
    strict:
        When True (default) violations raise
        :class:`VSConformanceError`; otherwise they are appended to
        :attr:`violations` and checking continues.
    """

    def __init__(
        self,
        processors: Iterable[ProcId],
        initial_view: View,
        strict: bool = True,
    ) -> None:
        self.processors = tuple(processors)
        self.strict = strict
        self.current: dict[ProcId, Any] = {
            p: (initial_view if p in initial_view.set else BOTTOM)
            for p in self.processors
        }
        self.views: dict[Any, _ViewState] = {
            initial_view.id: _ViewState(membership=initial_view.set)
        }
        self.events_checked = 0
        self.violations: list[str] = []

    # ------------------------------------------------------------------
    def _fail(self, message: str) -> None:
        self.violations.append(message)
        if self.strict:
            raise VSConformanceError(message)

    def _view_state(self, view: View) -> _ViewState:
        state = self.views.get(view.id)
        if state is None:
            state = _ViewState(membership=view.set)
            self.views[view.id] = state
        elif state.membership != view.set:
            self._fail(
                f"view id {view.id!r} seen with memberships "
                f"{sorted(map(str, state.membership))} and "
                f"{sorted(map(str, view.set))}"
            )
        return state

    # ------------------------------------------------------------------
    # Event feeds
    # ------------------------------------------------------------------
    def on_newview(self, view: View, p: ProcId) -> None:
        self.events_checked += 1
        if p not in view.set:
            self._fail(f"newview {view} at non-member {p!r}")
            return
        prior = self.current[p]
        if prior is not BOTTOM and not view_id_less(prior.id, view.id):
            self._fail(
                f"newview at {p!r}: id {view.id!r} not above current "
                f"{prior.id!r}"
            )
            return
        self._view_state(view)
        self.current[p] = view

    def on_gpsnd(self, payload: Any, p: ProcId) -> None:
        self.events_checked += 1
        view = self.current[p]
        if view is BOTTOM:
            return  # ignored by the service; nothing to track
        state = self._view_state(view)
        state.sent.setdefault(p, []).append(payload)

    def on_gprcv(self, payload: Any, src: ProcId, dst: ProcId) -> None:
        self.events_checked += 1
        view = self.current[dst]
        if view is BOTTOM:
            self._fail(f"gprcv at {dst!r} with no current view")
            return
        state = self._view_state(view)
        index = state.received.get(dst, 0)
        entry = (payload, src)
        if index < len(state.common_order):
            if state.common_order[index] != entry:
                self._fail(
                    f"view {view.id!r}: receive #{index + 1} at {dst!r} is "
                    f"{entry!r}, other members saw "
                    f"{state.common_order[index]!r}"
                )
                return
        else:
            # dst extends the common order; validate against src's sends.
            rank = state.order_rank.get(src, 0)
            sent = state.sent.get(src, [])
            if rank >= len(sent) or sent[rank] != payload:
                self._fail(
                    f"view {view.id!r}: receive of {payload!r} from {src!r} "
                    f"at {dst!r} does not extend the sender's send sequence"
                )
                return
            state.common_order.append(entry)
            state.order_rank[src] = rank + 1
        state.received[dst] = index + 1
        key = (dst, src)
        state.received_from[key] = state.received_from.get(key, 0) + 1

    def on_safe(self, payload: Any, src: ProcId, dst: ProcId) -> None:
        self.events_checked += 1
        view = self.current[dst]
        if view is BOTTOM:
            self._fail(f"safe at {dst!r} with no current view")
            return
        state = self._view_state(view)
        index = state.safed.get(dst, 0)
        if index >= len(state.common_order) or state.common_order[index] != (
            payload,
            src,
        ):
            self._fail(
                f"view {view.id!r}: safe #{index + 1} at {dst!r} is not the "
                f"next common-order entry"
            )
            return
        for member in state.membership:
            if state.received.get(member, 0) <= index:
                self._fail(
                    f"view {view.id!r}: safe #{index + 1} at {dst!r} before "
                    f"member {member!r} received entry #{index + 1}"
                )
                return
        state.safed[dst] = index + 1

    # ------------------------------------------------------------------
    def attach(self, service: Any) -> None:
        """Install the monitor in front of a TokenRingVS's callbacks,
        preserving any existing sinks."""
        old_gprcv, old_safe = service.on_gprcv, service.on_safe
        old_newview = service.on_newview

        def gprcv(payload: Any, src: ProcId, dst: ProcId) -> None:
            self.on_gprcv(payload, src, dst)
            if old_gprcv:
                old_gprcv(payload, src, dst)

        def safe(payload: Any, src: ProcId, dst: ProcId) -> None:
            self.on_safe(payload, src, dst)
            if old_safe:
                old_safe(payload, src, dst)

        def newview(view: View, p: ProcId) -> None:
            self.on_newview(view, p)
            if old_newview:
                old_newview(view, p)

        service.on_gprcv = gprcv
        service.on_safe = safe
        service.on_newview = newview
        original_gpsnd = service.gpsnd

        def gpsnd(p: ProcId, payload: Any) -> None:
            self.on_gpsnd(payload, p)
            original_gpsnd(p, payload)

        service.gpsnd = gpsnd

    @property
    def ok(self) -> bool:
        return not self.violations
