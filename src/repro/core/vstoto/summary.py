"""Label/summary types and operations (Fig. 8).

Types::

    L = G x N>0 x P                  selectors id, seqno, origin
    summaries = P(L x A) x L* x N>0 x G_bot
                                     selectors con, ord, next, high

:class:`repro.core.types.Label` provides L; :class:`Summary` provides the
summary record.  The free functions below transcribe the Fig. 8
operations on a ``gotstate`` map Y (a partial function from processor ids
to summaries).
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Hashable, Iterator, Mapping, Sequence
from typing import Any

from repro.core.types import BOTTOM, Label, ViewId, view_id_max

ProcId = Hashable

#: A (label, value) pair, the element type of ``con``.
ContentPair = tuple[Label, Any]


class SharedOrderPrefix(Sequence):
    """An immutable length-``length`` prefix of an append-only list,
    shared rather than copied.

    ``VStoTOProcess.order`` is only ever appended to or wholesale
    replaced, so the first ``length`` elements of a given backing list
    never change — a ``(backing, length)`` pair is a stable O(1)
    snapshot where ``tuple(order)`` would copy O(len(order)).  The class
    behaves like the tuple it replaces (equality, hashing, slicing,
    iteration), so history variables built from it (``buildorder``)
    remain directly comparable against tuples in the invariant checks.
    """

    __slots__ = ("_backing", "_length", "_hash")

    def __init__(self, backing: list, length: int) -> None:
        if length > len(backing):
            raise ValueError(
                f"prefix length {length} exceeds backing length {len(backing)}"
            )
        self._backing = backing
        self._length = length
        self._hash: Any = None

    def __len__(self) -> int:
        return self._length

    def __getitem__(self, index: int | slice) -> Any:
        if isinstance(index, slice):
            return tuple(self._backing[: self._length][index])
        if index < 0:
            index += self._length
        if not 0 <= index < self._length:
            raise IndexError(index)
        return self._backing[index]

    def __iter__(self) -> Iterator:
        return iter(self._backing[: self._length])

    def __eq__(self, other: Any) -> bool:
        if isinstance(other, SharedOrderPrefix):
            if other._length != self._length:
                return False
            other = other._backing[: other._length]
        elif isinstance(other, (tuple, list)):
            other = list(other)
        else:
            return NotImplemented
        return self._backing[: self._length] == list(other)

    def __hash__(self) -> int:
        if self._hash is None:
            self._hash = hash(tuple(self._backing[: self._length]))
        return self._hash

    def __repr__(self) -> str:
        return repr(tuple(self._backing[: self._length]))

    def __reduce__(self) -> tuple[Any, ...]:
        # Pickle/deepcopy as a detached copy: snapshots taken for
        # invariant checking must not alias live process state.
        return (_rebuild_prefix, (list(self._backing[: self._length]),))


def _rebuild_prefix(items: list) -> SharedOrderPrefix:
    return SharedOrderPrefix(items, len(items))


@dataclass(frozen=True)
class Summary:
    """A state-exchange summary: ⟨con, ord, next, high⟩."""

    con: frozenset[ContentPair]
    ord: tuple[Label, ...]
    next: int
    high: ViewId  # an element of G_bot

    def __post_init__(self) -> None:
        object.__setattr__(self, "con", frozenset(self.con))
        object.__setattr__(self, "ord", tuple(self.ord))
        if self.next < 1:
            raise ValueError(f"next must be >= 1, got {self.next}")

    @property
    def confirm(self) -> tuple[Label, ...]:
        """``x.confirm``: the prefix of ``x.ord`` of length
        ``min(x.next - 1, length(x.ord))``."""
        return self.ord[: min(self.next - 1, len(self.ord))]

    def __str__(self) -> str:
        return (
            f"Summary(|con|={len(self.con)}, |ord|={len(self.ord)}, "
            f"next={self.next}, high={self.high})"
        )


def summary_confirm(x: Summary) -> tuple[Label, ...]:
    """Free-function form of :attr:`Summary.confirm`."""
    return x.confirm


GotState = Mapping[ProcId, Summary]


def knowncontent(gotstate: GotState) -> frozenset[ContentPair]:
    """``knowncontent(Y) = union of Y(q).con over q in dom(Y)``."""
    pairs: set[ContentPair] = set()
    for summary in gotstate.values():
        pairs |= summary.con
    return frozenset(pairs)


def maxprimary(gotstate: GotState) -> ViewId:
    """``maxprimary(Y) = max over q of Y(q).high`` (over G_bot)."""
    if not gotstate:
        return BOTTOM
    return view_id_max(summary.high for summary in gotstate.values())


def reps(gotstate: GotState) -> frozenset[ProcId]:
    """``reps(Y)``: members whose summary attains maxprimary(Y)."""
    top = maxprimary(gotstate)
    return frozenset(
        q
        for q, summary in gotstate.items()
        if summary.high == top
        or (summary.high is BOTTOM and top is BOTTOM)
    )


def chosenrep(gotstate: GotState) -> ProcId:
    """``chosenrep(Y)``: a consistently chosen element of reps(Y).

    Any rule works as long as all processors choose identically from
    identical information (the paper suggests highest processor id,
    which is what we use; ids are compared via their string form as a
    total-order fallback for mixed id types).
    """
    candidates = reps(gotstate)
    if not candidates:
        raise ValueError("chosenrep of empty gotstate")
    return max(candidates, key=lambda q: (str(q), repr(q)))


def shortorder(gotstate: GotState) -> tuple[Label, ...]:
    """``shortorder(Y) = Y(chosenrep(Y)).ord`` — the order adopted when
    the new view is not primary."""
    return gotstate[chosenrep(gotstate)].ord


def fullorder(gotstate: GotState) -> tuple[Label, ...]:
    """``fullorder(Y)``: shortorder(Y) followed by the remaining labels
    of dom(knowncontent(Y)) in label order — the order adopted when the
    new view is primary."""
    prefix = shortorder(gotstate)
    seen = set(prefix)
    remaining = sorted(
        {label for (label, _value) in knowncontent(gotstate)} - seen
    )
    return prefix + tuple(remaining)


def maxnextconfirm(gotstate: GotState) -> int:
    """``maxnextconfirm(Y)``: the largest reported next value."""
    if not gotstate:
        raise ValueError("maxnextconfirm of empty gotstate")
    return max(summary.next for summary in gotstate.values())


def content_as_function(pairs: frozenset[ContentPair]) -> dict[Label, Any]:
    """Interpret a content set as a function label → value.

    Lemma 6.5 guarantees *allcontent* is a function in every reachable
    state; a conflict here means the invariant is broken, so we raise
    rather than pick a winner.
    """
    mapping: dict[Label, Any] = {}
    for label, value in pairs:
        if label in mapping and mapping[label] != value:
            raise ValueError(
                f"content is not a function: {label} maps to both "
                f"{mapping[label]!r} and {value!r}"
            )
        mapping[label] = value
    return mapping
