"""``VStoTO_p`` (Figs. 9 and 10) and the Section 7 timed wrapper.

Action encoding (location subscripts become trailing parameters, source
before destination as in the paper):

- ``act("bcast", a, p)`` — input from the client at p;
- ``act("brcv", a, q, p)`` — output: value a originated at q delivered
  to the client at p (the paper's ``brcv(a)_{q,p}``);
- ``act("label", a, p)``, ``act("confirm", p)`` — internal;
- ``act("gpsnd", m, p)`` — output to VS;
- ``act("gprcv", m, q, p)`` / ``act("safe", m, q, p)`` — inputs from VS
  (m from q delivered/safe at p);
- ``act("newview", v, p)`` — input from VS.

Messages m are either ordinary ``(label, value)`` pairs or
:class:`~repro.core.vstoto.summary.Summary` records, exactly the paper's
``(L x A) ∪ summaries``.

Every per-location automaton declares the same action *names*; instances
are distinguished by the location parameter, and an instance ignores
input actions addressed to other locations (equivalent to the paper's
per-subscript signatures).

One deviation from the letter of Fig. 10, documented in DESIGN.md: the
ordinary-message ``gprcv`` appends the label to ``order`` only when it is
not already present.  A label can already be present when its creator
labelled it between ``newview`` and its state-exchange send, putting it
into the summary's ``con`` and hence into ``fullorder`` before the
ordinary message arrives; an unconditional append would duplicate it.

The module also keeps the two history variables of Section 6
(``established[p, g]`` and ``buildorder[p, g]``), maintained exactly
where the paper inserts them; they do not influence behaviour.
"""

from __future__ import annotations

import enum
from collections.abc import Hashable, Iterator
from typing import Any

from repro.core.quorums import QuorumSystem
from repro.core.types import BOTTOM, Label, View, ViewId
from repro.core.vstoto.summary import (
    SharedOrderPrefix,
    Summary,
    fullorder,
    maxnextconfirm,
    maxprimary,
    shortorder,
)
from repro.ioa.actions import Action, Signature, act
from repro.ioa.automaton import Automaton

ProcId = Hashable

VSTOTO_INPUTS = frozenset({"bcast", "gprcv", "safe", "newview"})
VSTOTO_OUTPUTS = frozenset({"gpsnd", "brcv"})
VSTOTO_INTERNALS = frozenset({"label", "confirm"})


class Status(enum.Enum):
    """Processing status (Fig. 9): normal, or the two phases of the
    first stage of recovery."""

    NORMAL = "normal"
    SEND = "send"
    COLLECT = "collect"


def is_summary(message: Any) -> bool:
    return isinstance(message, Summary)


class VStoTOProcess(Automaton):
    """The automaton ``VStoTO_p`` for one location p.

    Parameters
    ----------
    proc_id:
        The location p.
    quorums:
        The fixed quorum system Q; a view is *primary* when its
        membership contains a quorum.
    initial_view:
        The distinguished initial view v0 = (g0, P0).  If p is in P0 the
        process starts in v0 with highprimary g0, otherwise both start
        bottom (the hybrid initial-view rule).
    """

    def __init__(
        self,
        proc_id: ProcId,
        quorums: QuorumSystem,
        initial_view: View,
    ) -> None:
        self.name = f"VStoTO_{proc_id}"
        self.signature = Signature(
            inputs=VSTOTO_INPUTS,
            outputs=VSTOTO_OUTPUTS,
            internals=VSTOTO_INTERNALS,
        )
        self.proc_id = proc_id
        self.quorums = quorums
        in_p0 = proc_id in initial_view.set
        # --- state (Fig. 9) ---
        self.current: Any = initial_view if in_p0 else BOTTOM
        self.status: Status = Status.NORMAL
        self.content: set[tuple[Label, Any]] = set()
        self.nextseqno: int = 1
        self.buffer: list[Label] = []
        self.order: list[Label] = []
        self.nextconfirm: int = 1
        self.nextreport: int = 1
        self.highprimary: ViewId = initial_view.id if in_p0 else BOTTOM
        self.delay: list[Any] = []
        self.gotstate: dict[ProcId, Summary] = {}
        self.safe_exch: set[ProcId] = set()
        self.safe_labels: set[Label] = set()
        # --- history variables (Section 6) ---
        self.established: dict[ViewId, bool] = {initial_view.id: True} if in_p0 else {}
        # Values are tuple-like label sequences (SharedOrderPrefix or,
        # after a snapshot restore, plain tuples).
        self.buildorder: dict[ViewId, Any] = {}
        # --- derived indexes (not part of the Fig. 9 state) ---
        # Each cache records the identity and length of the structure it
        # was built from; direct reassignment of ``order``/``content``
        # (tests, snapshot restore) invalidates it and forces a rebuild,
        # so the indexes can never silently go stale.
        self._order_set: set[Label] = set()
        self._order_set_len: int = 0
        self._order_set_src: Any = self.order
        self._content_map: dict[Label, Any] = {}
        self._content_map_len: int = 0
        self._content_map_src: Any = self.content
        self._summary_cache: Summary | None = None
        self._summary_key: Any = None

    # ------------------------------------------------------------------
    # Derived indexes (hot-path bookkeeping; all self-healing)
    # ------------------------------------------------------------------
    def _order_contains(self, label: Label) -> bool:
        """O(1) replacement for ``label in self.order``."""
        if (
            self._order_set_src is not self.order
            or self._order_set_len != len(self.order)
        ):
            self._order_set = set(self.order)
            self._order_set_len = len(self.order)
            self._order_set_src = self.order
        return label in self._order_set

    def _order_append(self, label: Label) -> None:
        """Append to ``order`` keeping the membership index in sync."""
        if (
            self._order_set_src is not self.order
            or self._order_set_len != len(self.order)
        ):
            self._order_set = set(self.order)
            self._order_set_src = self.order
        self.order.append(label)
        self._order_set.add(label)
        self._order_set_len = len(self.order)

    def _replace_order(self, labels: list[Label]) -> None:
        """Wholesale order replacement (state-exchange adoption)."""
        self.order = labels
        self._order_set = set(labels)
        self._order_set_len = len(labels)
        self._order_set_src = labels

    def _content_index(self) -> dict[Label, Any]:
        """Label → value view of ``content`` (O(1) amortised lookups)."""
        if (
            self._content_map_src is not self.content
            or self._content_map_len != len(self.content)
        ):
            mapping: dict[Label, Any] = {}
            for label, value in self.content:
                mapping[label] = value
            self._content_map = mapping
            self._content_map_len = len(self.content)
            self._content_map_src = self.content
        return self._content_map

    def _content_add(self, label: Label, value: Any) -> None:
        """Add a (label, value) pair keeping the index in sync."""
        index = self._content_index()
        before = len(self.content)
        self.content.add((label, value))
        if len(self.content) != before:
            index[label] = value
            self._content_map_len = len(self.content)

    # ------------------------------------------------------------------
    # Derived variables
    # ------------------------------------------------------------------
    @property
    def primary(self) -> bool:
        """Fig. 9's derived variable: current ≠ ⊥ and current.set
        contains a quorum."""
        return self.current is not BOTTOM and self.quorums.is_primary(
            self.current.set
        )

    def state_summary(self) -> Summary:
        """⟨content, order, nextconfirm, highprimary⟩ — the summary this
        process sends during state exchange.

        Cached: the drain loops re-enumerate enabled actions many times
        while status is SEND, and building a Summary copies content and
        order.  The cache key pins the identity *and* length of both
        structures, so any mutation or reassignment misses the cache.
        """
        key = (
            id(self.content),
            len(self.content),
            id(self.order),
            len(self.order),
            self.nextconfirm,
            self.highprimary,
        )
        if self._summary_cache is None or self._summary_key != key:
            self._summary_cache = Summary(
                con=frozenset(self.content),
                ord=tuple(self.order),
                next=self.nextconfirm,
                high=self.highprimary,
            )
            self._summary_key = key
        return self._summary_cache

    def content_lookup(self, label: Label) -> Any | None:
        """The value paired with ``label`` in content, if any."""
        return self._content_index().get(label)

    def _record_buildorder(self) -> None:
        if self.current is not BOTTOM:
            # O(1): share the live list as an immutable prefix instead of
            # copying it; ``order`` is append-only within a view, so the
            # prefix is stable.
            self.buildorder[self.current.id] = SharedOrderPrefix(
                self.order, len(self.order)
            )

    # ------------------------------------------------------------------
    # Preconditions
    # ------------------------------------------------------------------
    def is_enabled(self, action: Action) -> bool:
        name = action.name
        if name in VSTOTO_INPUTS:
            return True
        if name == "label":
            a, p = action.args
            if p != self.proc_id:
                return False
            return bool(self.delay) and self.delay[0] == a and self.current is not BOTTOM
        if name == "gpsnd":
            m, p = action.args
            if p != self.proc_id:
                return False
            if is_summary(m):
                # Output gpsnd(x): status = send, x is the state summary.
                return self.status is Status.SEND and m == self.state_summary()
            label, value = m
            return (
                self.status is Status.NORMAL
                and bool(self.buffer)
                and self.buffer[0] == label
                and (label, value) in self.content
            )
        if name == "confirm":
            (p,) = action.args
            if p != self.proc_id:
                return False
            return (
                self.primary
                and self.nextconfirm <= len(self.order)
                and self.order[self.nextconfirm - 1] in self.safe_labels
            )
        if name == "brcv":
            a, q, p = action.args
            if p != self.proc_id:
                return False
            if not self.nextreport < self.nextconfirm:
                return False
            if self.nextreport > len(self.order):
                return False
            label = self.order[self.nextreport - 1]
            return (label, a) in self.content and q == label.origin
        return False

    # ------------------------------------------------------------------
    # Effects
    # ------------------------------------------------------------------
    def apply(self, action: Action) -> None:
        name = action.name
        if name == "bcast":
            a, p = action.args
            if p == self.proc_id:
                self.delay.append(a)
        elif name == "label":
            a, p = action.args
            if p == self.proc_id:
                label = Label(self.current.id, self.nextseqno, self.proc_id)
                self._content_add(label, a)
                self.buffer.append(label)
                self.nextseqno += 1
                self.delay.pop(0)
        elif name == "gpsnd":
            m, p = action.args
            if p == self.proc_id:
                if is_summary(m):
                    self.status = Status.COLLECT
                else:
                    self.buffer.pop(0)
        elif name == "gprcv":
            m, q, p = action.args
            if p == self.proc_id:
                if is_summary(m):
                    self._receive_summary(q, m)
                else:
                    label, value = m
                    self._content_add(label, value)
                    if self.primary and not self._order_contains(label):
                        self._order_append(label)
                        self._record_buildorder()
        elif name == "safe":
            m, q, p = action.args
            if p == self.proc_id:
                if is_summary(m):
                    self.safe_exch.add(q)
                    if (
                        self.current is not BOTTOM
                        and self.safe_exch == set(self.current.set)
                        and self.primary
                    ):
                        self.safe_labels |= set(fullorder(self.gotstate))
                else:
                    label, _value = m
                    if self.primary:
                        self.safe_labels.add(label)
        elif name == "confirm":
            (p,) = action.args
            if p == self.proc_id:
                self.nextconfirm += 1
        elif name == "brcv":
            a, q, p = action.args
            if p == self.proc_id:
                self.nextreport += 1
        elif name == "newview":
            view, p = action.args
            if p == self.proc_id:
                self.current = view
                self.nextseqno = 1
                self.buffer = []
                self.gotstate = {}
                self.safe_exch = set()
                self.safe_labels = set()
                self.status = Status.SEND

    def _receive_summary(self, sender: ProcId, summary: Summary) -> None:
        """Effect of ``gprcv(x)_{q,p}`` for a summary x (Fig. 10)."""
        index = self._content_index()
        before = len(self.content)
        self.content |= summary.con
        if len(self.content) != before:
            for label, value in summary.con:
                index[label] = value
            self._content_map_len = len(self.content)
        self.gotstate[sender] = summary
        if (
            self.current is not BOTTOM
            and set(self.gotstate) == set(self.current.set)
            and self.status is Status.COLLECT
        ):
            self.nextconfirm = maxnextconfirm(self.gotstate)
            if self.primary:
                self._replace_order(list(fullorder(self.gotstate)))
                self.highprimary = self.current.id
            else:
                self._replace_order(list(shortorder(self.gotstate)))
                self.highprimary = maxprimary(self.gotstate)
            self.status = Status.NORMAL
            # History variables (Section 6): establishment happens here.
            self.established[self.current.id] = True
            self._record_buildorder()

    # ------------------------------------------------------------------
    # Enumeration
    # ------------------------------------------------------------------
    def enabled_actions(self) -> Iterator[Action]:
        p = self.proc_id
        if self.delay and self.current is not BOTTOM:
            yield act("label", self.delay[0], p)
        if self.status is Status.SEND:
            yield act("gpsnd", self.state_summary(), p)
        if self.status is Status.NORMAL and self.buffer:
            head = self.buffer[0]
            index = self._content_index()
            if head in index:
                yield act("gpsnd", (head, index[head]), p)
        if (
            self.primary
            and self.nextconfirm <= len(self.order)
            and self.order[self.nextconfirm - 1] in self.safe_labels
        ):
            yield act("confirm", p)
        if self.nextreport < self.nextconfirm and self.nextreport <= len(self.order):
            label = self.order[self.nextreport - 1]
            index = self._content_index()
            if label in index:
                yield act("brcv", index[label], label.origin, p)

    # ------------------------------------------------------------------
    def snapshot(self) -> dict[str, Any]:
        snap = super().snapshot()
        snap.pop("quorums", None)  # shared, immutable config
        # Derived indexes are rebuildable caches, not Fig. 9 state:
        # excluding them keeps snapshots (and the exhaustive explorer's
        # state fingerprints) identical to the pre-index encoding.
        for key in [k for k in snap if k.startswith("_")]:
            del snap[key]
        snap["status"] = self.status.value
        # Materialise shared prefixes so snapshots never alias live
        # state and freeze() canonicalises them like the tuples they
        # replaced.
        snap["buildorder"] = {
            viewid: tuple(labels) for viewid, labels in snap["buildorder"].items()
        }
        return snap


class TimedVStoTOProcess(VStoTOProcess):
    """``VStoTO'_p`` (Section 7): VStoTO_p plus a failure-status variable.

    Adds input actions ``good_p`` / ``bad_p`` / ``ugly_p`` (encoded as
    ``act("good", p)`` etc.); while the status is *bad* every output and
    internal action is disabled.  The time-passage rule ("a good
    processor takes enabled steps immediately") is enforced by the
    drivers: they run a good processor to quiescence before letting
    virtual time advance.
    """

    def __init__(self, *args: Any, **kwargs: Any) -> None:
        super().__init__(*args, **kwargs)
        self.signature = Signature(
            inputs=VSTOTO_INPUTS | {"good", "bad", "ugly"},
            outputs=VSTOTO_OUTPUTS,
            internals=VSTOTO_INTERNALS,
        )
        self.failure_status: str = "good"

    def is_enabled(self, action: Action) -> bool:
        if action.name in ("good", "bad", "ugly"):
            return True
        kind_locally_controlled = action.name in (
            VSTOTO_OUTPUTS | VSTOTO_INTERNALS
        )
        if kind_locally_controlled and self.failure_status == "bad":
            return False
        return super().is_enabled(action)

    def apply(self, action: Action) -> None:
        if action.name in ("good", "bad", "ugly"):
            (p,) = action.args
            if p == self.proc_id:
                self.failure_status = action.name
            return
        super().apply(action)

    def enabled_actions(self) -> Iterator[Action]:
        if self.failure_status == "bad":
            return
        yield from super().enabled_actions()

    def can_advance(self, delta: float) -> bool:
        """The Section 7 time-passage rule: while the processor is good,
        time may not pass if any locally controlled action is enabled
        (good processors take enabled steps immediately)."""
        if delta <= 0.0:
            return False
        if self.failure_status == "good":
            return next(iter(super().enabled_actions()), None) is None
        return True
