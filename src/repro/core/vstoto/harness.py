"""Randomized run driver for *VStoTO-system*.

This is the model-checking-by-simulation workhorse behind experiments
E3, E4 and E11: it drives the composed system with a seeded random
scheduler, injects client ``bcast`` inputs, and offers random view
changes (splits, merges, reshuffles) to the VS layer, while optionally
checking the Section 6 invariant suite on every reachable state and the
Section 6.2 forward simulation across every transition.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from collections.abc import Hashable
from typing import Any

from repro.core.vstoto.invariants import vstoto_invariant_suite
from repro.core.vstoto.simulation import VStoTOSimulation
from repro.core.vstoto.system import VStoTOSystem
from repro.ioa.actions import Action, act
from repro.ioa.execution import Execution
from repro.ioa.invariants import InvariantSuite

ProcId = Hashable


@dataclass
class RandomRunConfig:
    """Parameters of one randomized run.

    - ``max_steps``: transition budget;
    - ``bcast_probability``: chance per step of injecting a client
      ``bcast`` instead of letting the scheduler pick;
    - ``max_bcasts``: cap on injected values;
    - ``view_change_every``: mean number of steps between offered view
      changes (0 disables view changes);
    - ``merge_probability``: when offering a view, chance it is the full
      group rather than a random split fragment;
    - ``invariant_check_every``: evaluate the invariant suite on every
      k-th state (1 = every state).
    """

    seed: int = 0
    max_steps: int = 2000
    bcast_probability: float = 0.15
    max_bcasts: int = 40
    view_change_every: int = 250
    merge_probability: float = 0.5
    invariant_check_every: int = 1


@dataclass
class RunStats:
    """Aggregates reported by :meth:`RandomRunDriver.run`."""

    steps: int = 0
    bcasts_injected: int = 0
    views_offered: int = 0
    action_counts: dict[str, int] = field(default_factory=dict)
    invariant_states_checked: int = 0
    simulation_steps_checked: int = 0

    def count(self, name: str) -> int:
        return self.action_counts.get(name, 0)


class RandomRunDriver:
    """Drives a system; see module docstring."""

    def __init__(
        self,
        system: VStoTOSystem,
        config: RandomRunConfig,
        check_invariants: bool = False,
        check_simulation: bool = False,
        invariant_suite: InvariantSuite | None = None,
    ) -> None:
        self.system = system
        self.config = config
        self.rng = random.Random(config.seed)
        self.stats = RunStats()
        self.execution = Execution(automaton_name=system.name)
        self.suite = (
            invariant_suite
            if invariant_suite is not None
            else (vstoto_invariant_suite() if check_invariants else None)
        )
        self.simulation = VStoTOSimulation(system) if check_simulation else None
        self._next_value = 0

    # ------------------------------------------------------------------
    def _random_view_members(self) -> tuple[ProcId, ...]:
        processors = list(self.system.processors)
        if self.rng.random() < self.config.merge_probability:
            return tuple(processors)
        size = self.rng.randint(1, len(processors))
        return tuple(self.rng.sample(processors, size))

    def _maybe_offer_view(self, step: int) -> None:
        every = self.config.view_change_every
        if every <= 0:
            return
        if self.rng.random() < 1.0 / every:
            self.system.offer_view(self._random_view_members())
            self.stats.views_offered += 1

    def _maybe_bcast(self) -> Action | None:
        if self.stats.bcasts_injected >= self.config.max_bcasts:
            return None
        if self.rng.random() >= self.config.bcast_probability:
            return None
        value = f"v{self._next_value}"
        self._next_value += 1
        origin = self.rng.choice(list(self.system.processors))
        self.stats.bcasts_injected += 1
        return act("bcast", value, origin)

    # ------------------------------------------------------------------
    def run(self) -> RunStats:
        for step in range(self.config.max_steps):
            self._maybe_offer_view(step)
            action = self._maybe_bcast()
            if action is None:
                enabled = list(self.system.enabled_actions())
                if not enabled:
                    injected = self._force_bcast()
                    if injected is None:
                        break
                    action = injected
                else:
                    action = enabled[self.rng.randrange(len(enabled))]
            self._apply(action, step)
        return self.stats

    def _force_bcast(self) -> Action | None:
        """When the system quiesces, inject one more value if the budget
        allows, otherwise signal completion."""
        if self.stats.bcasts_injected >= self.config.max_bcasts:
            return None
        value = f"v{self._next_value}"
        self._next_value += 1
        origin = self.rng.choice(list(self.system.processors))
        self.stats.bcasts_injected += 1
        return act("bcast", value, origin)

    def _apply(self, action: Action, step: int) -> None:
        if self.simulation is not None:
            self.simulation.before_step()
        self.system.step(action)
        self.execution.actions.append(action)
        self.stats.steps += 1
        self.stats.action_counts[action.name] = (
            self.stats.action_counts.get(action.name, 0) + 1
        )
        if self.simulation is not None:
            self.simulation.after_step(action)
            self.stats.simulation_steps_checked = self.simulation.steps_checked
        if (
            self.suite is not None
            and step % max(self.config.invariant_check_every, 1) == 0
        ):
            self.suite.check_state(self.system, step)
            self.stats.invariant_states_checked = self.suite.checked_states

    # ------------------------------------------------------------------
    def delivered_values(self) -> dict[ProcId, list[Any]]:
        """Values delivered to each client so far (from brcv actions)."""
        delivered: dict[ProcId, list[Any]] = {
            p: [] for p in self.system.processors
        }
        for action in self.execution.actions:
            if action.name == "brcv":
                a, _q, p = action.args
                delivered[p].append(a)
        return delivered

    def external_trace(self) -> list[Action]:
        """The TO-level external trace (bcast/brcv) of the run, with the
        brcv parameters reordered to TO-machine's (a, origin, dest)."""
        result: list[Action] = []
        for action in self.execution.actions:
            if action.name == "bcast":
                result.append(action)
            elif action.name == "brcv":
                result.append(action)
        return result
