"""Executable transcriptions of the Section 6.1 invariants.

Each invariant is a predicate over a live :class:`VStoTOSystem` (the
suite is evaluated on the system object itself rather than on snapshots,
since the derived variables are computed on demand).  References give
the paper lemma each transcribes.  Together with randomized runs these
form the runtime analogue of the paper's mechanically checked proofs.
"""

from __future__ import annotations

from typing import Any

from repro.core.types import BOTTOM, Label, view_id_less
from repro.core.vstoto.process import Status, is_summary
from repro.core.vstoto.system import VStoTOSystem
from repro.ioa.invariants import Invariant, InvariantSuite


def _le(a: Any, b: Any) -> bool:
    """a <= b over G_bot."""
    return a == b or (a is BOTTOM and b is BOTTOM) or view_id_less(a, b)


def _lt(a: Any, b: Any) -> bool:
    return view_id_less(a, b)


# ----------------------------------------------------------------------
# Lemma 6.1 — consistency between process and VS view variables
# ----------------------------------------------------------------------
def inv_current_consistency(system: VStoTOSystem) -> bool:
    for p, proc in system.procs.items():
        vs_id = system.vs.current_viewid[p]
        if (proc.current is BOTTOM) != (vs_id is BOTTOM):
            return False
        if proc.current is not BOTTOM:
            if proc.current.id != vs_id:
                return False
            created = system.vs.created.get(proc.current.id)
            if created != proc.current:
                return False
    return True


# ----------------------------------------------------------------------
# Lemma 6.2 — no state exchange before a view is known
# ----------------------------------------------------------------------
def inv_bottom_implies_normal(system: VStoTOSystem) -> bool:
    return all(
        proc.status is Status.NORMAL
        for proc in system.procs.values()
        if proc.current is BOTTOM
    )


# ----------------------------------------------------------------------
# Lemma 6.3 — labels in buffers, pendings and queues match their origin
# and view
# ----------------------------------------------------------------------
def inv_label_locations(system: VStoTOSystem) -> bool:
    for p, proc in system.procs.items():
        for label in proc.buffer:
            if proc.current is BOTTOM:
                return False
            if label.origin != p or label.id != proc.current.id:
                return False
    for (p, g), items in system.vs.pending.items():
        for item in items:
            if not is_summary(item):
                label, _value = item
                if label.origin != p or label.id != g:
                    return False
    for g, queue in system.vs.queue.items():
        for item, sender in queue:
            if not is_summary(item):
                label, _value = item
                if label.origin != sender or label.id != g:
                    return False
    return True


# ----------------------------------------------------------------------
# Lemma 6.4 — every known label of origin p is below p's next label
# ----------------------------------------------------------------------
def inv_label_bound(system: VStoTOSystem) -> bool:
    try:
        allcontent = system.allcontent()
    except ValueError:
        return False
    for label in allcontent:
        proc = system.procs.get(label.origin)
        if proc is None:
            return False
        if proc.current is BOTTOM:
            return False
        bound = Label(proc.current.id, proc.nextseqno, label.origin)
        if not label < bound:
            return False
    return True


# ----------------------------------------------------------------------
# Lemma 6.5 — allcontent is a function
# ----------------------------------------------------------------------
def inv_allcontent_function(system: VStoTOSystem) -> bool:
    try:
        system.allcontent()
    except ValueError:
        return False
    return True


# ----------------------------------------------------------------------
# Lemma 6.6 — buffered labels have content entries
# ----------------------------------------------------------------------
def inv_buffer_has_content(system: VStoTOSystem) -> bool:
    for proc in system.procs.values():
        labels_with_content = {label for (label, _value) in proc.content}
        if not set(proc.buffer) <= labels_with_content:
            return False
    return True


# ----------------------------------------------------------------------
# Lemma 6.7 (part 4) — no allstate for views beyond a process's current
# ----------------------------------------------------------------------
def inv_no_future_allstate(system: VStoTOSystem) -> bool:
    for p, _g, _summary in system.allstate_all():
        proc = system.procs[p]
        if proc.current is BOTTOM:
            return False
    for p, g, _summary in system.allstate_all():
        proc = system.procs[p]
        if _lt(proc.current.id, g):
            return False
    return True


# ----------------------------------------------------------------------
# Lemma 6.10 — facts about "established"
# ----------------------------------------------------------------------
def inv_established_monotone(system: VStoTOSystem) -> bool:
    for _p, proc in system.procs.items():
        for g, flag in proc.established.items():
            if not flag:
                continue
            if proc.current is BOTTOM:
                return False
            if _lt(proc.current.id, g):
                return False
    return True


def inv_established_iff_normal(system: VStoTOSystem) -> bool:
    for proc in system.procs.values():
        if proc.current is BOTTOM:
            continue
        established = proc.established.get(proc.current.id, False)
        if established != (proc.status is Status.NORMAL):
            return False
    for proc in system.procs.values():
        if proc.current is BOTTOM and any(proc.established.values()):
            return False
    return True


# ----------------------------------------------------------------------
# Lemma 6.11 — upper bounds on highprimary
# ----------------------------------------------------------------------
def inv_highprimary_bounds(system: VStoTOSystem) -> bool:
    g0 = system.vs.initial_view.id
    for proc in system.procs.values():
        if proc.current is BOTTOM:
            continue
        current_id = proc.current.id
        established = proc.established.get(current_id, False)
        if established and proc.primary:
            if proc.highprimary != current_id:
                return False
        elif established and not proc.primary:
            # Base-case exception: Fig. 9 initialises highprimary to g0
            # for members of P0 whether or not v0 contains a quorum, so
            # under a quorum system that makes v0 non-primary the strict
            # inequality of Lemma 6.11(2) starts as equality at g0 (the
            # paper implicitly assumes a primary initial view).
            if current_id == g0 and proc.highprimary == g0:
                continue
            if not _lt(proc.highprimary, current_id):
                return False
        elif not established:
            if not _lt(proc.highprimary, current_id):
                return False
    return True


def inv_gotstate_high_below_current(system: VStoTOSystem) -> bool:
    """Lemma 6.11 part 4: summaries in gotstate have high < current.id."""
    for proc in system.procs.values():
        if proc.current is BOTTOM:
            if proc.gotstate:
                return False
            continue
        for summary in proc.gotstate.values():
            if not _lt(summary.high, proc.current.id):
                return False
    return True


def inv_inflight_high_below_view(system: VStoTOSystem) -> bool:
    """Lemma 6.11 parts 5-6: in-flight summaries have high < their view."""
    for g, queue in system.vs.queue.items():
        for item, _sender in queue:
            if is_summary(item) and not _lt(item.high, g):
                return False
    for (_p, g), items in system.vs.pending.items():
        for item in items:
            if is_summary(item) and not _lt(item.high, g):
                return False
    return True


# ----------------------------------------------------------------------
# Lemma 6.8 — before a processor sends its state-exchange summary,
# nothing from it exists in its current view
# ----------------------------------------------------------------------
def inv_send_status_nothing_sent(system: VStoTOSystem) -> bool:
    for p, proc in system.procs.items():
        if proc.status is not Status.SEND or proc.current is BOTTOM:
            continue
        g = proc.current.id
        if system.vs.pending.get((p, g)):
            return False
        for _item, sender in system.vs.queue.get(g, []):
            if sender == p:
                return False
        for q_proc in system.procs.values():
            if (
                q_proc.current is not BOTTOM
                and q_proc.current.id == g
                and p in q_proc.gotstate
            ):
                return False
    return True


# ----------------------------------------------------------------------
# Lemma 6.9 (part 4) — while collecting, every summary of p's in its
# current view carries p's own highprimary
# ----------------------------------------------------------------------
def inv_collect_summaries_match_high(system: VStoTOSystem) -> bool:
    for p, proc in system.procs.items():
        if proc.status is not Status.COLLECT or proc.current is BOTTOM:
            continue
        for summary in system.allstate(p, proc.current.id):
            if summary.high != proc.highprimary:
                return False
    return True


# ----------------------------------------------------------------------
# Lemma 6.14 — summaries sent into later views carry knowledge of every
# established primary view
# ----------------------------------------------------------------------
def inv_later_summaries_know_primaries(system: VStoTOSystem) -> bool:
    for p, proc in system.procs.items():
        for g, flag in proc.established.items():
            if not flag:
                continue
            view = system.vs.created.get(g)
            if view is None or not system.quorums.is_primary(view.set):
                continue
            for q, w_id, summary in system.allstate_all():
                if q == p and _lt(g, w_id):
                    if _lt(summary.high, g):
                        return False
    return True


# ----------------------------------------------------------------------
# Lemma 6.15 — before establishing its current view, none of p's
# summaries for that view can carry it as highprimary
# ----------------------------------------------------------------------
def inv_unestablished_view_not_high(system: VStoTOSystem) -> bool:
    for p, proc in system.procs.items():
        if proc.current is BOTTOM:
            continue
        g = proc.current.id
        if proc.established.get(g, False):
            continue
        for summary in system.allstate(p, g):
            if summary.high == g:
                return False
    return True


# ----------------------------------------------------------------------
# Lemma 6.16 — every summary's (high, ord) pair is traceable to an
# establishment: some member q established x.high with that buildorder
# ----------------------------------------------------------------------
def inv_summary_order_has_witness(system: VStoTOSystem) -> bool:
    initial_id = system.vs.initial_view.id
    for _p, _g, summary in system.allstate_all():
        if summary.high is BOTTOM:
            # Processor never saw a primary: its order must be the one
            # adopted from a chosen representative chain rooted at an
            # all-bottom exchange; the paper's lemma does not constrain
            # this case beyond what Lemma 6.12 already does.
            continue
        if summary.high == initial_id and summary.ord == ():
            continue  # the initial establishment with the empty order
        found = False
        for q, q_proc in system.procs.items():
            if not q_proc.established.get(summary.high, False):
                continue
            build = q_proc.buildorder.get(summary.high)
            if build is not None and build[: len(summary.ord)] == summary.ord:
                # x.ord equals buildorder at the witness *at the time p
                # left the view*; since buildorder only grows, prefix
                # containment is the checkable residue.
                found = True
                break
            if build == summary.ord:
                found = True
                break
        if not found:
            return False
    return True


# ----------------------------------------------------------------------
# Lemma 6.20 — a safe label implies the whole prefix reached every
# member's order for the current view
# ----------------------------------------------------------------------
def inv_safe_labels_prefix_everywhere(system: VStoTOSystem) -> bool:
    for p, proc in system.procs.items():
        if not proc.safe_labels:
            continue
        if proc.current is BOTTOM:
            return False
        if not proc.primary:
            return False
        g = proc.current.id
        for index, label in enumerate(proc.order):
            if label not in proc.safe_labels:
                continue
            prefix = tuple(proc.order[: index + 1])
            for q in proc.current.set:
                build = system.procs[q].buildorder.get(g, ())
                if build[: len(prefix)] != prefix:
                    return False
    return True


# ----------------------------------------------------------------------
# Corollary 6.19 — once every member of an established primary view
# shares an order prefix, every summary with high >= that view carries it
# ----------------------------------------------------------------------
def inv_established_prefix_propagates(system: VStoTOSystem) -> bool:
    for g, view in system.vs.created.items():
        if not system.quorums.is_primary(view.set):
            continue
        if not all(
            system.procs[q].established.get(g, False) for q in view.set
        ):
            continue
        # the common established prefix sigma: the longest common prefix
        # of the members' buildorders for g
        orders = [system.procs[q].buildorder.get(g, ()) for q in view.set]
        sigma: list = []
        for entries in zip(*orders):
            if all(entry == entries[0] for entry in entries):
                sigma.append(entries[0])
            else:
                break
        sigma_t = tuple(sigma)
        if not sigma_t:
            continue
        for _p, _w, summary in system.allstate_all():
            if summary.high == g or _lt(g, summary.high):
                if summary.ord[: len(sigma_t)] != sigma_t:
                    return False
    return True


# ----------------------------------------------------------------------
# Lemma 6.12 — allstate summaries bounded by their view
# ----------------------------------------------------------------------
def inv_allstate_high_bound(system: VStoTOSystem) -> bool:
    for p, g, summary in system.allstate_all():
        if not _le(summary.high, g):
            return False
        proc = system.procs[p]
        if proc.current is BOTTOM or not _le(summary.high, proc.current.id):
            return False
    return True


# ----------------------------------------------------------------------
# Lemma 6.13 — lower bound on highprimary after leaving an established
# primary view
# ----------------------------------------------------------------------
def inv_highprimary_lower_bound(system: VStoTOSystem) -> bool:
    for p, proc in system.procs.items():
        for g, flag in proc.established.items():
            if not flag:
                continue
            view = system.vs.created.get(g)
            if view is None:
                return False
            if not system.quorums.is_primary(view.set):
                continue
            if proc.current is BOTTOM:
                return False
            if _lt(g, proc.current.id):  # current.id > g
                if _lt(proc.highprimary, g):
                    return False
    return True


# ----------------------------------------------------------------------
# Lemma 6.17 — establishment implies all members reached the view
# ----------------------------------------------------------------------
def inv_establish_implies_members_reached(system: VStoTOSystem) -> bool:
    for _p, proc in system.procs.items():
        for g, flag in proc.established.items():
            if not flag:
                continue
            view = system.vs.created.get(g)
            if view is None:
                return False
            for q in view.set:
                q_proc = system.procs[q]
                if q_proc.current is BOTTOM:
                    return False
                if _lt(q_proc.current.id, g):
                    return False
    return True


# ----------------------------------------------------------------------
# Lemma 6.21 — per-origin label closure of orders
# ----------------------------------------------------------------------
def inv_order_origin_closed(system: VStoTOSystem) -> bool:
    try:
        allcontent = system.allcontent()
    except ValueError:
        return False
    labels_by_origin: dict = {}
    for label in allcontent:
        labels_by_origin.setdefault(label.origin, []).append(label)
    for summary in system.allsummaries():
        positions = {label: i for i, label in enumerate(summary.ord)}
        for label, position in positions.items():
            for other in labels_by_origin.get(label.origin, ()):
                if other < label:
                    other_pos = positions.get(other)
                    if other_pos is None or other_pos >= position:
                        return False
    return True


# ----------------------------------------------------------------------
# Lemma 6.22 part 2 — next within bounds
# ----------------------------------------------------------------------
def inv_next_within_order(system: VStoTOSystem) -> bool:
    return all(
        summary.next <= len(summary.ord) + 1
        for summary in system.allsummaries()
    )


# ----------------------------------------------------------------------
# Corollary 6.23/6.24 — confirm prefixes are consistent; moreover every
# confirm is a prefix of every order with >= high
# ----------------------------------------------------------------------
def inv_confirm_consistent(system: VStoTOSystem) -> bool:
    try:
        system.allconfirm()
    except AssertionError:
        return False
    return True


def inv_confirm_prefix_of_higher_orders(system: VStoTOSystem) -> bool:
    summaries = list(system.allsummaries())
    for x1 in summaries:
        for x2 in summaries:
            if _le(x1.high, x2.high):
                confirm = x1.confirm
                if x2.ord[: len(confirm)] != confirm:
                    return False
    return True


# ----------------------------------------------------------------------
# Extra structural sanity (implied by Lemma 4.1 + the composition)
# ----------------------------------------------------------------------
def inv_nextreport_within_confirm(system: VStoTOSystem) -> bool:
    """nextreport never overtakes nextconfirm (brcv precondition)."""
    return all(
        proc.nextreport <= proc.nextconfirm for proc in system.procs.values()
    )


def inv_order_no_duplicates(system: VStoTOSystem) -> bool:
    """Every order sequence in the system is duplicate-free."""
    for summary in system.allsummaries():
        if len(set(summary.ord)) != len(summary.ord):
            return False
    return True


def inv_safe_labels_ordered(system: VStoTOSystem) -> bool:
    """Safe labels at an established primary member appear in its order
    or in content (they were delivered or exchanged)."""
    for proc in system.procs.values():
        known = {label for (label, _value) in proc.content}
        if not proc.safe_labels <= known:
            return False
    return True


def vstoto_invariant_suite() -> InvariantSuite:
    """The full executable invariant suite for VStoTO-system."""
    specs = [
        ("current-consistency", inv_current_consistency, "Lemma 6.1"),
        ("bottom-implies-normal", inv_bottom_implies_normal, "Lemma 6.2"),
        ("label-locations", inv_label_locations, "Lemma 6.3"),
        ("label-bound", inv_label_bound, "Lemma 6.4"),
        ("allcontent-function", inv_allcontent_function, "Lemma 6.5"),
        ("buffer-has-content", inv_buffer_has_content, "Lemma 6.6"),
        ("no-future-allstate", inv_no_future_allstate, "Lemma 6.7(4)"),
        ("established-monotone", inv_established_monotone, "Lemma 6.10(1)"),
        ("established-iff-normal", inv_established_iff_normal, "Lemma 6.10(2)"),
        ("highprimary-bounds", inv_highprimary_bounds, "Lemma 6.11(1-3)"),
        (
            "gotstate-high-below-current",
            inv_gotstate_high_below_current,
            "Lemma 6.11(4)",
        ),
        (
            "inflight-high-below-view",
            inv_inflight_high_below_view,
            "Lemma 6.11(5-6)",
        ),
        ("allstate-high-bound", inv_allstate_high_bound, "Lemma 6.12"),
        ("send-status-nothing-sent", inv_send_status_nothing_sent, "Lemma 6.8"),
        (
            "collect-summaries-match-high",
            inv_collect_summaries_match_high,
            "Lemma 6.9(4)",
        ),
        ("highprimary-lower-bound", inv_highprimary_lower_bound, "Lemma 6.13"),
        (
            "later-summaries-know-primaries",
            inv_later_summaries_know_primaries,
            "Lemma 6.14",
        ),
        (
            "unestablished-view-not-high",
            inv_unestablished_view_not_high,
            "Lemma 6.15",
        ),
        (
            "summary-order-has-witness",
            inv_summary_order_has_witness,
            "Lemma 6.16",
        ),
        (
            "established-prefix-propagates",
            inv_established_prefix_propagates,
            "Corollary 6.19",
        ),
        (
            "safe-labels-prefix-everywhere",
            inv_safe_labels_prefix_everywhere,
            "Lemma 6.20",
        ),
        (
            "establish-implies-members-reached",
            inv_establish_implies_members_reached,
            "Lemma 6.17",
        ),
        ("order-origin-closed", inv_order_origin_closed, "Lemma 6.21"),
        ("next-within-order", inv_next_within_order, "Lemma 6.22(2)"),
        ("confirm-consistent", inv_confirm_consistent, "Corollary 6.24"),
        (
            "confirm-prefix-of-higher-orders",
            inv_confirm_prefix_of_higher_orders,
            "Corollary 6.23",
        ),
        (
            "nextreport-within-confirm",
            inv_nextreport_within_confirm,
            "structural",
        ),
        ("order-no-duplicates", inv_order_no_duplicates, "structural"),
        ("safe-labels-known", inv_safe_labels_ordered, "structural"),
    ]
    return InvariantSuite(
        Invariant(name=name, check=check, reference=ref)
        for name, check, ref in specs
    )
