"""The pre-overhaul VStoTO hot paths, kept as a living reference.

:class:`LegacyVStoTOProcess` reconstructs the original O(order) code
paths — linear ``label in order`` scans, per-call content-dict rebuilds,
uncached summaries and copied ``buildorder`` prefixes — by overriding
exactly the indexed helpers that the optimised
:class:`~repro.core.vstoto.process.VStoTOProcess` introduced.  It exists
so the benchmark suite (E20, ``benchmarks/bench_hotpath.py``) can
measure the optimisation and so the equivalence tests can assert that
optimised and legacy stacks produce *identical* externally visible
behaviour (same traces, same deliveries, same simulation events).

:func:`legacy_process_installed` patches the class the runtime
instantiates for the duration of a ``with`` block; combined with
``RingConfig(delta_token=False)`` it reproduces the full pre-overhaul
stack.
"""

from __future__ import annotations

import contextlib
from collections.abc import Iterator
from typing import Any

from repro.core.types import BOTTOM, Label
from repro.core.vstoto import runtime as _runtime_mod
from repro.core.vstoto.process import VStoTOProcess
from repro.core.vstoto.summary import Summary


class LegacyVStoTOProcess(VStoTOProcess):
    """Behaviourally identical to :class:`VStoTOProcess`; only the
    asymptotics differ (O(order)/O(content) where the base class is
    O(1)/O(Δ))."""

    def _order_contains(self, label: Label) -> bool:
        return label in self.order

    def _order_append(self, label: Label) -> None:
        self.order.append(label)

    def _replace_order(self, labels: list[Label]) -> None:
        self.order = labels

    def _content_index(self) -> dict[Label, Any]:
        return {lab: value for lab, value in self.content}

    def _content_add(self, label: Label, value: Any) -> None:
        self.content.add((label, value))

    def state_summary(self) -> Summary:
        return Summary(
            con=frozenset(self.content),
            ord=tuple(self.order),
            next=self.nextconfirm,
            high=self.highprimary,
        )

    def _record_buildorder(self) -> None:
        if self.current is not BOTTOM:
            self.buildorder[self.current.id] = tuple(self.order)


@contextlib.contextmanager
def legacy_process_installed() -> Iterator[None]:
    """Make :class:`~repro.core.vstoto.runtime.VStoTORuntime` construct
    legacy processes for the duration of the block."""
    saved = _runtime_mod.VStoTOProcess
    _runtime_mod.VStoTOProcess = LegacyVStoTOProcess
    try:
        yield
    finally:
        _runtime_mod.VStoTOProcess = saved
