"""*VStoTO-system* (Section 6): the composition of VS-machine with
``VStoTO_p`` for all p, with the inter-layer actions hidden, plus the
derived variables used by the invariants and the simulation relation.

Derived variables (Section 6):

- ``allstate[p, g]`` — every summary originating from p's participation
  in view g that is still present anywhere in the system state:

  1. p's own state summary, when p's current view id is g;
  2. summaries in VS's ``pending[p, g]``;
  3. summaries ``(x, p)`` in VS's ``queue[g]``;
  4. summaries recorded as ``gotstate(p)_q`` at any q whose current view
     id is g;

- ``allstate`` — the union over p and g;
- ``allcontent`` — the union of ``x.con`` over all of allstate **plus**
  the content present in ordinary messages anywhere in the system (the
  paper's allcontent is used as "all the information available anywhere
  that links a label with a value"; for the executable simulation we take
  the union of process ``content`` sets and in-flight pairs, which
  coincides with the paper's intent and is a function by Lemma 6.5);
- ``allconfirm`` — the least upper bound of ``x.confirm`` over allstate
  (well defined by Corollary 6.24).
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable
from typing import Any

from repro.core.quorums import QuorumSystem
from repro.core.types import BOTTOM, Label, View, ViewId
from repro.core.vs_spec import VSMachine
from repro.core.vstoto.process import (
    TimedVStoTOProcess,
    VStoTOProcess,
    is_summary,
)
from repro.core.vstoto.summary import Summary, content_as_function
from repro.ioa.composition import Composition

ProcId = Hashable

HIDDEN_ACTIONS = ("gpsnd", "gprcv", "safe", "newview")


class VStoTOSystem(Composition):
    """The composed system, with helpers computing the derived variables
    directly from the live component states.

    Parameters
    ----------
    processors:
        The set P (iteration order fixes the total order on P).
    quorums:
        The quorum system defining primary views.
    initial_members:
        P0; defaults to all of P.
    g0:
        The minimal view identifier.
    """

    def __init__(
        self,
        processors: Iterable[ProcId],
        quorums: QuorumSystem,
        initial_members: Iterable[ProcId] | None = None,
        g0: ViewId = 0,
        timed: bool = False,
    ) -> None:
        processors = tuple(processors)
        self.vs = VSMachine(processors, initial_members=initial_members, g0=g0)
        process_class = TimedVStoTOProcess if timed else VStoTOProcess
        self.procs: dict[ProcId, VStoTOProcess] = {
            p: process_class(p, quorums, self.vs.initial_view)
            for p in processors
        }
        super().__init__(
            components=[self.vs, *self.procs.values()],
            name="VStoTO-system",
            hidden=HIDDEN_ACTIONS,
            allow_shared_outputs=True,
            allow_shared_internals=True,
        )
        self.processors = processors
        self.quorums = quorums

    # ------------------------------------------------------------------
    # Derived variables (Section 6)
    # ------------------------------------------------------------------
    def allstate(self, p: ProcId, g: ViewId) -> set[Summary]:
        """``allstate[p, g]`` per the Section 6 definition."""
        result: set[Summary] = set()
        proc = self.procs[p]
        if proc.current is not BOTTOM and proc.current.id == g:
            result.add(proc.state_summary())
        for item in self.vs.pending.get((p, g), []):
            if is_summary(item):
                result.add(item)
        for item, sender in self.vs.queue.get(g, []):
            if sender == p and is_summary(item):
                result.add(item)
        for q_proc in self.procs.values():
            if (
                q_proc.current is not BOTTOM
                and q_proc.current.id == g
                and p in q_proc.gotstate
            ):
                result.add(q_proc.gotstate[p])
        return result

    def allstate_all(self) -> list[tuple[ProcId, ViewId, Summary]]:
        """Every (p, g, summary) triple with summary in allstate[p, g]."""
        view_ids = self._relevant_view_ids()
        triples: list[tuple[ProcId, ViewId, Summary]] = []
        for p in self.processors:
            for g in view_ids:
                for summary in self.allstate(p, g):
                    triples.append((p, g, summary))
        return triples

    def _relevant_view_ids(self) -> set[ViewId]:
        ids: set[ViewId] = set(self.vs.created)
        ids |= {g for (_p, g) in self.vs.pending}
        ids |= set(self.vs.queue)
        for proc in self.procs.values():
            if proc.current is not BOTTOM:
                ids.add(proc.current.id)
        return ids

    def allsummaries(self) -> set[Summary]:
        """The summaries in allstate (union over p, g)."""
        return {summary for (_p, _g, summary) in self.allstate_all()}

    def allcontent(self) -> dict[Label, Any]:
        """``allcontent`` as a function (raises if Lemma 6.5 fails).

        Includes summary con-sets from allstate, every process's local
        content, and (label, value) pairs of ordinary messages in flight
        inside VS.
        """
        pairs: set[tuple[Label, Any]] = set()
        for summary in self.allsummaries():
            pairs |= set(summary.con)
        for proc in self.procs.values():
            pairs |= proc.content
        for items in self.vs.pending.values():
            for item in items:
                if not is_summary(item):
                    pairs.add(item)
        for queue in self.vs.queue.values():
            for item, _sender in queue:
                if not is_summary(item):
                    pairs.add(item)
        return content_as_function(frozenset(pairs))

    def allconfirm(self) -> tuple[Label, ...]:
        """``allconfirm``: the lub of the summaries' confirm prefixes.

        Raises if the prefixes are not pairwise consistent (that would
        falsify Corollary 6.24).
        """
        best: tuple[Label, ...] = ()
        for summary in self.allsummaries():
            confirm = summary.confirm
            limit = min(len(confirm), len(best))
            if confirm[:limit] != best[:limit]:
                raise AssertionError(
                    "Corollary 6.24 violated: inconsistent confirm prefixes"
                )
            if len(confirm) > len(best):
                best = confirm
        return best

    # ------------------------------------------------------------------
    # Drive helpers
    # ------------------------------------------------------------------
    def offer_view(self, members: Iterable[ProcId]) -> View:
        """Queue a candidate view for VS's internal createview action."""
        return self.vs.offer_view(members)

    def process(self, p: ProcId) -> VStoTOProcess:
        return self.procs[p]


def restore_vstoto_system(system: VStoTOSystem, snapshot: dict) -> None:
    """Restore hook for :func:`repro.ioa.explore.explore` over a
    VStoTO-system: loads each component's snapshot back, converting the
    process ``status`` field from its serialised string form."""
    from repro.core.vstoto.process import Status
    from repro.ioa.explore import restore_snapshot

    for component in system.components:
        comp_snapshot = dict(snapshot[component.name])
        status_value = comp_snapshot.pop("status", None)
        restore_snapshot(component, comp_snapshot)
        if status_value is not None:
            component.status = Status(status_value)
