"""The forward simulation ``f`` from *VStoTO-system* to *TO-machine*
(Section 6.2, Lemma 6.25, Theorem 6.26), made executable.

``f(x) = y`` where:

1. ``y.queue = applyall(⟨x.allcontent, origin⟩, x.allconfirm)`` — the
   globally confirmed labels, mapped to (value, origin) pairs;
2. ``y.next[p] = x.nextreport_p``;
3. ``y.pending[p]`` = the values of p-originated labels known anywhere
   but not yet confirmed, in label order, followed by ``x.delay_p``.

The step correspondence (Lemma 6.25's case analysis) reduces to:

- a concrete ``bcast``/``brcv`` maps to the same abstract action;
- a concrete step that extends ``allconfirm`` by a label l maps to
  ``to-order(allcontent(l), l.origin)`` (only ``confirm_p`` does this);
- every other step maps to no abstract action and must leave f
  unchanged.

:class:`VStoTOSimulation` packages this for the harness: call
:meth:`before_step` / :meth:`after_step` around every transition of the
system and any violation of the relation raises
:class:`~repro.ioa.simulation.SimulationError`.
"""

from __future__ import annotations

from typing import Any

from repro.core.to_spec import TOMachine
from repro.core.vstoto.system import VStoTOSystem
from repro.ioa.actions import Action, act
from repro.ioa.simulation import ForwardSimulation, SimulationError


def f_state(system: VStoTOSystem) -> dict[str, Any]:
    """Compute f of the current global state, shaped exactly like a
    TO-machine snapshot ({queue, pending, next})."""
    allcontent = system.allcontent()
    allconfirm = system.allconfirm()
    confirmed = set(allconfirm)
    queue = [(allcontent[label], label.origin) for label in allconfirm]
    pending: dict[Any, list[Any]] = {}
    next_index: dict[Any, int] = {}
    for p in system.processors:
        proc = system.procs[p]
        unconfirmed = sorted(
            label
            for label in allcontent
            if label.origin == p and label not in confirmed
        )
        pending[p] = [allcontent[label] for label in unconfirmed] + list(proc.delay)
        next_index[p] = proc.nextreport
    return {"queue": queue, "pending": pending, "next": next_index}


def corresponding_actions(
    pre: dict[str, Any], action: Action, post: dict[str, Any]
) -> list[Action]:
    """The abstract action sequence simulating one concrete step."""
    result: list[Action] = []
    pre_queue, post_queue = pre["queue"], post["queue"]
    if post_queue[: len(pre_queue)] != pre_queue:
        raise SimulationError(
            f"allconfirm shrank or changed across step {action}"
        )
    for a, p in post_queue[len(pre_queue) :]:
        result.append(act("to-order", a, p))
    if action.name in ("bcast", "brcv"):
        result.append(action)
    return result


class VStoTOSimulation:
    """Step-wise checker of Theorem 6.26 for a live VStoTO-system.

    Usage::

        sim = VStoTOSimulation(system)
        ...
        sim.before_step()
        system.step(action)
        sim.after_step(action)
    """

    def __init__(self, system: VStoTOSystem) -> None:
        self.system = system
        self.to_machine = TOMachine(system.processors)
        self._checker = ForwardSimulation(
            abstract=self.to_machine,
            abstraction=lambda state: state,  # states are precomputed f values
            corresponding_actions=corresponding_actions,
        )
        self._pre: dict[str, Any] | None = None
        self._checker.check_initial(f_state(system))

    @property
    def steps_checked(self) -> int:
        return self._checker.steps_checked

    def before_step(self) -> None:
        self._pre = f_state(self.system)

    def after_step(self, action: Action) -> None:
        if self._pre is None:
            raise RuntimeError("after_step without matching before_step")
        post = f_state(self.system)
        self._checker.step(self._pre, action, post)
        self._pre = None
