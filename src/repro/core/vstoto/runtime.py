"""Event-driven hosting of ``VStoTO_p`` automata over a live VS service.

Section 7 composes the timed processes ``VStoTO'_p`` with any automaton
satisfying VS(b, d, Q).  This module is that composition made runnable:
each processor's automaton is driven by the VS callbacks (gprcv, safe,
newview) and by client ``bcast`` calls; after each input the adapter
fires the processor's enabled locally controlled actions to quiescence —
the "good processors take enabled steps immediately" rule — forwarding
``gpsnd`` outputs to the VS service and ``brcv`` outputs to the client.

A *bad* processor (per the network's failure oracle) takes no locally
controlled steps: its inputs still update state (VS won't actually
deliver to it while bad, since the network gates arrivals), but draining
is deferred until it is next driven while good.

The adapter records a timed trace of the TO-level external actions
(``bcast``/``brcv``), which :class:`~repro.core.to_spec.TOPropertyChecker`
consumes for the Theorem 7.1/7.2 experiments.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Callable, Hashable
from typing import Any

from repro.core.quorums import QuorumSystem
from repro.core.types import BOTTOM, View
from repro.core.vstoto.process import Status, VStoTOProcess
from repro.ioa.actions import Action, act
from repro.ioa.timed import IncrementalStatusMerger, TimedTrace
from repro.membership.service import TokenRingVS

ProcId = Hashable

#: callback signature: (value, origin, destination)
DeliverCallback = Callable[[Any, ProcId, ProcId], None]

#: passive observer of a VStoTO status transition:
#: (time, proc, old_status, new_status) with statuses as their string
#: values ("normal"/"send"/"collect").
StatusListener = Callable[[float, ProcId, str, str], None]

_DRAIN_LIMIT = 100_000


@dataclass(frozen=True)
class Delivery:
    """One client delivery: value from origin delivered at dst at time."""

    time: float
    value: Any
    origin: ProcId
    dst: ProcId


class VStoTORuntime:
    """The full stack: VStoTO processes over a :class:`TokenRingVS`.

    Parameters
    ----------
    service:
        A (not yet started) token-ring VS instance; the runtime installs
        itself as the service's callback sink.
    quorums:
        Quorum system defining primary views.
    on_deliver:
        Optional client callback for ``brcv`` outputs.
    """

    def __init__(
        self,
        service: TokenRingVS,
        quorums: QuorumSystem,
        on_deliver: DeliverCallback | None = None,
    ) -> None:
        self.service = service
        self.quorums = quorums
        self.on_deliver = on_deliver
        self.processors = service.processors
        self.procs: dict[ProcId, VStoTOProcess] = {
            p: VStoTOProcess(p, quorums, service.initial_view)
            for p in self.processors
        }
        service.on_gprcv = self._on_gprcv
        service.on_safe = self._on_safe
        service.on_newview = self._on_newview
        self.trace = TimedTrace()
        self._merger = IncrementalStatusMerger(
            self.trace, lambda: service.network.oracle.history
        )
        self.deliveries: list[Delivery] = []
        self._draining: set[ProcId] = set()
        self._status_listeners: list[StatusListener] = []
        self._last_status: dict[ProcId, str] = {
            p: proc.status.value for p, proc in self.procs.items()
        }
        # Observability slots (bound by attach_obs; `is None` guarded).
        self._m_views = None
        self._m_pending_delay = None
        self._m_pending_buffer = None
        self._m_residency = None
        self._tracer = None
        self._mode: dict[ProcId, str] = {}
        self._mode_since: dict[ProcId, float] = {}
        obs = getattr(service, "obs", None)
        if obs is not None:
            self.attach_obs(obs)
        # Drain deferred work as soon as a processor stops being bad.
        service.network.oracle.add_listener(self._on_status_change)

    # ------------------------------------------------------------------
    def attach_obs(self, obs: Any) -> None:
        """Bind TO-layer metrics: views installed, pending-queue depths
        after each drain, and primary/non-primary residency time (how
        much virtual time each processor spends able to confirm an
        order).  Inherited automatically from ``service.obs``."""
        if obs is None:
            return
        if obs.metrics is not None:
            metrics = obs.metrics
            views = metrics.counter(
                "vstoto_views_installed_total",
                "newview inputs applied per processor",
                labels=("proc",),
            )
            delay = metrics.gauge(
                "vstoto_pending_delay",
                "client values awaiting a label (no current view)",
                labels=("proc",),
            )
            buffer = metrics.gauge(
                "vstoto_pending_buffer",
                "labelled values awaiting gpsnd",
                labels=("proc",),
            )
            residency = metrics.counter(
                "vstoto_residency_time",
                "virtual time spent in primary vs non-primary views",
                labels=("proc", "mode"),
            )
            self._m_views = {p: views.labels(str(p)) for p in self.processors}
            self._m_pending_delay = {
                p: delay.labels(str(p)) for p in self.processors
            }
            self._m_pending_buffer = {
                p: buffer.labels(str(p)) for p in self.processors
            }
            self._m_residency = {
                (p, mode): residency.labels(str(p), mode)
                for p in self.processors
                for mode in ("primary", "non_primary")
            }
            now = self.service.simulator.now
            for p in self.processors:
                self._mode[p] = self._mode_of(p)
                self._mode_since[p] = now
        self._tracer = obs.tracer

    def _mode_of(self, p: ProcId) -> str:
        return "primary" if self.procs[p].primary else "non_primary"

    def _flush_residency(self, p: ProcId, now: float) -> None:
        elapsed = now - self._mode_since[p]
        if elapsed > 0:
            self._m_residency[(p, self._mode[p])].inc(elapsed)
        self._mode_since[p] = now

    def finalize_obs(self) -> None:
        """Flush residency accumulators up to the current virtual time
        (call once after the run, before reading the metrics)."""
        if self._m_residency is None:
            return
        now = self.service.simulator.now
        for p in self.processors:
            self._flush_residency(p, now)

    def _on_status_change(self, event: Any) -> None:
        target = event.target
        if isinstance(target, tuple) or target not in self.procs:
            return
        if event.status.value != "bad":
            self.service.simulator.call_soon(lambda: self._drain(target))

    # ------------------------------------------------------------------
    # Client interface
    # ------------------------------------------------------------------
    def start(self) -> None:
        self.service.start()

    def run_until(self, time: float) -> None:
        self.service.run_until(time)
        # Drain any processor that recovered from a bad period and has
        # pending enabled work.
        for p in self.processors:
            self._drain(p)

    def add_status_listener(self, fn: StatusListener) -> None:
        """Subscribe a passive observer to VStoTO status transitions
        (Fig. 9 edges: normal→send on newview, send→collect on the
        summary gpsnd, collect→normal when state exchange completes).
        Listeners must not schedule events or draw randomness.  The
        protocol-event hub of :mod:`repro.faults.triggers` and the
        scenario coverage tracker are the customers."""
        self._status_listeners.append(fn)

    def _emit_status_edge(self, p: ProcId) -> None:
        new = self.procs[p].status.value
        old = self._last_status[p]
        if new == old:
            return
        self._last_status[p] = new
        now = self.service.simulator.now
        if self._tracer is not None:
            self._tracer.on_status_edge(now, p, old, new)
        for fn in self._status_listeners:
            fn(now, p, old, new)

    def broadcast(self, p: ProcId, value: Any) -> None:
        """Client at p submits a value (the TO ``bcast`` input)."""
        self._record("bcast", value, p)
        self.procs[p].step(act("bcast", value, p))
        self._emit_status_edge(p)
        self._drain(p)

    def schedule_broadcast(self, time: float, p: ProcId, value: Any) -> None:
        self.service.simulator.schedule_at(
            time, lambda: self.broadcast(p, value)
        )

    def delivered_values(self, p: ProcId) -> list[Any]:
        return [d.value for d in self.deliveries if d.dst == p]

    # ------------------------------------------------------------------
    # VS callbacks
    # ------------------------------------------------------------------
    def _on_gprcv(self, payload: Any, src: ProcId, dst: ProcId) -> None:
        proc = self.procs[dst]
        # Establishment (Section 6 history variable) happens inside a
        # summary gprcv that completes state exchange: status leaves
        # COLLECT for NORMAL.  Watch for it on behalf of the tracer.
        watching = self._tracer is not None and proc.status is not Status.NORMAL
        proc.step(act("gprcv", payload, src, dst))
        if (
            watching
            and proc.status is Status.NORMAL
            and proc.current is not BOTTOM
        ):
            self._tracer.on_established(
                self.service.simulator.now, proc.current.id, dst
            )
        self._emit_status_edge(dst)
        self._drain(dst)

    def _on_safe(self, payload: Any, src: ProcId, dst: ProcId) -> None:
        self.procs[dst].step(act("safe", payload, src, dst))
        self._emit_status_edge(dst)
        self._drain(dst)

    def _on_newview(self, view: View, p: ProcId) -> None:
        self.procs[p].step(act("newview", view, p))
        if self._m_views is not None:
            self._m_views[p].inc()
            self._flush_residency(p, self.service.simulator.now)
            self._mode[p] = self._mode_of(p)
        self._emit_status_edge(p)
        self._drain(p)

    # ------------------------------------------------------------------
    def _drain(self, p: ProcId) -> None:
        """Fire enabled locally controlled actions at p to quiescence."""
        if p in self._draining:
            return  # re-entrant call via service.gpsnd -> ... -> _drain
        if self.service.network.oracle.processor_bad(p):
            return
        proc = self.procs[p]
        self._draining.add(p)
        try:
            for _ in range(_DRAIN_LIMIT):
                action = next(iter(proc.enabled_actions()), None)
                if action is None:
                    return
                proc.step(action)
                self._emit_status_edge(p)
                self._after_local_action(p, action)
            raise RuntimeError(f"drain limit exceeded at {p!r}")
        finally:
            self._draining.discard(p)
            if self._m_pending_delay is not None:
                self._m_pending_delay[p].set(len(proc.delay))
                self._m_pending_buffer[p].set(len(proc.buffer))

    def _after_local_action(self, p: ProcId, action: Action) -> None:
        if action.name == "gpsnd":
            payload, _p = action.args
            self.service.gpsnd(p, payload)
        elif action.name == "brcv":
            value, origin, dst = action.args
            self._record("brcv", value, origin, dst)
            self.deliveries.append(
                Delivery(
                    time=self.service.simulator.now,
                    value=value,
                    origin=origin,
                    dst=dst,
                )
            )
            if self.on_deliver is not None:
                self.on_deliver(value, origin, dst)

    def _record(self, name: str, *args: Any) -> None:
        self.trace.append(self.service.simulator.now, act(name, *args))
        if self._tracer is not None:
            self._tracer.on_to_event(self.service.simulator.now, name, args)

    # ------------------------------------------------------------------
    def merged_trace(self) -> TimedTrace:
        """TO external events merged with failure-status history (the
        input shape for TOPropertyChecker).  Incremental: only events
        recorded since the previous call are merged in."""
        return self._merger.merged()
