"""The VStoTO algorithm (Section 5) and its verification apparatus
(Section 6–7).

- :mod:`repro.core.vstoto.summary` — the label/summary types and the
  operations of Fig. 8 (knowncontent, maxprimary, chosenrep, shortorder,
  fullorder, maxnextconfirm);
- :mod:`repro.core.vstoto.process` — the per-processor automaton
  ``VStoTO_p`` of Figs. 9–10, plus the Section 7 timed wrapper
  ``VStoTO'_p`` with failure statuses;
- :mod:`repro.core.vstoto.system` — *VStoTO-system*: the composition
  with VS-machine, and the derived variables (allstate, allcontent,
  allconfirm) of Section 6;
- :mod:`repro.core.vstoto.invariants` — executable transcriptions of the
  Section 6.1 lemmas;
- :mod:`repro.core.vstoto.simulation` — the forward simulation ``f`` of
  Section 6.2, checked step by step (Theorem 6.26);
- :mod:`repro.core.vstoto.harness` — randomized run driver used by the
  tests and benchmarks (workload injection, partition/merge scripting).
"""

from repro.core.vstoto.summary import Summary, summary_confirm
from repro.core.vstoto.process import (
    Status,
    TimedVStoTOProcess,
    VStoTOProcess,
)
from repro.core.vstoto.system import VStoTOSystem
from repro.core.vstoto.invariants import vstoto_invariant_suite
from repro.core.vstoto.simulation import VStoTOSimulation
from repro.core.vstoto.harness import RandomRunConfig, RandomRunDriver

__all__ = [
    "Summary",
    "summary_confirm",
    "Status",
    "VStoTOProcess",
    "TimedVStoTOProcess",
    "VStoTOSystem",
    "vstoto_invariant_suite",
    "VStoTOSimulation",
    "RandomRunConfig",
    "RandomRunDriver",
]
