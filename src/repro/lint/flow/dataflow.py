"""Forward dataflow over :class:`~repro.lint.flow.cfg.Cfg` graphs.

A small worklist engine (:func:`run_forward`) plus the concrete fact
extractors the ASYNC rules share:

- :func:`reaching_definitions` — the classic gen/kill analysis over
  local names, used by the dropped-handle rule to ask "is this task
  variable ever read again?" and exposed for fixture tests;
- :func:`self_attr_reads` / :func:`self_attr_writes` — which
  ``self.<attr>`` slots a node reads or writes (writes include
  augmented assignment, subscript stores and in-place mutator calls
  like ``self._pending.pop(...)``, which are exactly the "act" half of
  a check-then-act race);
- :func:`guard_reads` — the ``self.<attr>`` slots read inside a branch
  *condition* (``if``/``while`` tests, ``match`` subjects, ``assert``
  and ternary conditions): the "check" half.

Facts are immutable (``frozenset``) so fixpoint detection is plain
equality, and every iteration order is derived from reverse post-order
— the same file always produces the same facts.
"""

from __future__ import annotations

import ast
from abc import ABC, abstractmethod
from typing import Generic, TypeVar

from repro.lint.flow.cfg import Cfg, CfgNode, _walk_same_scope

F = TypeVar("F")

#: Method names that mutate their receiver in place (mirrors
#: repro.lint.rules.common.MUTATOR_METHODS; duplicated here so the flow
#: layer has no dependency on the rules package).
_MUTATORS = frozenset(
    {
        "append", "appendleft", "add", "clear", "discard", "extend",
        "extendleft", "insert", "pop", "popitem", "popleft", "remove",
        "reverse", "setdefault", "sort", "update",
    }
)


class ForwardAnalysis(ABC, Generic[F]):
    """One forward dataflow problem: facts of type ``F`` flow along CFG
    edges, merged with :meth:`join` and transformed by :meth:`transfer`."""

    @abstractmethod
    def initial(self) -> F:
        """The fact for a node no path has reached yet (bottom)."""

    def boundary(self) -> F:
        """The fact at the function entry (defaults to bottom)."""
        return self.initial()

    @abstractmethod
    def join(self, left: F, right: F) -> F:
        """Merge facts arriving along two edges."""

    @abstractmethod
    def transfer(self, cfg: Cfg, node: CfgNode, fact: F) -> F:
        """The fact after executing ``node`` given ``fact`` before it."""


def run_forward(cfg: Cfg, analysis: ForwardAnalysis[F]) -> dict[int, F]:
    """Iterate ``analysis`` to fixpoint; returns the *entry* fact of
    every node (apply ``transfer`` once more for the exit fact)."""
    order = cfg.reverse_postorder()
    position = {index: rank for rank, index in enumerate(order)}
    in_facts: dict[int, F] = {index: analysis.initial() for index in order}
    in_facts[cfg.entry] = analysis.boundary()
    worklist = sorted(order, key=position.__getitem__)
    pending = set(worklist)
    while worklist:
        index = worklist.pop(0)
        pending.discard(index)
        node = cfg.node(index)
        out = analysis.transfer(cfg, node, in_facts[index])
        for succ in node.succs:
            merged = analysis.join(in_facts[succ], out)
            if merged != in_facts[succ]:
                in_facts[succ] = merged
                if succ not in pending:
                    pending.add(succ)
                    worklist.append(succ)
        worklist.sort(key=position.__getitem__)
    return in_facts


# ----------------------------------------------------------------------
# Per-node expression slices
# ----------------------------------------------------------------------
def node_exprs(node: CfgNode) -> list[ast.AST]:
    """The AST fragments actually *evaluated at* this CFG node.

    Compound statements contribute only their header — an ``If`` node's
    body belongs to successor nodes, so a test node exposes just the
    test expression.  Simple statements expose themselves whole.
    """
    stmt = node.stmt
    if stmt is None:
        return []
    if node.kind == "test":
        if isinstance(stmt, (ast.If, ast.While)):
            return [stmt.test]
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            return [stmt.iter, stmt.target]
        if isinstance(stmt, ast.Match):
            return [stmt.subject]
        return []
    if node.kind == "with":
        assert isinstance(stmt, (ast.With, ast.AsyncWith))
        out: list[ast.AST] = []
        for item in stmt.items:
            out.append(item.context_expr)
            if item.optional_vars is not None:
                out.append(item.optional_vars)
        return out
    if node.kind == "except":
        assert isinstance(stmt, ast.ExceptHandler)
        return [stmt.type] if stmt.type is not None else []
    if node.kind in ("entry", "exit", "finally"):
        return []
    return [stmt]


def _is_self_attr(expr: ast.AST, self_name: str) -> str | None:
    """``self.<attr>`` -> ``attr``; anything else -> None."""
    if (
        isinstance(expr, ast.Attribute)
        and isinstance(expr.value, ast.Name)
        and expr.value.id == self_name
    ):
        return expr.attr
    return None


def self_attr_reads(node: CfgNode, self_name: str = "self") -> frozenset[str]:
    """Attributes of ``self`` loaded at this node."""
    out: set[str] = set()
    for expr in node_exprs(node):
        for child in _walk_same_scope(expr):
            attr = _is_self_attr(child, self_name)
            if attr is not None and isinstance(child.ctx, ast.Load):  # type: ignore[attr-defined]
                out.add(attr)
    return frozenset(out)


def self_attr_writes(node: CfgNode, self_name: str = "self") -> frozenset[str]:
    """Attributes of ``self`` written at this node.

    Covers plain and augmented assignment (``self.x = ...``,
    ``self.x += ...``), deletion, subscript stores (``self.x[k] = v``
    mutates the object held in slot ``x``), and in-place mutator calls
    (``self.x.pop(...)``, ``self.x.add(...)``).
    """
    out: set[str] = set()
    for expr in node_exprs(node):
        for child in _walk_same_scope(expr):
            attr = _is_self_attr(child, self_name)
            if attr is not None and isinstance(
                child.ctx,  # type: ignore[attr-defined]
                (ast.Store, ast.Del),
            ):
                out.add(attr)
            if isinstance(child, ast.Subscript) and isinstance(
                child.ctx, (ast.Store, ast.Del)
            ):
                inner = _is_self_attr(child.value, self_name)
                if inner is not None:
                    out.add(inner)
            if (
                isinstance(child, ast.Call)
                and isinstance(child.func, ast.Attribute)
                and child.func.attr in _MUTATORS
            ):
                inner = _is_self_attr(child.func.value, self_name)
                if inner is not None:
                    out.add(inner)
    return frozenset(out)


def guard_reads(node: CfgNode, self_name: str = "self") -> frozenset[str]:
    """Attributes of ``self`` read inside a branch *condition* at this
    node — the "check" in check-then-act.

    Sources: ``if``/``while`` tests, ``match`` subjects, ``assert``
    conditions, and ternary (``IfExp``) conditions inside any simple
    statement.  Indirect guards (``flag = self.x is None`` followed by
    ``if flag:``) are out of scope by design — the lint asks for the
    check and the state read to be syntactically tied.
    """
    stmt = node.stmt
    if stmt is None:
        return frozenset()
    tests: list[ast.AST] = []
    if node.kind == "test" and isinstance(stmt, (ast.If, ast.While)):
        tests.append(stmt.test)
    elif node.kind == "test" and isinstance(stmt, ast.Match):
        tests.append(stmt.subject)
    elif node.kind == "stmt":
        if isinstance(stmt, ast.Assert):
            tests.append(stmt.test)
        for child in _walk_same_scope(stmt):
            if isinstance(child, ast.IfExp):
                tests.append(child.test)
    out: set[str] = set()
    for test in tests:
        for child in _walk_same_scope(test):
            attr = _is_self_attr(child, self_name)
            if attr is not None and isinstance(child.ctx, ast.Load):  # type: ignore[attr-defined]
                out.add(attr)
    return frozenset(out)


# ----------------------------------------------------------------------
# Reaching definitions
# ----------------------------------------------------------------------
ReachingFact = frozenset[tuple[str, int]]


def _defined_names(node: CfgNode) -> frozenset[str]:
    """Local names bound at this node (assignment targets, loop
    targets, ``with ... as`` vars, walrus targets, handler names)."""
    out: set[str] = set()
    if node.kind == "except" and isinstance(node.stmt, ast.ExceptHandler):
        if node.stmt.name:
            out.add(node.stmt.name)
    for expr in node_exprs(node):
        for child in _walk_same_scope(expr):
            if isinstance(child, ast.Name) and isinstance(child.ctx, ast.Store):
                out.add(child.id)
            elif isinstance(child, ast.NamedExpr) and isinstance(
                child.target, ast.Name
            ):
                out.add(child.target.id)
    return frozenset(out)


class _ReachingDefinitions(ForwardAnalysis[ReachingFact]):
    def __init__(self, cfg: Cfg) -> None:
        self.params = frozenset(
            arg.arg
            for arg in (
                list(cfg.func.args.posonlyargs)
                + list(cfg.func.args.args)
                + list(cfg.func.args.kwonlyargs)
                + ([cfg.func.args.vararg] if cfg.func.args.vararg else [])
                + ([cfg.func.args.kwarg] if cfg.func.args.kwarg else [])
            )
        )

    def initial(self) -> ReachingFact:
        return frozenset()

    def boundary(self) -> ReachingFact:
        return frozenset((name, -1) for name in self.params)

    def join(self, left: ReachingFact, right: ReachingFact) -> ReachingFact:
        return left | right

    def transfer(self, cfg: Cfg, node: CfgNode, fact: ReachingFact) -> ReachingFact:
        defined = _defined_names(node)
        if not defined:
            return fact
        kept = frozenset(entry for entry in fact if entry[0] not in defined)
        return kept | frozenset((name, node.index) for name in defined)


def reaching_definitions(cfg: Cfg) -> dict[int, ReachingFact]:
    """Entry fact per node: which ``(name, defining node)`` pairs reach
    it.  Parameters reach the entry as ``(name, -1)``."""
    return run_forward(cfg, _ReachingDefinitions(cfg))
