"""Per-function control-flow graphs over stdlib :mod:`ast`.

One :class:`Cfg` per function body, statement-granular, with the three
properties the ASYNC rules need and single-pass AST walks cannot give:

- **suspension points** — a node whose statement contains an ``await``
  (or is an ``async for`` step / ``async with`` enter) is marked
  ``suspends``; every interleaving hazard is defined relative to these;
- **try/except/finally edges** — any statement inside a ``try`` body
  may transfer to each handler head and to the ``finally`` entry;
  ``return``/``break``/``continue``/``raise`` route *through* enclosing
  ``finally`` blocks before reaching their real target, so a release
  placed in a ``finally`` dominates every exit the way it does at
  runtime;
- **lock-held sets** — each node carries the lexical set of
  ``with``/``async with`` context expressions active around it
  (rendered with :func:`ast.unparse`), which is exact for ``asyncio``
  locks because they are scope-structured by construction.

Known approximations (deliberate, documented so rule authors can rely
on them): exceptions propagate only to the *innermost* enclosing
``try``; an uncaught ``raise`` routes through enclosing ``finally``
blocks straight to the exit node; a ``while`` test is always assumed
able to exit the loop.  All of these only ever *add* paths, so
must-analyses built on this graph stay conservative.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

FuncDef = ast.FunctionDef | ast.AsyncFunctionDef

#: AST nodes whose bodies belong to a *different* function scope; walks
#: that ask "does this statement await" must not descend into them.
_SCOPE_BARRIERS = (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda, ast.ClassDef)


def _walk_same_scope(node: ast.AST) -> list[ast.AST]:
    """Every descendant of ``node`` in the same function scope.

    Like :func:`ast.walk` but nested function/lambda/class bodies are
    opaque: an ``await`` inside an inner ``async def`` does not suspend
    the outer function.  The root itself is included — but when the
    root *is* a scope barrier (a nested def appearing as a statement),
    it is a leaf: its body belongs to the inner scope.
    """
    out: list[ast.AST] = [node]
    if isinstance(node, _SCOPE_BARRIERS):
        return out
    stack: list[ast.AST] = [node]
    while stack:
        current = stack.pop()
        for child in ast.iter_child_nodes(current):
            if isinstance(child, _SCOPE_BARRIERS):
                out.append(child)  # the def itself, not its body
                continue
            out.append(child)
            stack.append(child)
    return out


def stmt_contains_await(node: ast.AST) -> bool:
    """True when ``node`` contains a suspension point in its own scope:
    an ``await`` expression or an ``async for`` comprehension clause."""
    for child in _walk_same_scope(node):
        if isinstance(child, ast.Await):
            return True
        if isinstance(child, ast.comprehension) and child.is_async:
            return True
    return False


@dataclass
class CfgNode:
    """One statement-granular control-flow node."""

    index: int
    #: "entry" | "exit" | "stmt" | "test" | "with" | "except" | "finally"
    kind: str
    stmt: ast.AST | None
    line: int
    #: statement contains an await / async-for step / async-with enter.
    suspends: bool = False
    #: lexical (async) with contexts active around this node, as
    #: ast.unparse'd context expressions ("self._request_lock").
    held: frozenset[str] = frozenset()
    #: node lives inside a ``finally`` suite.
    in_finally: bool = False
    succs: list[int] = field(default_factory=list)
    preds: list[int] = field(default_factory=list)


@dataclass
class Cfg:
    """The control-flow graph of one function body."""

    func: FuncDef
    nodes: list[CfgNode]
    entry: int
    exit: int

    def node(self, index: int) -> CfgNode:
        return self.nodes[index]

    def reverse_postorder(self) -> list[int]:
        """Node indices in reverse post-order from the entry (the
        canonical forward-analysis iteration order); unreachable nodes
        are appended afterwards in index order so every node gets a
        fact."""
        seen: set[int] = set()
        order: list[int] = []

        def visit(start: int) -> None:
            stack: list[tuple[int, int]] = [(start, 0)]
            seen.add(start)
            while stack:
                index, edge = stack[-1]
                succs = self.nodes[index].succs
                if edge < len(succs):
                    stack[-1] = (index, edge + 1)
                    nxt = succs[edge]
                    if nxt not in seen:
                        seen.add(nxt)
                        stack.append((nxt, 0))
                else:
                    order.append(index)
                    stack.pop()

        visit(self.entry)
        order.reverse()
        for node in self.nodes:
            if node.index not in seen:
                order.append(node.index)
        return order

    def reachable(
        self, start: int, stop_through: frozenset[int] = frozenset()
    ) -> set[int]:
        """Indices reachable from ``start`` (exclusive) along paths that
        never pass through a node in ``stop_through``."""
        out: set[int] = set()
        stack = [s for s in self.nodes[start].succs]
        while stack:
            index = stack.pop()
            if index in out or index in stop_through:
                continue
            out.add(index)
            stack.extend(self.nodes[index].succs)
        return out


@dataclass
class _Loop:
    head: int
    #: how many ``finally`` frames were open when this loop started;
    #: ``break``/``continue`` only detour through frames *above* this
    #: (a ``finally`` wrapping the whole loop never sees them).
    finally_depth: int
    #: source nodes whose ``break`` exits this loop; wired on close.
    break_sources: list[int] = field(default_factory=list)


@dataclass
class _Finally:
    marker: int
    #: abrupt destinations routed through this finally, resolved when
    #: the finally body's out-frontier is known.
    pending: set[tuple[str, int]] = field(default_factory=set)


class _Builder:
    """Single-use recursive CFG builder (see :func:`build_cfg`)."""

    def __init__(self, func: FuncDef) -> None:
        self.func = func
        self.nodes: list[CfgNode] = []
        self.held: frozenset[str] = frozenset()
        self.in_finally = False
        self.loops: list[_Loop] = []
        self.finallies: list[_Finally] = []
        #: per-``try`` implicit-raise targets (handler heads + finally
        #: marker); every node built under the try gets these edges.
        self.exc_targets: list[list[int]] = []
        self.entry = self._new("entry", None, func.lineno)
        self.exit = self._new("exit", None, func.lineno)

    # -- graph primitives ----------------------------------------------
    def _new(
        self, kind: str, stmt: ast.AST | None, line: int, suspends: bool = False
    ) -> int:
        node = CfgNode(
            index=len(self.nodes),
            kind=kind,
            stmt=stmt,
            line=line,
            suspends=suspends,
            held=self.held,
            in_finally=self.in_finally,
        )
        self.nodes.append(node)
        if kind not in ("entry", "exit") and self.exc_targets:
            for target in self.exc_targets[-1]:
                self._edge(node.index, target)
        return node.index

    def _edge(self, src: int, dst: int) -> None:
        succs = self.nodes[src].succs
        if dst not in succs:
            succs.append(dst)

    def _wire(self, preds: list[int], dst: int) -> None:
        for src in preds:
            self._edge(src, dst)

    # -- abrupt transfer through finally blocks ------------------------
    def _route_abrupt(self, src: int, dest: tuple[str, int]) -> None:
        """Send control from ``src`` toward ``dest``, detouring through
        the innermost enclosing ``finally`` when one applies.

        ``return``/``raise`` run every open ``finally``; ``break`` and
        ``continue`` only run frames opened *inside* their loop.
        """
        kind, loop_id = dest
        floor = 0 if kind == "exit" else self.loops[loop_id].finally_depth
        if len(self.finallies) > floor:
            frame = self.finallies[-1]
            self._edge(src, frame.marker)
            frame.pending.add(dest)
        else:
            self._resolve_dest(src, dest)

    def _resolve_dest(self, src: int, dest: tuple[str, int]) -> None:
        kind, loop_id = dest
        if kind == "exit":
            self._edge(src, self.exit)
        elif kind == "break":
            self.loops[loop_id].break_sources.append(src)
        elif kind == "continue":
            self._edge(src, self.loops[loop_id].head)
        else:  # pragma: no cover - defensive
            raise AssertionError(f"unknown abrupt destination {dest!r}")

    # -- statement dispatch --------------------------------------------
    def block(self, stmts: list[ast.stmt], preds: list[int]) -> list[int]:
        """Build a statement suite; returns the out-frontier (nodes that
        fall through to whatever follows the suite)."""
        frontier = preds
        for stmt in stmts:
            if not frontier:
                # Unreachable code after return/raise/break: still build
                # nodes (rules may anchor findings there) from nothing.
                frontier = []
            frontier = self._stmt(stmt, frontier)
        return frontier

    def _stmt(self, stmt: ast.stmt, preds: list[int]) -> list[int]:
        if isinstance(stmt, ast.If):
            return self._if(stmt, preds)
        if isinstance(stmt, ast.While):
            return self._while(stmt, preds)
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            return self._for(stmt, preds)
        if isinstance(stmt, ast.Try):
            return self._try(stmt, preds)
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            return self._with(stmt, preds)
        if isinstance(stmt, ast.Match):
            return self._match(stmt, preds)
        if isinstance(stmt, ast.Return):
            index = self._new(
                "stmt", stmt, stmt.lineno, suspends=stmt_contains_await(stmt)
            )
            self._wire(preds, index)
            self._route_abrupt(index, ("exit", 0))
            return []
        if isinstance(stmt, ast.Raise):
            index = self._new("stmt", stmt, stmt.lineno)
            self._wire(preds, index)
            if not self.exc_targets:
                self._route_abrupt(index, ("exit", 0))
            # inside a try, the implicit edges from _new already point
            # at the handler heads / finally marker.
            return []
        if isinstance(stmt, ast.Break):
            index = self._new("stmt", stmt, stmt.lineno)
            self._wire(preds, index)
            if self.loops:
                self._route_abrupt(index, ("break", len(self.loops) - 1))
            return []
        if isinstance(stmt, ast.Continue):
            index = self._new("stmt", stmt, stmt.lineno)
            self._wire(preds, index)
            if self.loops:
                self._route_abrupt(index, ("continue", len(self.loops) - 1))
            return []
        # Simple statement (assignments, Expr, assert, nested defs, ...).
        index = self._new(
            "stmt", stmt, stmt.lineno, suspends=stmt_contains_await(stmt)
        )
        self._wire(preds, index)
        return [index]

    # -- compound statements -------------------------------------------
    def _if(self, stmt: ast.If, preds: list[int]) -> list[int]:
        test = self._new(
            "test", stmt, stmt.lineno, suspends=stmt_contains_await(stmt.test)
        )
        self._wire(preds, test)
        then_out = self.block(stmt.body, [test])
        else_out = self.block(stmt.orelse, [test]) if stmt.orelse else [test]
        return then_out + else_out

    def _while(self, stmt: ast.While, preds: list[int]) -> list[int]:
        test = self._new(
            "test", stmt, stmt.lineno, suspends=stmt_contains_await(stmt.test)
        )
        self._wire(preds, test)
        self.loops.append(_Loop(head=test, finally_depth=len(self.finallies)))
        body_out = self.block(stmt.body, [test])
        self._wire(body_out, test)  # back edge
        loop = self.loops.pop()
        else_out = self.block(stmt.orelse, [test]) if stmt.orelse else [test]
        return else_out + loop.break_sources

    def _for(self, stmt: ast.For | ast.AsyncFor, preds: list[int]) -> list[int]:
        suspends = isinstance(stmt, ast.AsyncFor) or stmt_contains_await(stmt.iter)
        step = self._new("test", stmt, stmt.lineno, suspends=suspends)
        self._wire(preds, step)
        self.loops.append(_Loop(head=step, finally_depth=len(self.finallies)))
        body_out = self.block(stmt.body, [step])
        self._wire(body_out, step)  # back edge: next iteration
        loop = self.loops.pop()
        else_out = self.block(stmt.orelse, [step]) if stmt.orelse else [step]
        return else_out + loop.break_sources

    def _with(self, stmt: ast.With | ast.AsyncWith, preds: list[int]) -> list[int]:
        is_async = isinstance(stmt, ast.AsyncWith)
        enter = self._new(
            "with",
            stmt,
            stmt.lineno,
            suspends=is_async
            or any(stmt_contains_await(item.context_expr) for item in stmt.items),
        )
        self._wire(preds, enter)
        saved = self.held
        self.held = saved | {
            ast.unparse(item.context_expr) for item in stmt.items
        }
        try:
            body_out = self.block(stmt.body, [enter])
        finally:
            self.held = saved
        return body_out

    def _match(self, stmt: ast.Match, preds: list[int]) -> list[int]:
        subject = self._new(
            "test", stmt, stmt.lineno, suspends=stmt_contains_await(stmt.subject)
        )
        self._wire(preds, subject)
        frontier: list[int] = [subject]  # no case may match
        for case in stmt.cases:
            frontier.extend(self.block(case.body, [subject]))
        return frontier

    def _try(self, stmt: ast.Try, preds: list[int]) -> list[int]:
        handler_heads = [
            self._new("except", handler, handler.lineno)
            for handler in stmt.handlers
        ]
        frame: _Finally | None = None
        if stmt.finalbody:
            frame = _Finally(
                marker=self._new("finally", stmt, stmt.finalbody[0].lineno)
            )
        targets = handler_heads + ([frame.marker] if frame else [])

        self.exc_targets.append(targets)
        if frame is not None:
            self.finallies.append(frame)
        try:
            body_out = self.block(stmt.body, preds)
            else_out = (
                self.block(stmt.orelse, body_out) if stmt.orelse else body_out
            )
            handler_outs: list[int] = []
            for head, handler in zip(handler_heads, stmt.handlers):
                handler_outs.extend(self.block(handler.body, [head]))
        finally:
            self.exc_targets.pop()
            if frame is not None:
                self.finallies.pop()

        normal_out = else_out + handler_outs
        if frame is None:
            return normal_out
        # Everything funnels through the finally suite exactly once.
        self._wire(normal_out, frame.marker)
        saved = self.in_finally
        self.in_finally = True
        try:
            finally_out = self.block(stmt.finalbody, [frame.marker])
        finally:
            self.in_finally = saved
        for dest in sorted(frame.pending):
            for src in finally_out:
                self._route_abrupt(src, dest)
        # The finally also completes normally into whatever follows --
        # unless every inbound path was abrupt, which we over-approximate
        # by always falling through (adds paths, never removes).
        return finally_out

    # -- driver --------------------------------------------------------
    def build(self) -> Cfg:
        frontier = self.block(self.func.body, [self.entry])
        self._wire(frontier, self.exit)
        if not self.nodes[self.entry].succs:
            self._edge(self.entry, self.exit)
        for node in self.nodes:
            for succ in node.succs:
                self.nodes[succ].preds.append(node.index)
        return Cfg(
            func=self.func, nodes=self.nodes, entry=self.entry, exit=self.exit
        )


def build_cfg(func: FuncDef) -> Cfg:
    """Build the statement-granular CFG of one function body.

    Nested function definitions appear as opaque single nodes — build
    their CFGs separately (``walk_functions`` yields every def).
    """
    return _Builder(func).build()
