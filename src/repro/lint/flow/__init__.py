"""Flow-sensitive analysis layer for repro-lint.

The stateless AST rules (DET/IOA/SNAP/TYP families) see one node at a
time; the ASYNC concurrency family needs to see *paths* — what happens
between a check and an act, whether a lock is held across a suspension
point, whether a release is reachable from an acquire on every exit.
This package supplies the machinery:

- :mod:`repro.lint.flow.cfg` — a per-function control-flow graph
  builder over stdlib :mod:`ast`, with await/async-for/async-with
  suspension points marked on nodes, try/except/finally edges, loop
  back edges, and lexical (async) ``with`` lock-held sets;
- :mod:`repro.lint.flow.dataflow` — a small forward worklist engine
  plus the concrete fact extractors the ASYNC rules share (reaching
  definitions, ``self._*`` attribute read/write/guard facts).

Everything here is pure stdlib and deterministic: node ids are
allocated in syntactic order, successor lists preserve insertion
order, and analyses iterate in reverse post-order — the same scan of
the same file always yields the same facts.
"""

from __future__ import annotations

from repro.lint.flow.cfg import Cfg, CfgNode, build_cfg, stmt_contains_await
from repro.lint.flow.dataflow import (
    ForwardAnalysis,
    guard_reads,
    reaching_definitions,
    run_forward,
    self_attr_reads,
    self_attr_writes,
)

__all__ = [
    "Cfg",
    "CfgNode",
    "build_cfg",
    "ForwardAnalysis",
    "guard_reads",
    "reaching_definitions",
    "run_forward",
    "self_attr_reads",
    "self_attr_writes",
    "stmt_contains_await",
]
