"""repro-lint: determinism & IOA-discipline static analysis.

The verification story of this reproduction rests on two properties that
ordinary linters cannot see:

1. **Determinism** — every execution is replayed from seeds, compared
   against golden digests, and merged byte-identically across worker
   processes.  One unseeded RNG draw, wall-clock read, or unordered
   ``set`` iteration leaking into a trace or message silently
   invalidates all of that.
2. **IOA discipline** — the TO/VS/VStoTO machines transcribe the
   paper's precondition/effect figures (Figs. 3, 6, 8-10).  The model
   requires preconditions to be pure predicates and effects to be
   deterministic state transformations; a mutating precondition or an
   I/O-performing effect is a transcription bug even when every test
   still passes.

This package is a self-contained AST analyzer (stdlib :mod:`ast` +
:mod:`tokenize`, no third-party dependencies) enforcing both, plus
snapshot safety for derived caches and the typing discipline that the
CI ``mypy`` gate assumes.  Run it as::

    python -m repro.lint src
    python -m repro.lint src --format json
    python -m repro.lint --list-rules

Findings are suppressed line-by-line with ``# repro-lint:
ignore[RULE]`` comments; each suppression silences only the rules it
names (``ignore[*]`` silences all) on its own physical line.
"""

from __future__ import annotations

from repro.lint.engine import (
    ALL_RULES,
    FileContext,
    LintResult,
    Rule,
    analyze_paths,
    iter_python_files,
    rule_by_id,
)
from repro.lint.model import Finding

__version__ = "1.0.0"

__all__ = [
    "ALL_RULES",
    "FileContext",
    "Finding",
    "LintResult",
    "Rule",
    "analyze_paths",
    "iter_python_files",
    "rule_by_id",
    "__version__",
]
