"""Finding data model for repro-lint."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True, order=True)
class Finding:
    """One analyzer finding, anchored to a source location.

    The field order (path, line, col, rule) doubles as the sort order
    used by every reporter, so output is stable across runs and across
    platforms regardless of rule execution order.
    """

    path: str
    line: int
    col: int
    rule: str
    message: str
    suppressed: bool = False

    def format(self) -> str:
        """Render in the conventional ``path:line:col: RULE message`` shape."""
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"

    def to_json(self) -> dict[str, object]:
        """A JSON-serialisable dict (stable key order)."""
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule,
            "message": self.message,
            "suppressed": self.suppressed,
        }
