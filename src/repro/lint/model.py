"""Finding data model for repro-lint."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True, order=True)
class Finding:
    """One analyzer finding, anchored to a source location.

    The field order (path, line, col, rule) doubles as the sort order
    used by every reporter, so output is stable across runs and across
    platforms regardless of rule execution order.
    """

    path: str
    line: int
    col: int
    rule: str
    message: str
    suppressed: bool = False
    #: justification text from the suppression comment (suppressed
    #: findings only) — what ``--show-suppressed`` audits read.
    note: str = ""

    def format(self) -> str:
        """Render in the conventional ``path:line:col: RULE message`` shape."""
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"

    def to_json(self) -> dict[str, object]:
        """A JSON-serialisable dict (stable key order)."""
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule,
            "message": self.message,
            "suppressed": self.suppressed,
            "note": self.note,
        }


@dataclass(frozen=True, order=True)
class StaleSuppression:
    """A ``repro-lint: ignore[...]`` directive that silenced nothing.

    Stale directives are warnings, not findings: they do not fail the
    gate on their own, but they hide future regressions (the code they
    excused was fixed or moved, and the comment now pre-forgives
    whatever lands on that line next).
    """

    path: str
    line: int
    #: the named rule ids with no finding on the line ("*" for blanket).
    rules: tuple[str, ...]

    def format(self) -> str:
        named = ",".join(self.rules)
        return (
            f"{self.path}:{self.line}: warning: stale suppression "
            f"ignore[{named}] — no such finding on this line; remove it"
        )

    def to_json(self) -> dict[str, object]:
        return {"path": self.path, "line": self.line, "rules": list(self.rules)}
