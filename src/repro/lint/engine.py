"""Analysis engine: file contexts, import resolution, suppressions, rules.

The engine parses each file once into a :class:`FileContext` carrying
everything rules need — the AST, an import-resolution map, the
suppression table, and the module's dotted name — then runs every
selected rule over it and applies line-scoped suppressions to the
findings the rules yield.

Suppression comments::

    self.t0 = time.perf_counter()  # repro-lint: ignore[DET002] -- profiling layer owns the clock
    foo()  # repro-lint: ignore[DET001,IOA002]
    bar()  # repro-lint: ignore[*]

A suppression silences only the named rules (or all, for ``*``) on its
own physical line; findings are anchored to the line of the offending
AST node, so the comment goes on that line.  Text after the bracket is
the *justification* — it travels with the suppressed finding so
``--show-suppressed`` audits read as prose, and CI requires one on
every ASYNC suppression.  A suppression naming a rule that reports
nothing on its line is *stale* and surfaces as a warning.

Fixture files outside ``src`` can claim a module identity for scoped
rules with a pragma comment anywhere in the file::

    # repro-lint: module=repro.core.fixture
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from abc import ABC, abstractmethod
from collections.abc import Iterable, Iterator, Sequence
from dataclasses import dataclass, field
from pathlib import Path

from repro.lint.model import Finding, StaleSuppression

_SUPPRESS_RE = re.compile(r"repro-lint:\s*ignore\[([^\]]*)\]")
_MODULE_RE = re.compile(r"repro-lint:\s*module=([\w.]+)")

#: Rule id used for files the engine cannot parse.  Not suppressible —
#: a syntax-broken file must always fail the gate.
PARSE_ERROR_RULE = "LINT000"


def _module_name_for(path: Path) -> str:
    """Derive a dotted module name by walking up through packages."""
    resolved = path.resolve()
    parts = [resolved.stem] if resolved.stem != "__init__" else []
    parent = resolved.parent
    while (parent / "__init__.py").exists():
        parts.insert(0, parent.name)
        parent = parent.parent
    return ".".join(parts) if parts else resolved.stem


@dataclass
class FileContext:
    """Everything the rules need to know about one parsed source file."""

    path: str
    module: str
    text: str
    tree: ast.Module
    #: line number -> set of suppressed rule ids ("*" = all rules).
    suppressions: dict[int, frozenset[str]]
    #: line number -> justification text after the ``ignore[...]``.
    suppression_notes: dict[int, str]
    #: name in this module -> dotted origin ("random", "time.perf_counter").
    imports: dict[str, str]
    #: lazily populated: child node -> parent node.
    _parents: dict[int, ast.AST] = field(default_factory=dict, repr=False)

    # ------------------------------------------------------------------
    @classmethod
    def parse(cls, path: Path, display_path: str | None = None) -> FileContext:
        text = path.read_text(encoding="utf-8")
        tree = ast.parse(text, filename=str(path))
        suppressions, notes, module_pragma = _scan_comments(text)
        module = module_pragma or _module_name_for(path)
        return cls(
            path=display_path or str(path),
            module=module,
            text=text,
            tree=tree,
            suppressions=suppressions,
            suppression_notes=notes,
            imports=_import_map(tree),
        )

    # ------------------------------------------------------------------
    def resolve(self, node: ast.AST) -> str | None:
        """Resolve a Name/Attribute chain to its dotted import origin.

        ``random.Random`` -> ``"random.Random"`` under ``import random``;
        ``perf_counter`` -> ``"time.perf_counter"`` under ``from time
        import perf_counter``.  Returns None when the root name is not
        an import (a local variable, parameter, builtin, ...).
        """
        if isinstance(node, ast.Attribute):
            base = self.resolve(node.value)
            return f"{base}.{node.attr}" if base is not None else None
        if isinstance(node, ast.Name):
            return self.imports.get(node.id)
        return None

    def is_suppressed(self, rule_id: str, line: int) -> bool:
        rules = self.suppressions.get(line)
        if rules is None:
            return False
        return "*" in rules or rule_id in rules

    def source_segment(self, node: ast.AST) -> str:
        return ast.get_source_segment(self.text, node) or ""

    def parent_of(self, node: ast.AST) -> ast.AST | None:
        """The syntactic parent of ``node`` (built on first use)."""
        if not self._parents:
            for parent in ast.walk(self.tree):
                for child in ast.iter_child_nodes(parent):
                    self._parents[id(child)] = parent
        return self._parents.get(id(node))


def _scan_comments(
    text: str,
) -> tuple[dict[int, frozenset[str]], dict[int, str], str | None]:
    """Extract suppression comments (with justification text), and the
    optional module pragma.

    Uses :mod:`tokenize` so directives inside string literals are never
    mistaken for live suppressions.
    """
    suppressions: dict[int, frozenset[str]] = {}
    notes: dict[int, str] = {}
    module_pragma: str | None = None
    try:
        tokens = tokenize.generate_tokens(io.StringIO(text).readline)
        for tok in tokens:
            if tok.type != tokenize.COMMENT:
                continue
            match = _SUPPRESS_RE.search(tok.string)
            if match:
                rules = frozenset(
                    part.strip() for part in match.group(1).split(",") if part.strip()
                )
                if rules:
                    line = tok.start[0]
                    suppressions[line] = suppressions.get(line, frozenset()) | rules
                    note = tok.string[match.end() :].strip().lstrip("-—: ").strip()
                    if note:
                        notes[line] = note
            pragma = _MODULE_RE.search(tok.string)
            if pragma:
                module_pragma = pragma.group(1)
    except tokenize.TokenError:
        pass  # the ast parse already succeeded; comments best-effort
    return suppressions, notes, module_pragma


def _import_map(tree: ast.Module) -> dict[str, str]:
    imports: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.asname:
                    imports[alias.asname] = alias.name
                else:
                    # ``import os.path`` binds the name ``os``.
                    root = alias.name.split(".")[0]
                    imports[root] = root
        elif isinstance(node, ast.ImportFrom):
            if node.level or node.module is None:
                continue  # relative imports never shadow stdlib modules
            for alias in node.names:
                if alias.name == "*":
                    continue
                imports[alias.asname or alias.name] = f"{node.module}.{alias.name}"
    return imports


# ----------------------------------------------------------------------
# Rules
# ----------------------------------------------------------------------
class Rule(ABC):
    """One analysis rule.  Subclasses set ``id`` and ``summary`` and
    yield findings from :meth:`check`; the engine applies suppressions.

    The optional ``rationale`` / ``example_bad`` / ``example_good``
    class attributes feed ``--explain`` (the class docstring is the
    rule's long-form description).
    """

    id: str = ""
    summary: str = ""
    rationale: str = ""
    example_bad: str = ""
    example_good: str = ""

    @abstractmethod
    def check(self, ctx: FileContext) -> Iterator[Finding]:
        """Yield every finding for ``ctx`` (suppression-unaware)."""

    def finding(self, ctx: FileContext, node: ast.AST, message: str) -> Finding:
        line = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0)
        suppressed = ctx.is_suppressed(self.id, line)
        return Finding(
            path=ctx.path,
            line=line,
            col=col,
            rule=self.id,
            message=message,
            suppressed=suppressed,
            note=ctx.suppression_notes.get(line, "") if suppressed else "",
        )


def _build_registry() -> tuple[Rule, ...]:
    from repro.lint.rules import ALL_RULE_CLASSES

    return tuple(cls() for cls in ALL_RULE_CLASSES)


_REGISTRY: tuple[Rule, ...] | None = None


def all_rules() -> tuple[Rule, ...]:
    global _REGISTRY
    if _REGISTRY is None:
        _REGISTRY = _build_registry()
    return _REGISTRY


def rule_by_id(rule_id: str) -> Rule:
    for rule in all_rules():
        if rule.id == rule_id:
            return rule
    raise KeyError(f"unknown rule id: {rule_id!r}")


class _LazyRules(Sequence[Rule]):
    """Sequence view over the registry, resolved on first access so the
    package can be imported without importing every rule module."""

    def __len__(self) -> int:
        return len(all_rules())

    def __getitem__(self, index: int) -> Rule:  # type: ignore[override]
        return all_rules()[index]

    def __iter__(self) -> Iterator[Rule]:
        return iter(all_rules())


ALL_RULES: Sequence[Rule] = _LazyRules()


# ----------------------------------------------------------------------
# Driving
# ----------------------------------------------------------------------
@dataclass
class LintResult:
    """The outcome of analysing a set of paths."""

    findings: list[Finding] = field(default_factory=list)
    suppressed: list[Finding] = field(default_factory=list)
    #: suppression comments naming selected rules that reported nothing
    #: on their line — dead directives that hide future regressions.
    stale: list[StaleSuppression] = field(default_factory=list)
    files_scanned: int = 0

    @property
    def counts(self) -> dict[str, int]:
        out: dict[str, int] = {}
        for finding in self.findings:
            out[finding.rule] = out.get(finding.rule, 0) + 1
        return dict(sorted(out.items()))

    @property
    def ok(self) -> bool:
        return not self.findings


def iter_python_files(paths: Iterable[str | Path]) -> list[Path]:
    """Expand files/directories into a deduplicated list of ``.py`` files."""
    out: list[Path] = []
    seen: set[Path] = set()
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            candidates = [
                p
                for p in sorted(path.rglob("*.py"))
                if "__pycache__" not in p.parts
            ]
        elif path.suffix == ".py":
            candidates = [path]
        else:
            raise FileNotFoundError(f"not a python file or directory: {path}")
        for candidate in candidates:
            key = candidate.resolve()
            if key not in seen:
                seen.add(key)
                out.append(candidate)
    return out


def _parse_or_error(path: Path, shown: str) -> FileContext | Finding:
    try:
        return FileContext.parse(path, display_path=shown)
    except SyntaxError as exc:
        return Finding(
            path=shown,
            line=exc.lineno or 1,
            col=(exc.offset or 1) - 1,
            rule=PARSE_ERROR_RULE,
            message=f"syntax error: {exc.msg}",
        )


def _run_rules(ctx: FileContext, rules: Sequence[Rule]) -> list[Finding]:
    findings: list[Finding] = []
    for rule in rules:
        findings.extend(rule.check(ctx))
    return findings


def stale_suppressions(
    ctx: FileContext, findings: Sequence[Finding], rules: Sequence[Rule]
) -> list[StaleSuppression]:
    """Suppression comments in ``ctx`` that silenced nothing.

    A directive is stale for each *selected* rule it names that has no
    finding on its line (rules outside the current selection are left
    alone — running ``--select ASYNC001`` must not flag every DET
    suppression in the tree).  A ``*`` directive is stale when the line
    has no finding at all.
    """
    rule_ids = {rule.id for rule in rules}
    hits_by_line: dict[int, set[str]] = {}
    for finding in findings:
        hits_by_line.setdefault(finding.line, set()).add(finding.rule)
    out: list[StaleSuppression] = []
    for line, named in sorted(ctx.suppressions.items()):
        hits = hits_by_line.get(line, set())
        if "*" in named:
            if not hits:
                out.append(StaleSuppression(path=ctx.path, line=line, rules=("*",)))
            continue
        dead = sorted((named & rule_ids) - hits)
        if dead:
            out.append(StaleSuppression(path=ctx.path, line=line, rules=tuple(dead)))
    return out


def analyze_file(
    path: Path,
    rules: Sequence[Rule] | None = None,
    display_path: str | None = None,
) -> list[Finding]:
    """Run ``rules`` (default: all) over one file; findings carry their
    suppression flag but are *not* filtered here."""
    shown = display_path or str(path)
    parsed = _parse_or_error(path, shown)
    if isinstance(parsed, Finding):
        return [parsed]
    return _run_rules(parsed, rules if rules is not None else all_rules())


def select_rules(
    select: Iterable[str] | None = None,
    ignore: Iterable[str] | None = None,
) -> list[Rule]:
    """Resolve ``--select`` / ``--ignore`` id lists to rule instances."""
    chosen = (
        [rule_by_id(rid) for rid in select]
        if select is not None
        else list(all_rules())
    )
    if ignore:
        dropped = set(ignore)
        for rid in dropped:
            rule_by_id(rid)  # validate: unknown ids are an error
        chosen = [rule for rule in chosen if rule.id not in dropped]
    return chosen


def analyze_paths(
    paths: Iterable[str | Path],
    select: Iterable[str] | None = None,
    ignore: Iterable[str] | None = None,
) -> LintResult:
    """Analyse every python file under ``paths`` with the selected rules."""
    rules = select_rules(select, ignore)
    result = LintResult()
    for path in iter_python_files(paths):
        result.files_scanned += 1
        parsed = _parse_or_error(path, str(path))
        if isinstance(parsed, Finding):
            result.findings.append(parsed)
            continue
        file_findings = _run_rules(parsed, rules)
        result.stale.extend(stale_suppressions(parsed, file_findings, rules))
        for finding in file_findings:
            if finding.suppressed:
                result.suppressed.append(finding)
            else:
                result.findings.append(finding)
    result.findings.sort()
    result.suppressed.sort()
    result.stale.sort()
    return result
