"""Reporters: render a :class:`~repro.lint.engine.LintResult`.

Both reporters order findings identically (path, line, col, rule) so
output is byte-stable across runs — the same discipline the analyzer
enforces on the code it scans.
"""

from __future__ import annotations

import inspect
import json

from repro.lint.engine import LintResult, Rule, all_rules


def render_text(result: LintResult, show_suppressed: bool = False) -> str:
    """Human-readable ``path:line:col: RULE message`` lines + summary."""
    lines = [finding.format() for finding in result.findings]
    if show_suppressed:
        for finding in result.suppressed:
            tail = f" -- {finding.note}" if finding.note else ""
            lines.append(f"{finding.format()} (suppressed{tail})")
    lines.extend(stale.format() for stale in result.stale)
    total = len(result.findings)
    noun = "finding" if total == 1 else "findings"
    summary = (
        f"{total} {noun} ({len(result.suppressed)} suppressed) "
        f"in {result.files_scanned} files"
    )
    if result.stale:
        summary += f", {len(result.stale)} stale suppression warnings"
    lines.append(summary)
    return "\n".join(lines)


def render_json(result: LintResult) -> str:
    """Machine-readable report (schema version 2: adds per-finding
    ``note`` and the top-level ``stale`` warning list)."""
    payload = {
        "version": 2,
        "files_scanned": result.files_scanned,
        "counts": result.counts,
        "findings": [finding.to_json() for finding in result.findings],
        "suppressed": [finding.to_json() for finding in result.suppressed],
        "stale": [stale.to_json() for stale in result.stale],
    }
    return json.dumps(payload, indent=2, sort_keys=False)


def render_rule_list() -> str:
    """``--list-rules`` output: one ``ID  summary`` line per rule."""
    return "\n".join(f"{rule.id}  {rule.summary}" for rule in all_rules())


def render_explain(rule: Rule) -> str:
    """``--explain RULE`` output: the rule's doc, rationale, and a
    minimal bad/good example pair."""
    lines = [f"{rule.id} — {rule.summary}", ""]
    doc = inspect.getdoc(rule)
    if doc:
        lines.extend([doc, ""])
    if rule.rationale:
        lines.extend(["Why it matters:", f"  {rule.rationale}", ""])
    if rule.example_bad:
        lines.append("Flagged:")
        lines.extend(f"    {ln}" for ln in rule.example_bad.splitlines())
        lines.append("")
    if rule.example_good:
        lines.append("Clean:")
        lines.extend(f"    {ln}" for ln in rule.example_good.splitlines())
        lines.append("")
    return "\n".join(lines).rstrip()
