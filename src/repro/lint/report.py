"""Reporters: render a :class:`~repro.lint.engine.LintResult`.

Both reporters order findings identically (path, line, col, rule) so
output is byte-stable across runs — the same discipline the analyzer
enforces on the code it scans.
"""

from __future__ import annotations

import json

from repro.lint.engine import LintResult, all_rules


def render_text(result: LintResult, show_suppressed: bool = False) -> str:
    """Human-readable ``path:line:col: RULE message`` lines + summary."""
    lines = [finding.format() for finding in result.findings]
    if show_suppressed:
        lines.extend(
            f"{finding.format()} (suppressed)" for finding in result.suppressed
        )
    total = len(result.findings)
    noun = "finding" if total == 1 else "findings"
    lines.append(
        f"{total} {noun} ({len(result.suppressed)} suppressed) "
        f"in {result.files_scanned} files"
    )
    return "\n".join(lines)


def render_json(result: LintResult) -> str:
    """Machine-readable report (schema version 1)."""
    payload = {
        "version": 1,
        "files_scanned": result.files_scanned,
        "counts": result.counts,
        "findings": [finding.to_json() for finding in result.findings],
        "suppressed": [finding.to_json() for finding in result.suppressed],
    }
    return json.dumps(payload, indent=2, sort_keys=False)


def render_rule_list() -> str:
    """``--list-rules`` output: one ``ID  summary`` line per rule."""
    return "\n".join(f"{rule.id}  {rule.summary}" for rule in all_rules())
