"""Command-line interface: ``python -m repro.lint [paths...]``.

Exit codes: 0 — clean; 1 — findings; 2 — usage or input error.
"""

from __future__ import annotations

import argparse
from collections.abc import Sequence

from repro.lint.engine import analyze_paths, rule_by_id
from repro.lint.report import (
    render_explain,
    render_json,
    render_rule_list,
    render_text,
)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description=(
            "Determinism & IOA-discipline static analyzer for the "
            "partitionable-GCS reproduction."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to analyze (default: src)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--select",
        metavar="RULES",
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--ignore",
        metavar="RULES",
        help="comma-separated rule ids to skip",
    )
    parser.add_argument(
        "--show-suppressed",
        action="store_true",
        help="also list suppressed findings (text format)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="list every rule id and summary, then exit",
    )
    parser.add_argument(
        "--explain",
        metavar="RULE",
        help="print one rule's doc, rationale and bad/good example, then exit",
    )
    return parser


def _split(raw: str | None) -> list[str] | None:
    if raw is None:
        return None
    return [part.strip() for part in raw.split(",") if part.strip()]


def main(argv: Sequence[str] | None = None) -> int:
    parser = build_parser()
    options = parser.parse_args(argv)
    if options.list_rules:
        print(render_rule_list())
        return 0
    if options.explain:
        try:
            rule = rule_by_id(options.explain)
        except KeyError as exc:
            parser.error(str(exc))  # exits 2
            raise AssertionError("unreachable") from exc  # pragma: no cover
        print(render_explain(rule))
        return 0
    try:
        result = analyze_paths(
            options.paths,
            select=_split(options.select),
            ignore=_split(options.ignore),
        )
    except (FileNotFoundError, KeyError) as exc:
        parser.error(str(exc))  # exits 2
        raise AssertionError("unreachable") from exc  # pragma: no cover
    if options.format == "json":
        print(render_json(result))
    else:
        print(render_text(result, show_suppressed=options.show_suppressed))
    return 0 if result.ok else 1
