"""Determinism rules (DET001-DET005).

Every execution of this reproduction must be a pure function of its
seeds: runs are replayed for simulation-relation checks, compared
against cross-process golden digests, and sharded across worker pools
that must merge byte-identically (ROADMAP tier-1, EXPERIMENTS E18-E20).
These rules reject the constructs that silently break that property.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.lint.engine import FileContext, Rule
from repro.lint.model import Finding
from repro.lint.rules.common import WALL_CLOCK_CALLS, module_matches

#: random-module functions drawing from the hidden global instance.
_GLOBAL_RANDOM_HINT = (
    "draws from process-global RNG state; derive a seeded stream via "
    "repro.sim.rng.RngRegistry instead"
)


class UnseededRandomRule(Rule):
    """DET001: unseeded or process-global ``random`` use.

    ``random.Random(seed)`` is the *only* sanctioned constructor;
    module-level draws (``random.random()``, ``random.choice``, ...),
    ``random.seed``, ``random.Random()`` without a seed, and
    ``random.SystemRandom`` all read state that is not derived from the
    run's master seed.  ``repro.sim.rng`` is the one module allowed to
    own the seeding idiom.
    """

    id = "DET001"
    summary = "unseeded/global random use outside repro.sim.rng"

    ALLOWED_MODULES = ("repro.sim.rng",)

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if module_matches(ctx.module, self.ALLOWED_MODULES):
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            resolved = ctx.resolve(node.func)
            if resolved is None or not resolved.startswith("random."):
                continue
            tail = resolved[len("random.") :]
            if "." in tail:
                continue  # e.g. a method on an aliased submodule; not module-level
            if tail == "Random":
                if not node.args and not node.keywords:
                    yield self.finding(
                        ctx,
                        node,
                        "random.Random() constructed without a seed; pass an "
                        "explicit seed derived from the run's master seed",
                    )
            elif tail == "SystemRandom":
                yield self.finding(
                    ctx,
                    node,
                    "random.SystemRandom is entropy-seeded and can never replay; "
                    + _GLOBAL_RANDOM_HINT,
                )
            else:
                yield self.finding(
                    ctx,
                    node,
                    f"module-level random.{tail}() " + _GLOBAL_RANDOM_HINT,
                )


class WallClockRule(Rule):
    """DET002: wall-clock reads outside the profiling layer.

    Virtual time comes from the simulator; host-clock reads inside the
    reproduction make traces, digests, and parallel-sweep merges
    irreproducible.  ``repro.obs.profile`` (host-side callback costing)
    and ``repro.rt`` (the live runtime, where wall time *is* the time
    base — its captures are verified offline, not replayed) are the
    sanctioned exceptions; benchmark drivers live outside ``src`` and
    are not scanned by the CI gate.
    """

    id = "DET002"
    summary = "wall-clock read outside repro.obs.profile / repro.rt"

    ALLOWED_MODULES = ("repro.obs.profile", "repro.rt")

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if module_matches(ctx.module, self.ALLOWED_MODULES):
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            resolved = ctx.resolve(node.func)
            if resolved in WALL_CLOCK_CALLS:
                yield self.finding(
                    ctx,
                    node,
                    f"wall-clock read {resolved}(); simulation code must use "
                    "virtual time (Simulator.now) — host timing belongs in "
                    "repro.obs.profile or benchmarks",
                )


def _is_unordered_expr(ctx: FileContext, node: ast.AST) -> bool:
    """Syntactically-certain unordered iterables: set displays, set
    comprehensions, ``set(...)``/``frozenset(...)`` calls, ``.keys()``."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        func = node.func
        if (
            isinstance(func, ast.Name)
            and func.id in ("set", "frozenset")
            and ctx.resolve(func) is None  # not shadowed by an import
        ):
            return True
        if isinstance(func, ast.Attribute) and func.attr == "keys":
            return True
    return False


def _describe_unordered(node: ast.AST) -> str:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return "a set"
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
        return ".keys() of a mapping"
    return "a set"


class UnsortedSetIterationRule(Rule):
    """DET003: unordered iteration feeding ordered construction.

    Building a list, tuple, string, or loop-appended sequence directly
    from a bare set or ``.keys()`` view bakes hash/insertion order into
    ordered output — exactly how nondeterminism leaks into traces and
    wire messages.  Wrap the iterable in ``sorted(...)`` (the idiom
    used throughout, e.g. ``fullorder``'s label ordering in Fig. 8
    code) or keep the result unordered.
    """

    id = "DET003"
    summary = "unordered set/keys iteration feeding ordered construction"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Call):
                yield from self._check_call(ctx, node)
            elif isinstance(node, ast.ListComp):
                for gen in node.generators:
                    if _is_unordered_expr(ctx, gen.iter):
                        yield self._flag(ctx, gen.iter, "a list comprehension")
            elif isinstance(node, ast.For):
                yield from self._check_for(ctx, node)

    def _check_call(self, ctx: FileContext, node: ast.Call) -> Iterator[Finding]:
        func = node.func
        is_seq_ctor = (
            isinstance(func, ast.Name)
            and func.id in ("list", "tuple")
            and ctx.resolve(func) is None
        )
        is_join = isinstance(func, ast.Attribute) and func.attr == "join"
        if not (is_seq_ctor or is_join) or len(node.args) != 1:
            return
        arg = node.args[0]
        consumer = f"{func.id}(...)" if is_seq_ctor else "str.join"  # type: ignore[union-attr]
        if _is_unordered_expr(ctx, arg):
            yield self._flag(ctx, arg, consumer)
        elif isinstance(arg, ast.GeneratorExp):
            for gen in arg.generators:
                if _is_unordered_expr(ctx, gen.iter):
                    yield self._flag(ctx, gen.iter, consumer)

    def _check_for(self, ctx: FileContext, node: ast.For) -> Iterator[Finding]:
        if not _is_unordered_expr(ctx, node.iter):
            return
        for child in ast.walk(ast.Module(body=node.body, type_ignores=[])):
            if isinstance(child, (ast.Yield, ast.YieldFrom)):
                yield self._flag(ctx, node.iter, "a generator")
                return
            if (
                isinstance(child, ast.Call)
                and isinstance(child.func, ast.Attribute)
                and child.func.attr in ("append", "extend", "insert")
            ):
                yield self._flag(ctx, node.iter, "sequence appends")
                return

    def _flag(self, ctx: FileContext, node: ast.AST, consumer: str) -> Finding:
        return self.finding(
            ctx,
            node,
            f"iteration over {_describe_unordered(node)} feeds {consumer}; "
            "wrap the iterable in sorted(...) to fix the order",
        )


class IdentityOrderingRule(Rule):
    """DET004: ordering keyed on ``id()`` or ``hash()``.

    Object identities differ between processes and runs, and hashes of
    str/bytes differ per interpreter launch unless PYTHONHASHSEED is
    pinned; a sort key built from either produces a different order on
    every replay.  Use a value-based key (the ``chosenrep`` idiom keys
    on ``str(q)``).
    """

    id = "DET004"
    summary = "sort/min/max keyed on id() or hash()"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            is_order_call = (
                isinstance(func, ast.Name)
                and func.id in ("sorted", "min", "max")
                and ctx.resolve(func) is None
            ) or (isinstance(func, ast.Attribute) and func.attr == "sort")
            if not is_order_call:
                continue
            for kw in node.keywords:
                if kw.arg != "key":
                    continue
                culprit = self._identity_key(ctx, kw.value)
                if culprit:
                    yield self.finding(
                        ctx,
                        kw.value,
                        f"ordering keyed on {culprit}(); identities/hashes are "
                        "not stable across runs or processes — key on values",
                    )

    @staticmethod
    def _identity_key(ctx: FileContext, value: ast.AST) -> str | None:
        if (
            isinstance(value, ast.Name)
            and value.id in ("id", "hash")
            and ctx.resolve(value) is None
        ):
            return value.id
        if isinstance(value, ast.Lambda):
            for child in ast.walk(value.body):
                if (
                    isinstance(child, ast.Call)
                    and isinstance(child.func, ast.Name)
                    and child.func.id in ("id", "hash")
                    and ctx.resolve(child.func) is None
                ):
                    return child.func.id
        return None


class EnvironReadRule(Rule):
    """DET005: environment reads outside config/capture entry points.

    Environment variables are per-host state; a run whose behaviour
    depends on them cannot be replayed from its seed alone.  The
    sanctioned readers are the capture entry point
    (``repro.obs.capture``, which only gates *exporting*, never
    behaviour) and ``repro.rt`` (the cluster driver must forward the
    environment to node subprocesses) — everything else takes
    configuration explicitly.
    """

    id = "DET005"
    summary = "os.environ/os.getenv read outside config/capture entry points"

    ALLOWED_MODULES = ("repro.obs.capture", "repro.rt")

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if module_matches(ctx.module, self.ALLOWED_MODULES):
            return
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Attribute) and ctx.resolve(node) == "os.environ":
                yield self.finding(
                    ctx,
                    node,
                    "os.environ read; thread configuration through explicit "
                    "parameters (RingConfig, ChaosRunner kwargs) so runs "
                    "replay from their seeds",
                )
            elif (
                isinstance(node, ast.Call)
                and ctx.resolve(node.func) == "os.getenv"
            ):
                yield self.finding(
                    ctx,
                    node,
                    "os.getenv read; thread configuration through explicit "
                    "parameters so runs replay from their seeds",
                )
