"""Async-concurrency rules (ASYNC001-ASYNC005), built on repro.lint.flow.

The live runtime (``repro.rt``) is ~4.5k LoC of asyncio code whose one
real interleaving bug to date — PR 7's "reply stealing" on the driver
control plane — was exactly a check-then-act split across an ``await``.
The paper's method is mechanically checkable atomicity: every
precondition/effect pair in Figs. 3/6/8-10 executes without
interleaving.  These rules enforce the same granularity at the asyncio
layer, where a suspension point is the only place another coroutine
can run: state checked before an ``await`` must be re-checked, locked,
or acted on *before* suspending.

Unlike the DET/IOA families these rules are flow-sensitive: each
function body is lowered to a CFG (:mod:`repro.lint.flow.cfg`) with
await points, try/except/finally edges and lexical lock-held sets, and
the findings come out of forward dataflow over it.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator
from dataclasses import dataclass

from repro.lint.engine import FileContext, Rule
from repro.lint.flow.cfg import (
    Cfg,
    CfgNode,
    FuncDef,
    _walk_same_scope,
    build_cfg,
)
from repro.lint.flow.dataflow import (
    ForwardAnalysis,
    guard_reads,
    node_exprs,
    run_forward,
    self_attr_writes,
)
from repro.lint.model import Finding
from repro.lint.rules.common import walk_functions

#: Import-resolvable calls that block the event loop.  Curated, not
#: exhaustive: each entry is synchronous by contract (sleeps, waits on
#: a child process, or performs blocking socket/url I/O).
#: ``subprocess.Popen`` is deliberately absent — it forks without
#: waiting; its ``.wait()`` is caught by the non-awaited ``.wait()``
#: heuristic below.
BLOCKING_CALLS = frozenset(
    {
        "time.sleep",
        "subprocess.run",
        "subprocess.call",
        "subprocess.check_call",
        "subprocess.check_output",
        "subprocess.getoutput",
        "subprocess.getstatusoutput",
        "os.system",
        "os.wait",
        "os.waitpid",
        "socket.create_connection",
        "urllib.request.urlopen",
        "requests.get",
        "requests.post",
        "requests.put",
        "requests.delete",
        "requests.head",
        "requests.request",
    }
)


def _async_functions(
    ctx: FileContext,
) -> Iterator[tuple[ast.AsyncFunctionDef, ast.ClassDef | None]]:
    for func, cls in walk_functions(ctx.tree):
        if isinstance(func, ast.AsyncFunctionDef):
            yield func, cls


def _self_name(func: FuncDef, cls: ast.ClassDef | None) -> str | None:
    """The receiver parameter name for a method (``self`` by
    convention); None for free functions and static methods."""
    if cls is None:
        return None
    for deco in func.decorator_list:
        if isinstance(deco, ast.Name) and deco.id == "staticmethod":
            return None
    args = func.args.posonlyargs + func.args.args
    return args[0].arg if args else None


def _own_statements(func: FuncDef) -> Iterator[ast.AST]:
    """Every AST node lexically in ``func``'s own body (nested defs are
    opaque, matching the CFG's scope rule)."""
    for stmt in func.body:
        yield from _walk_same_scope(stmt)


# ----------------------------------------------------------------------
# ASYNC001 — check-then-act across an await
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class _Guard:
    """One live "check": attribute ``attr`` was read in a condition
    while ``locks`` were held; ``crossed`` flips once a suspension
    point separates the check from the current program point."""

    attr: str
    crossed: bool
    locks: tuple[str, ...]


class _CheckThenAct(ForwardAnalysis[frozenset[_Guard]]):
    """May-analysis: which checks are live (and await-crossed) here."""

    def __init__(self, self_name: str) -> None:
        self.self_name = self_name
        #: (node index, attr) -> line, collected during fixpoint.
        self.hits: dict[tuple[int, str], int] = {}

    def initial(self) -> frozenset[_Guard]:
        return frozenset()

    def join(
        self, left: frozenset[_Guard], right: frozenset[_Guard]
    ) -> frozenset[_Guard]:
        return left | right

    def transfer(
        self, cfg: Cfg, node: CfgNode, fact: frozenset[_Guard]
    ) -> frozenset[_Guard]:
        out = set(fact)
        # 1. A suspension point lets every other coroutine run: all
        #    live checks are now stale.  (Within one statement the
        #    await evaluates before the assignment lands, so a write in
        #    the same statement is on the far side of the suspension.)
        if node.suspends:
            out = {
                _Guard(g.attr, True, g.locks) for g in out
            }
        # 2. Writes: an act on state whose check crossed an await,
        #    without a lock held over both, is the PR-7 bug class.
        writes = self_attr_writes(node, self.self_name)
        for guard in list(out):
            if guard.attr in writes and guard.crossed:
                if not (set(guard.locks) & node.held):
                    self.hits.setdefault((node.index, guard.attr), node.line)
        if writes:
            out = {g for g in out if g.attr not in writes}
        # 3. Fresh checks made at this node supersede stale ones for
        #    the same attribute: re-checking after the await is one of
        #    the sanctioned fixes.
        fresh = guard_reads(node, self.self_name)
        if fresh:
            out = {g for g in out if g.attr not in fresh}
            for attr in fresh:
                out.add(_Guard(attr, False, tuple(sorted(node.held))))
        return frozenset(out)


class CheckThenActAcrossAwaitRule(Rule):
    """ASYNC001: shared ``self`` state checked before an ``await`` and
    written after it without a protecting lock.

    An ``await`` is the only point where another coroutine can run; a
    condition established before it ("no request in flight", "key not
    in the map") can be invalidated by the time control returns.  The
    acceptable shapes are: act *before* awaiting, hold one
    ``asyncio.Lock`` (``async with``) across both check and act, or
    re-check after resuming.  This is the exact class of PR 7's
    control-plane reply stealing, fixed by ``NodeClient._request_lock``.
    """

    id = "ASYNC001"
    summary = "check-then-act on self state split across an await without a lock"
    rationale = (
        "The paper's precondition/effect pairs are atomic; asyncio only "
        "guarantees atomicity between suspension points.  A check made "
        "before an await and an act made after it span a window where "
        "any other coroutine may have changed the checked state."
    )
    example_bad = (
        "async def request(self, msg):\n"
        "    if self._inflight is None:   # check\n"
        "        self._inflight = msg\n"
        "    reply = await self._replies.get()\n"
        "    self._inflight = None        # act: ASYNC001\n"
        "    return reply"
    )
    example_good = (
        "async def request(self, msg):\n"
        "    async with self._lock:       # lock held across check+act\n"
        "        if self._inflight is None:\n"
        "            self._inflight = msg\n"
        "        reply = await self._replies.get()\n"
        "        self._inflight = None\n"
        "        return reply"
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for func, cls in _async_functions(ctx):
            self_name = _self_name(func, cls)
            if self_name is None:
                continue
            cfg = build_cfg(func)
            analysis = _CheckThenAct(self_name)
            run_forward(cfg, analysis)
            for (index, attr), _line in sorted(analysis.hits.items()):
                node = cfg.node(index)
                assert node.stmt is not None
                yield self.finding(
                    ctx,
                    node.stmt,
                    f"{self_name}.{attr} was checked before an await and is "
                    "written here after it with no shared lock held; another "
                    "coroutine can interleave between check and act — hold "
                    "one asyncio.Lock across both, or act before awaiting",
                )


# ----------------------------------------------------------------------
# ASYNC002 — dropped task handles / never-awaited coroutines
# ----------------------------------------------------------------------
def _spawn_call(ctx: FileContext, call: ast.Call) -> str | None:
    """``asyncio.create_task``/``ensure_future`` (resolved) or any
    ``<loop>.create_task`` attribute call; returns the display name."""
    resolved = ctx.resolve(call.func)
    if resolved in ("asyncio.create_task", "asyncio.ensure_future"):
        return resolved
    if isinstance(call.func, ast.Attribute) and call.func.attr in (
        "create_task",
        "ensure_future",
    ):
        return call.func.attr
    return None


def _module_async_defs(tree: ast.Module) -> tuple[set[str], dict[str, set[str]]]:
    """Names of module-level ``async def``s, and per-class async
    method names (for ``self.<m>()`` resolution)."""
    module_level = {
        node.name
        for node in tree.body
        if isinstance(node, ast.AsyncFunctionDef)
    }
    per_class: dict[str, set[str]] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.ClassDef):
            per_class[node.name] = {
                child.name
                for child in node.body
                if isinstance(child, ast.AsyncFunctionDef)
            }
    return module_level, per_class


class DroppedTaskHandleRule(Rule):
    """ASYNC002: fire-and-forget tasks and never-awaited coroutines.

    A task whose handle is dropped is invisible: its exceptions are
    swallowed until garbage collection logs an opaque "Task exception
    was never retrieved", and nothing can cancel or drain it on
    shutdown.  Keep the handle (``self._task = ...``) or attach a
    ``done-callback``.  Calling an ``async def`` without ``await``
    creates a coroutine object and silently discards it — the body
    never runs.
    """

    id = "ASYNC002"
    summary = "dropped create_task handle or never-awaited coroutine call"
    rationale = (
        "asyncio only keeps weak references to tasks; an unreferenced "
        "task can be garbage-collected mid-flight, and its exceptions "
        "are reported nowhere.  A coroutine called without await never "
        "executes at all."
    )
    example_bad = (
        "async def start(self):\n"
        "    asyncio.create_task(self._poll())   # ASYNC002: handle dropped\n"
        "    self._flush()                       # ASYNC002 if _flush is async"
    )
    example_good = (
        "async def start(self):\n"
        "    self._poll_task = asyncio.create_task(self._poll())\n"
        "    self._poll_task.add_done_callback(self._on_poll_done)\n"
        "    await self._flush()"
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        module_async, class_async = _module_async_defs(ctx.tree)
        for func, cls in walk_functions(ctx.tree):
            yield from self._check_function(ctx, func, cls, module_async, class_async)

    def _check_function(
        self,
        ctx: FileContext,
        func: FuncDef,
        cls: ast.ClassDef | None,
        module_async: set[str],
        class_async: dict[str, set[str]],
    ) -> Iterator[Finding]:
        self_name = _self_name(func, cls)
        own = list(_own_statements(func))
        loads = {
            node.id
            for node in own
            if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load)
        }
        for node in own:
            if isinstance(node, ast.Expr) and isinstance(node.value, ast.Call):
                call = node.value
                spawn = _spawn_call(ctx, call)
                if spawn is not None:
                    yield self.finding(
                        ctx,
                        call,
                        f"{spawn}(...) result discarded: the task can be "
                        "garbage-collected mid-flight and its exceptions are "
                        "lost — retain the handle or add a done-callback",
                    )
                    continue
                coro = self._async_callee(
                    call, cls, self_name, module_async, class_async
                )
                if coro is not None:
                    yield self.finding(
                        ctx,
                        call,
                        f"coroutine {coro}(...) is never awaited: the call "
                        "builds a coroutine object and discards it — the "
                        "body never runs (add await, or wrap in create_task)",
                    )
            elif isinstance(node, ast.Assign) and isinstance(node.value, ast.Call):
                spawn = _spawn_call(ctx, node.value)
                if spawn is None or len(node.targets) != 1:
                    continue
                target = node.targets[0]
                if isinstance(target, ast.Name) and target.id not in loads:
                    yield self.finding(
                        ctx,
                        node.value,
                        f"{spawn}(...) handle bound to {target.id!r} but "
                        "never used: effectively fire-and-forget — await "
                        "it, retain it, or add a done-callback",
                    )

    @staticmethod
    def _async_callee(
        call: ast.Call,
        cls: ast.ClassDef | None,
        self_name: str | None,
        module_async: set[str],
        class_async: dict[str, set[str]],
    ) -> str | None:
        func = call.func
        if isinstance(func, ast.Name) and func.id in module_async:
            return func.id
        if (
            isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Name)
            and self_name is not None
            and func.value.id == self_name
            and cls is not None
            and func.attr in class_async.get(cls.name, set())
        ):
            return f"{self_name}.{func.attr}"
        return None


# ----------------------------------------------------------------------
# ASYNC003 — blocking calls inside async def
# ----------------------------------------------------------------------
class BlockingCallInAsyncRule(Rule):
    """ASYNC003: event-loop-blocking calls inside ``async def``.

    ``time.sleep``, synchronous subprocess waits, blocking socket/url
    I/O and builtin ``open`` stall *every* coroutine on the loop — in
    the live runtime that means token circulation, watchdogs and the
    driver control plane all freeze for the duration.  Use the asyncio
    counterpart (``asyncio.sleep``, ``create_subprocess_exec``,
    ``open_connection``) or push the call into an executor
    (``loop.run_in_executor``).  A non-awaited ``.wait(...)`` method
    call in async code is flagged too: it is either a blocking
    ``Popen``/``threading`` wait or an asyncio ``Event.wait()`` whose
    coroutine was silently dropped.
    """

    id = "ASYNC003"
    summary = "blocking call (time.sleep / sync subprocess / file-socket I/O) in async def"
    rationale = (
        "One blocked coroutine blocks the whole event loop: timers, "
        "watchdogs and every peer connection stop.  Latency SLOs "
        "measured in E24 assume the loop never stalls."
    )
    example_bad = (
        "async def poll(self):\n"
        "    time.sleep(0.1)          # ASYNC003: stalls the whole loop\n"
        "    proc.wait(timeout=5.0)   # ASYNC003: blocking wait"
    )
    example_good = (
        "async def poll(self):\n"
        "    await asyncio.sleep(0.1)\n"
        "    await asyncio.get_running_loop().run_in_executor(None, proc.wait)"
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for func, _cls in _async_functions(ctx):
            for node in _own_statements(func):
                if not isinstance(node, ast.Call):
                    continue
                resolved = ctx.resolve(node.func)
                if resolved in BLOCKING_CALLS:
                    yield self.finding(
                        ctx,
                        node,
                        f"blocking call {resolved}() inside async def "
                        f"{func.name!r} stalls the event loop — use the "
                        "asyncio equivalent or run_in_executor",
                    )
                elif (
                    isinstance(node.func, ast.Name)
                    and node.func.id == "open"
                    and ctx.resolve(node.func) is None
                ):
                    yield self.finding(
                        ctx,
                        node,
                        f"builtin open() inside async def {func.name!r} "
                        "performs blocking file I/O on the event loop — "
                        "move it off the loop or justify with a suppression",
                    )
                elif (
                    isinstance(node.func, ast.Attribute)
                    and node.func.attr == "wait"
                    and not isinstance(ctx.parent_of(node), ast.Await)
                ):
                    receiver = ast.unparse(node.func.value)
                    yield self.finding(
                        ctx,
                        node,
                        f"non-awaited {receiver}.wait(...) in async def "
                        f"{func.name!r}: either a blocking process/thread "
                        "wait (run_in_executor) or a dropped asyncio "
                        "coroutine (await it)",
                    )


# ----------------------------------------------------------------------
# ASYNC004 — swallowed CancelledError
# ----------------------------------------------------------------------
def _catches_cancelled(ctx: FileContext, handler: ast.ExceptHandler) -> str | None:
    """Does this handler catch asyncio.CancelledError?  Returns a
    human-readable description of how, or None."""
    if handler.type is None:
        return "bare except"
    exprs = (
        list(handler.type.elts)
        if isinstance(handler.type, ast.Tuple)
        else [handler.type]
    )
    for expr in exprs:
        resolved = ctx.resolve(expr)
        if resolved == "asyncio.CancelledError":
            return "asyncio.CancelledError"
        if isinstance(expr, ast.Name) and expr.id in (
            "BaseException",
            "CancelledError",
        ):
            return expr.id
    return None


def _cancelled_segments(func: FuncDef) -> set[str]:
    """Expressions on which ``.cancel()`` is called in this function
    (``self._task.cancel()`` -> ``"self._task"``)."""
    out: set[str] = set()
    for node in _own_statements(func):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "cancel"
        ):
            out.add(ast.unparse(node.func.value))
    return out


def _is_cancel_await_idiom(
    try_stmt: ast.Try, handler: ast.ExceptHandler, cancelled: set[str]
) -> bool:
    """The one sanctioned swallow: ``task.cancel()`` followed by
    ``try: await task / except CancelledError: pass`` — awaiting a task
    you just cancelled *must* absorb its CancelledError."""
    if handler.type is None or isinstance(handler.type, ast.Tuple):
        return False
    if not try_stmt.body:
        return False
    for stmt in try_stmt.body:
        if not (isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Await)):
            return False
        if ast.unparse(stmt.value.value) not in cancelled:
            return False
    return True


class SwallowedCancellationRule(Rule):
    """ASYNC004: ``except`` in async code that swallows cancellation.

    ``asyncio.CancelledError`` derives from ``BaseException`` precisely
    so that ``except Exception`` cannot eat it; a bare ``except``,
    ``except BaseException``, or an explicit ``CancelledError`` handler
    that does not re-raise breaks task cancellation — ``task.cancel()``
    appears to succeed but the coroutine keeps running (or exits as if
    it completed normally, so ``task.cancelled()`` lies).  Re-raise
    after cleanup.  Exemption: absorbing the CancelledError of a task
    *you just cancelled* (``t.cancel(); try: await t except
    CancelledError: pass``) is the documented idiom and stays clean.
    """

    id = "ASYNC004"
    summary = "bare/BaseException/CancelledError except in async code without re-raise"
    rationale = (
        "Cancellation is the only way the runtime shuts tasks down "
        "(node close, driver teardown, metrics-stream stop).  A "
        "handler that swallows CancelledError turns cancel-and-await "
        "into a silent no-op and leaves tasks running into teardown."
    )
    example_bad = (
        "async def _read_loop(self):\n"
        "    try:\n"
        "        while True:\n"
        "            data = await self._reader.read(65536)\n"
        "    except (OSError, asyncio.CancelledError):\n"
        "        pass    # ASYNC004: cancel() can no longer stop this loop"
    )
    example_good = (
        "async def _read_loop(self):\n"
        "    try:\n"
        "        while True:\n"
        "            data = await self._reader.read(65536)\n"
        "    except asyncio.CancelledError:\n"
        "        raise   # cancellation propagates after cleanup\n"
        "    except OSError:\n"
        "        pass"
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for func, _cls in _async_functions(ctx):
            cancelled = _cancelled_segments(func)
            for node in _own_statements(func):
                if not isinstance(node, ast.Try):
                    continue
                for handler in node.handlers:
                    how = _catches_cancelled(ctx, handler)
                    if how is None:
                        continue
                    reraises = any(
                        isinstance(child, ast.Raise)
                        for child in _walk_same_scope(handler)
                    )
                    if reraises:
                        continue
                    if _is_cancel_await_idiom(node, handler, cancelled):
                        continue
                    yield self.finding(
                        ctx,
                        handler,
                        f"{how} swallows asyncio.CancelledError in async def "
                        f"{func.name!r}: cancellation never propagates and "
                        "teardown hangs on this task — re-raise it after "
                        "cleanup (catch the specific errors instead)",
                    )


# ----------------------------------------------------------------------
# ASYNC005 — acquire without release on every CFG path
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class _Acquire:
    """One acquire site: CFG node ``index`` binds/locks resource
    ``key`` (a local name for ``open``, an unparsed receiver segment
    for ``.acquire()``); ``verb`` is the matching release method."""

    index: int
    key: str
    verb: str  # "close" | "release"
    what: str  # human-readable resource description


def _release_nodes(cfg: Cfg, acquire: _Acquire) -> frozenset[int]:
    out: set[int] = set()
    for node in cfg.nodes:
        for expr in node_exprs(node):
            for child in _walk_same_scope(expr):
                if (
                    isinstance(child, ast.Call)
                    and isinstance(child.func, ast.Attribute)
                    and child.func.attr == acquire.verb
                    and ast.unparse(child.func.value) == acquire.key
                ):
                    out.add(node.index)
            # ``with resource:`` delegates the release to the context
            # manager — count it as a releasing node.
            if node.kind == "with" and node.stmt is not None:
                stmt = node.stmt
                assert isinstance(stmt, (ast.With, ast.AsyncWith))
                for item in stmt.items:
                    if ast.unparse(item.context_expr) == acquire.key:
                        out.add(node.index)
    return frozenset(out)


def _loads_directly(expr: ast.AST, name: str) -> bool:
    """Does ``expr`` load ``name`` outside any call?  ``out`` and
    ``(out, x)`` do; ``Popen(stdout=out)`` does not — an argument is
    consumed by the callee, the call *result* is what gets stored."""
    if isinstance(expr, ast.Call):
        return False
    if (
        isinstance(expr, ast.Name)
        and expr.id == name
        and isinstance(expr.ctx, ast.Load)
    ):
        return True
    return any(
        _loads_directly(child, name) for child in ast.iter_child_nodes(expr)
    )


def _escapes(cfg: Cfg, name: str) -> bool:
    """Ownership transfer: the bound resource is returned, yielded, or
    stored (directly) into an attribute/container — some longer-lived
    owner is now responsible for releasing it."""
    for node in cfg.nodes:
        for expr in node_exprs(node):
            for child in _walk_same_scope(expr):
                if isinstance(child, (ast.Return, ast.Yield, ast.YieldFrom)):
                    value = child.value
                    if value is not None and any(
                        isinstance(n, ast.Name) and n.id == name
                        for n in _walk_same_scope(value)
                    ):
                        return True
                if isinstance(child, ast.Assign):
                    if _loads_directly(child.value, name) and any(
                        isinstance(t, (ast.Attribute, ast.Subscript))
                        for t in child.targets
                    ):
                        return True
    return False


class UnreleasedResourceRule(Rule):
    """ASYNC005: lock/file acquired but not released on every CFG path.

    A manual ``.acquire()`` or bare ``open()`` in async code must reach
    its ``.release()``/``.close()`` on *every* path out of the function
    — including the cancellation path of any ``await`` in between,
    which only a ``finally`` (or ``async with``) covers.  A leaked
    asyncio lock deadlocks every later waiter; a leaked file descriptor
    accumulates per connection/process until the OS limit.  Prefer
    ``async with lock:`` / ``with open(...):`` — scope-structured
    acquire/release is exactly the atomicity discipline the paper's
    effects get for free.
    """

    id = "ASYNC005"
    summary = "acquire()/open() without release/close on every CFG path"
    rationale = (
        "Branches, early returns and cancellable awaits create exit "
        "paths the happy-path release does not cover; the CFG makes "
        "those paths checkable.  async with / with are the closed-form "
        "fix."
    )
    example_bad = (
        "async def critical(self):\n"
        "    await self._lock.acquire()    # ASYNC005\n"
        "    if await self._work():        # cancelled here -> lock leaks\n"
        "        return                    # early return -> lock leaks\n"
        "    self._lock.release()"
    )
    example_good = (
        "async def critical(self):\n"
        "    async with self._lock:\n"
        "        if await self._work():\n"
        "            return"
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for func, _cls in _async_functions(ctx):
            cfg = build_cfg(func)
            for acquire in self._acquires(ctx, cfg):
                if acquire.verb == "close" and _escapes(cfg, acquire.key):
                    continue
                releases = _release_nodes(cfg, acquire)
                reachable = cfg.reachable(acquire.index, stop_through=releases)
                node = cfg.node(acquire.index)
                assert node.stmt is not None
                if cfg.exit in reachable:
                    yield self.finding(
                        ctx,
                        node.stmt,
                        f"{acquire.what} is not {acquire.verb}d on every "
                        "path out of the function (early return, break, or "
                        "handled exception skips the release) — use "
                        "with/async with, or release in a finally",
                    )
                elif any(
                    cfg.node(index).suspends for index in reachable
                ) and not any(cfg.node(index).in_finally for index in releases):
                    yield self.finding(
                        ctx,
                        node.stmt,
                        f"{acquire.what} is held across an await and the "
                        f"{acquire.verb} is not in a finally: cancellation "
                        "at the await leaks it — use with/async with, or "
                        "move the release into a finally",
                    )

    def _acquires(self, ctx: FileContext, cfg: Cfg) -> Iterator[_Acquire]:
        for node in cfg.nodes:
            stmt = node.stmt
            if node.kind != "stmt" or stmt is None:
                continue
            # name = open(...)
            if (
                isinstance(stmt, ast.Assign)
                and len(stmt.targets) == 1
                and isinstance(stmt.targets[0], ast.Name)
                and isinstance(stmt.value, ast.Call)
                and isinstance(stmt.value.func, ast.Name)
                and stmt.value.func.id == "open"
                and ctx.resolve(stmt.value.func) is None
            ):
                name = stmt.targets[0].id
                yield _Acquire(node.index, name, "close", f"file {name!r}")
                continue
            # [await] X.acquire()  (statement or assigned result)
            value: ast.AST | None = None
            if isinstance(stmt, ast.Expr):
                value = stmt.value
            elif isinstance(stmt, ast.Assign):
                value = stmt.value
            if isinstance(value, ast.Await):
                value = value.value
            if (
                isinstance(value, ast.Call)
                and isinstance(value.func, ast.Attribute)
                and value.func.attr == "acquire"
            ):
                segment = ast.unparse(value.func.value)
                yield _Acquire(
                    node.index, segment, "release", f"lock {segment!r}"
                )
