"""Snapshot/cache-safety rule (SNAP001).

PR 3's hot-path work introduced derived caches (the self-healing
order/content indexes on ``VStoTOProcess``, ``SharedOrderPrefix``'s
lazy hash, ``IncrementalStatusMerger``'s merge cursor) and fixed, by
hand, the snapshot-restore bugs they caused: a cache that survives
``pickle``/``deepcopy``/direct state reassignment intact is a cache
that silently serves stale answers after a restore.  This rule makes
that class of bug structurally impossible to reintroduce.
"""

from __future__ import annotations

import ast
import re
from collections.abc import Iterator

from repro.lint.engine import FileContext, Rule
from repro.lint.model import Finding
from repro.lint.rules.common import module_matches

#: Modules whose objects flow through snapshot()/pickle/deepcopy.
SNAPSHOT_SCOPE = ("repro.ioa", "repro.core")

#: Dunder hooks that make pickling/copying cache-aware.
_PICKLE_HOOKS = frozenset(
    {"__getstate__", "__setstate__", "__reduce__", "__reduce_ex__", "__deepcopy__"}
)

#: Documented-invalidation markers: the class explains how its caches
#: detect staleness (the PR-3 idiom: identity+length keys that
#: "invalidate" on reassignment, or a merge that "self-heals"/"is
#: rebuilt from scratch" when a source shrank).
_INVALIDATION_DOC = re.compile(r"invalidat|self-heal|rebuilt from scratch", re.I)

#: Attribute names that signal a *derived* cache (as opposed to plain
#: private mutable state): the PR-3 naming idiom — ``_summary_cache``,
#: ``_order_set``/``_order_set_src``/``_order_set_len``,
#: ``_content_map``, ``_hash``, ``IncrementalStatusMerger._cache`` and
#: its ``_p_idx``/``_s_idx`` cursors.
_CACHE_NAME = re.compile(
    r"cache|memo|_src$|_key$|_hash$|_len$|_idx$|_set$|_map$|_index$"
)


def _self_underscore_attrs(node: ast.AST) -> set[str]:
    """Names of ``self._x``-style attributes assigned under ``node``."""
    out: set[str] = set()
    for child in ast.walk(node):
        if isinstance(child, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
            targets = (
                child.targets if isinstance(child, ast.Assign) else [child.target]
            )
            for target in targets:
                if (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                    and target.attr.startswith("_")
                    and not target.attr.startswith("__")
                ):
                    out.add(target.attr)
    return out


class DerivedCacheSnapshotRule(Rule):
    """SNAP001: derived-cache attributes need snapshot-safety.

    Detection: a class initialises a private (underscore) attribute
    with a cache-idiom name (``*cache*``, ``*memo*``, ``*_src``,
    ``*_key``, ``*_hash``, ``*_len``, ``*_idx``, ``*_set``, ``*_map``,
    ``*_index``) in ``__init__`` *and* reassigns it in some other
    method — the lazily-(re)built cache signature.  Plain private
    mutable state (``self._clock``, ...) is not flagged; only
    attributes that *cache a view of other state* can go stale.  Such
    a class must either define
    pickle/copy hooks (``__getstate__``+``__setstate__``,
    ``__reduce__``, ``__deepcopy__``) that detach or drop the caches,
    or document its invalidation protocol in the class body (a
    docstring/comment explaining how stale caches are detected —
    matched on "invalidat…"/"self-heal…"/"rebuilt from scratch").
    """

    id = "SNAP001"
    summary = "derived-cache attributes without snapshot-safety or documented invalidation"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if not module_matches(ctx.module, SNAPSHOT_SCOPE):
            return
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ClassDef):
                yield from self._check_class(ctx, node)

    def _check_class(self, ctx: FileContext, cls: ast.ClassDef) -> Iterator[Finding]:
        init: ast.FunctionDef | None = None
        methods: list[ast.FunctionDef | ast.AsyncFunctionDef] = []
        defined = set()
        for stmt in cls.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                defined.add(stmt.name)
                if stmt.name == "__init__":
                    init = stmt if isinstance(stmt, ast.FunctionDef) else None
                else:
                    methods.append(stmt)
        if init is None:
            return
        init_attrs = _self_underscore_attrs(init)
        if not init_attrs:
            return
        candidate_attrs = {
            attr for attr in init_attrs if _CACHE_NAME.search(attr)
        }
        if not candidate_attrs:
            return
        cache_attrs: set[str] = set()
        for method in methods:
            cache_attrs |= candidate_attrs & _self_underscore_attrs(method)
        if not cache_attrs:
            return
        if "__getstate__" in defined and "__setstate__" in defined:
            return
        if defined & (_PICKLE_HOOKS - {"__getstate__", "__setstate__"}):
            return
        if _INVALIDATION_DOC.search(ctx.source_segment(cls)):
            return
        attrs = ", ".join(sorted(cache_attrs))
        yield self.finding(
            ctx,
            cls,
            f"class {cls.name} carries derived-cache attributes ({attrs}) but "
            "defines no __getstate__/__setstate__/__reduce__/__deepcopy__ and "
            "documents no invalidation protocol; a snapshot restore would "
            "resurrect stale caches (the PR-3 bug class)",
        )
