"""Typing-discipline rule (TYP001).

The CI ``mypy`` gate runs with ``disallow_untyped_defs`` on
``repro.core``, ``repro.ioa``, ``repro.sim`` (and ``repro.lint``
itself).  This rule enforces the same surface locally without needing
mypy installed: every function in the strict packages must annotate
all parameters and its return type.  It is the fast, dependency-free
first line of the typed-API guarantee that ``py.typed`` advertises.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.lint.engine import FileContext, Rule
from repro.lint.model import Finding
from repro.lint.rules.common import module_matches, walk_functions

#: Packages held to disallow_untyped_defs (mirrors [tool.mypy] overrides).
STRICT_PACKAGES = (
    "repro.core",
    "repro.ioa",
    "repro.sim",
    "repro.lint",
    "repro.obs",
    "repro.obs.live",
    "repro.faults",
    "repro.membership",
    "repro.analysis",
    "repro.rt",
    "repro.parallel",
    "repro.scenarios",
    "repro.shard",
)


class UntypedDefRule(Rule):
    """TYP001: strict packages must fully annotate every def."""

    id = "TYP001"
    summary = "untyped def in a strict-typed package"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if not module_matches(ctx.module, STRICT_PACKAGES):
            return
        for func, cls in walk_functions(ctx.tree):
            missing: list[str] = []
            args = func.args
            positional = args.posonlyargs + args.args
            for index, arg in enumerate(positional):
                if arg.annotation is not None:
                    continue
                if index == 0 and cls is not None and arg.arg in ("self", "cls"):
                    if not any(
                        isinstance(dec, ast.Name) and dec.id == "staticmethod"
                        for dec in func.decorator_list
                    ):
                        continue
                missing.append(arg.arg)
            missing.extend(
                arg.arg for arg in args.kwonlyargs if arg.annotation is None
            )
            if args.vararg is not None and args.vararg.annotation is None:
                missing.append("*" + args.vararg.arg)
            if args.kwarg is not None and args.kwarg.annotation is None:
                missing.append("**" + args.kwarg.arg)
            parts: list[str] = []
            if missing:
                parts.append(f"unannotated parameters: {', '.join(missing)}")
            if func.returns is None:
                parts.append("missing return annotation")
            if parts:
                yield self.finding(
                    ctx,
                    func,
                    f"def {func.name} in strict-typed package: "
                    + "; ".join(parts)
                    + " (mypy disallow_untyped_defs will reject this)",
                )
