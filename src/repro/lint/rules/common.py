"""Shared helpers for repro-lint rules."""

from __future__ import annotations

import ast
from collections.abc import Iterator

#: Dotted names whose *call* reads a host clock.  Reading wall-clock
#: time inside the reproduction breaks replay-from-seed determinism;
#: only the profiling layer (``repro.obs.profile``) and benchmark
#: drivers may observe the host clock.
WALL_CLOCK_CALLS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.process_time",
        "time.process_time_ns",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
    }
)

#: Method names that mutate their receiver in place (list/set/dict/deque).
MUTATOR_METHODS = frozenset(
    {
        "append",
        "appendleft",
        "add",
        "clear",
        "discard",
        "extend",
        "extendleft",
        "insert",
        "pop",
        "popitem",
        "popleft",
        "remove",
        "reverse",
        "setdefault",
        "sort",
        "update",
    }
)


def module_matches(module: str, prefixes: tuple[str, ...]) -> bool:
    """True when ``module`` is any of ``prefixes`` or nested under one."""
    return any(
        module == prefix or module.startswith(prefix + ".") for prefix in prefixes
    )


def chain_root(node: ast.AST) -> ast.AST:
    """Descend an Attribute/Subscript/Call chain to its root expression.

    ``self.buffer[0].append`` -> the ``Name('self')`` node;
    ``self.get_pending(p, g).append`` likewise (through the call).
    """
    while True:
        if isinstance(node, ast.Attribute):
            node = node.value
        elif isinstance(node, ast.Subscript):
            node = node.value
        elif isinstance(node, ast.Call):
            node = node.func
        else:
            return node


def rooted_at(node: ast.AST, names: frozenset[str]) -> bool:
    """True when the access chain ``node`` is rooted at one of ``names``."""
    root = chain_root(node)
    return isinstance(root, ast.Name) and root.id in names


def walk_functions(
    tree: ast.AST,
) -> Iterator[tuple[ast.FunctionDef | ast.AsyncFunctionDef, ast.ClassDef | None]]:
    """Yield every function definition with its enclosing class (if any)."""

    def visit(node: ast.AST, cls: ast.ClassDef | None) -> Iterator[
        tuple[ast.FunctionDef | ast.AsyncFunctionDef, ast.ClassDef | None]
    ]:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.ClassDef):
                yield from visit(child, child)
            elif isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield child, cls
                yield from visit(child, cls)
            else:
                yield from visit(child, cls)

    return visit(tree, None)


def literal_strings(node: ast.AST) -> Iterator[ast.Constant]:
    """Yield every string-literal Constant node under ``node``."""
    for child in ast.walk(node):
        if isinstance(child, ast.Constant) and isinstance(child.value, str):
            yield child
