"""Rule registry for repro-lint.

Rule families:

- ``DET00x`` — determinism hazards (unseeded RNG, wall-clock reads,
  unordered iteration, identity-based ordering, environment reads);
- ``IOA00x`` — I/O-automaton discipline for the paper's
  precondition/effect transcriptions (Figs. 3, 6, 8-10);
- ``SNAP001`` — snapshot/pickle safety for derived-cache attributes;
- ``TYP001`` — typing discipline backing the CI ``mypy`` strict gate;
- ``ASYNC00x`` — flow-sensitive async-concurrency hazards over the live
  runtime (check-then-act across an await, dropped task handles,
  blocking calls on the loop, swallowed cancellation, unreleased
  resources), built on :mod:`repro.lint.flow`.
"""

from __future__ import annotations

from repro.lint.rules.async_concurrency import (
    BlockingCallInAsyncRule,
    CheckThenActAcrossAwaitRule,
    DroppedTaskHandleRule,
    SwallowedCancellationRule,
    UnreleasedResourceRule,
)
from repro.lint.rules.determinism import (
    EnvironReadRule,
    IdentityOrderingRule,
    UnseededRandomRule,
    UnsortedSetIterationRule,
    WallClockRule,
)
from repro.lint.rules.ioa import (
    EffectPurityRule,
    PreconditionPurityRule,
    SignatureCoverageRule,
)
from repro.lint.rules.snapshot import DerivedCacheSnapshotRule
from repro.lint.rules.typing_discipline import UntypedDefRule

ALL_RULE_CLASSES = (
    UnseededRandomRule,
    WallClockRule,
    UnsortedSetIterationRule,
    IdentityOrderingRule,
    EnvironReadRule,
    PreconditionPurityRule,
    EffectPurityRule,
    SignatureCoverageRule,
    DerivedCacheSnapshotRule,
    UntypedDefRule,
    CheckThenActAcrossAwaitRule,
    DroppedTaskHandleRule,
    BlockingCallInAsyncRule,
    SwallowedCancellationRule,
    UnreleasedResourceRule,
)

__all__ = [
    "ALL_RULE_CLASSES",
    "CheckThenActAcrossAwaitRule",
    "DroppedTaskHandleRule",
    "BlockingCallInAsyncRule",
    "SwallowedCancellationRule",
    "UnreleasedResourceRule",
    "UnseededRandomRule",
    "WallClockRule",
    "UnsortedSetIterationRule",
    "IdentityOrderingRule",
    "EnvironReadRule",
    "PreconditionPurityRule",
    "EffectPurityRule",
    "SignatureCoverageRule",
    "DerivedCacheSnapshotRule",
    "UntypedDefRule",
]
