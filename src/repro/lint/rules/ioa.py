"""I/O-automaton discipline rules (IOA001-IOA003).

The paper specifies every machine in precondition/effect style
(Figs. 3, 6, 8-10): a precondition is a *predicate* over the state — it
may read anything and change nothing — and an effect is a deterministic
state transformation — it may mutate the automaton but must not touch
the outside world (I/O, global RNG, the host clock).  This codebase
transcribes that style as ``is_enabled`` / ``enabled_actions``
(precondition side) and ``apply`` (effect side) on
:class:`repro.ioa.automaton.Automaton` subclasses.  These rules hold
the transcription to the model's contract; they are scoped to
``repro.ioa.*`` and ``repro.core.*``, where the paper's machines live.

Known limitation (by design, to stay syntactic): mutations through a
local alias (``q = self.queue; q.append(x)``) are not tracked — the
discipline guarded here is direct attribute access, which is how every
figure transcription in this repo is written.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.lint.engine import FileContext, Rule
from repro.lint.model import Finding
from repro.lint.rules.common import (
    MUTATOR_METHODS,
    WALL_CLOCK_CALLS,
    module_matches,
    rooted_at,
    walk_functions,
)

#: Modules where the paper's machines (and their harnesses) live.
IOA_SCOPE = ("repro.ioa", "repro.core")

#: Names binding automaton state inside transition methods.
_STATE_ROOTS = frozenset({"self", "state"})


def _is_precondition_side(name: str) -> bool:
    """Precondition-side functions: predicate + enumeration code."""
    return (
        name in ("is_enabled", "enabled_actions", "can_advance")
        or name.startswith(("pre_", "_pre_"))
        or name.endswith("_enabled")
    )


def _is_effect_side(name: str) -> bool:
    return name == "apply" or name.startswith(("eff_", "_eff_"))


def _walk_body(func: ast.FunctionDef | ast.AsyncFunctionDef) -> Iterator[ast.AST]:
    """Walk a function body without descending into nested defs/classes
    (nested scopes get their own visit from :func:`walk_functions`)."""
    stack: list[ast.AST] = list(func.body)
    while stack:
        node = stack.pop()
        yield node
        if isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
        ):
            continue
        stack.extend(ast.iter_child_nodes(node))


class PreconditionPurityRule(Rule):
    """IOA001: preconditions must not mutate automaton state.

    In the I/O-automaton model a precondition is a predicate; the
    figures' ``Precondition:`` blocks never assign.  A mutating
    ``is_enabled`` (or enumeration helper) makes enabledness depend on
    how often the scheduler *asked*, which breaks both the paper
    semantics and replay determinism (schedulers probe enabledness a
    data-dependent number of times).
    """

    id = "IOA001"
    summary = "precondition-side code mutates automaton state"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if not module_matches(ctx.module, IOA_SCOPE):
            return
        for func, _cls in walk_functions(ctx.tree):
            if not _is_precondition_side(func.name):
                continue
            for node in _walk_body(func):
                yield from self._check_stmt(ctx, func, node)

    def _check_stmt(
        self,
        ctx: FileContext,
        func: ast.FunctionDef | ast.AsyncFunctionDef,
        node: ast.AST,
    ) -> Iterator[Finding]:
        where = f"in precondition-side {func.name}()"
        if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
            targets = (
                node.targets if isinstance(node, ast.Assign) else [node.target]
            )
            if isinstance(node, ast.AnnAssign) and node.value is None:
                return  # bare annotation, no state change
            for target in targets:
                if isinstance(
                    target, (ast.Attribute, ast.Subscript)
                ) and rooted_at(target, _STATE_ROOTS):
                    yield self.finding(
                        ctx,
                        node,
                        f"assignment to automaton state {where}; preconditions "
                        "are predicates (paper Figs. 3/6/8-10) and must not "
                        "write state",
                    )
        elif isinstance(node, ast.Delete):
            for target in node.targets:
                if isinstance(
                    target, (ast.Attribute, ast.Subscript)
                ) and rooted_at(target, _STATE_ROOTS):
                    yield self.finding(
                        ctx, node, f"del on automaton state {where}"
                    )
        elif isinstance(node, ast.Call):
            func_expr = node.func
            if (
                isinstance(func_expr, ast.Attribute)
                and func_expr.attr in MUTATOR_METHODS
                and rooted_at(func_expr.value, _STATE_ROOTS)
            ):
                yield self.finding(
                    ctx,
                    node,
                    f".{func_expr.attr}() on automaton state {where}; "
                    "preconditions must not mutate",
                )


class EffectPurityRule(Rule):
    """IOA002: effects must not perform I/O or global RNG.

    Effects mutate the automaton and nothing else.  Printing, file or
    OS access, wall-clock reads, and module-level ``random`` draws make
    a transition depend on (or leak into) the outside world; randomness
    an effect legitimately needs arrives as an explicitly seeded RNG
    parameter (``rng.choice(...)`` on a passed stream is fine and is
    what the fault injectors do).
    """

    id = "IOA002"
    summary = "effect-side code performs I/O or global RNG"

    _IO_BUILTINS = frozenset({"print", "input", "open", "breakpoint"})

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if not module_matches(ctx.module, IOA_SCOPE):
            return
        for func, _cls in walk_functions(ctx.tree):
            if not _is_effect_side(func.name):
                continue
            for node in _walk_body(func):
                if not isinstance(node, ast.Call):
                    continue
                yield from self._check_call(ctx, func, node)

    def _check_call(
        self,
        ctx: FileContext,
        func: ast.FunctionDef | ast.AsyncFunctionDef,
        node: ast.Call,
    ) -> Iterator[Finding]:
        where = f"in effect-side {func.name}()"
        callee = node.func
        if (
            isinstance(callee, ast.Name)
            and callee.id in self._IO_BUILTINS
            and ctx.resolve(callee) is None
        ):
            yield self.finding(
                ctx,
                node,
                f"{callee.id}() {where}; effects are pure state "
                "transformations — route diagnostics through repro.obs",
            )
            return
        resolved = ctx.resolve(callee)
        if resolved is None:
            return
        if resolved in WALL_CLOCK_CALLS:
            yield self.finding(
                ctx, node, f"wall-clock read {resolved}() {where}"
            )
        elif resolved.startswith("random."):
            yield self.finding(
                ctx,
                node,
                f"{resolved}() {where}; effects may only draw randomness "
                "from an explicitly passed seeded RNG",
            )
        elif resolved.startswith(("os.", "sys.", "subprocess.", "socket.")):
            yield self.finding(
                ctx, node, f"{resolved}() {where}; effects must not touch the OS"
            )


class SignatureCoverageRule(Rule):
    """IOA003: every registered action name has dispatch coverage.

    When a class builds ``self.signature = Signature(inputs=...,
    outputs=..., internals=...)`` from statically resolvable string
    sets, every registered action name must appear in the class's
    transition code (a string literal in a dispatch comparison, or
    membership in a referenced name-set constant), here or in a base
    class in the same module.  A signature name with no dispatch is a
    transcription hole: ``step()`` would accept the action and silently
    no-op its effect.  Classes whose signatures are built dynamically
    (composition) are skipped.
    """

    id = "IOA003"
    summary = "registered action name lacks precondition/effect dispatch"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if not module_matches(ctx.module, IOA_SCOPE):
            return
        constants = _module_string_constants(ctx.tree)
        classes = {
            node.name: node
            for node in ast.walk(ctx.tree)
            if isinstance(node, ast.ClassDef)
        }
        handled_cache: dict[str, frozenset[str]] = {}
        for cls in classes.values():
            sig_calls = list(_signature_calls(cls))
            if not sig_calls:
                continue
            registered: set[str] = set()
            resolvable = True
            for call in sig_calls:
                names = _resolve_signature_call(call, constants)
                if names is None:
                    resolvable = False
                    break
                registered |= names
            if not resolvable or not registered:
                continue
            handled = _handled_names(cls, classes, constants, handled_cache)
            for name in sorted(registered - handled):
                yield self.finding(
                    ctx,
                    sig_calls[0],
                    f"action {name!r} is registered in {cls.name}'s signature "
                    "but never dispatched in precondition/effect code",
                )


def _signature_calls(cls: ast.ClassDef) -> Iterator[ast.Call]:
    """``self.signature = Signature(...)`` assignments in ``cls``."""
    for node in ast.walk(cls):
        if not isinstance(node, ast.Assign) or not isinstance(node.value, ast.Call):
            continue
        callee = node.value.func
        callee_name = (
            callee.id
            if isinstance(callee, ast.Name)
            else callee.attr
            if isinstance(callee, ast.Attribute)
            else None
        )
        if callee_name != "Signature":
            continue
        for target in node.targets:
            if (
                isinstance(target, ast.Attribute)
                and target.attr == "signature"
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"
            ):
                yield node.value


def _module_string_constants(tree: ast.Module) -> dict[str, frozenset[str]]:
    """Module-level ``NAME = <string-set expr>`` constants, resolved."""
    out: dict[str, frozenset[str]] = {}
    for node in tree.body:
        if isinstance(node, ast.Assign) and len(node.targets) == 1:
            target = node.targets[0]
            if isinstance(target, ast.Name):
                value = _eval_string_set(node.value, out)
                if value is not None:
                    out[target.id] = value
    return out


def _eval_string_set(
    node: ast.AST, constants: dict[str, frozenset[str]]
) -> frozenset[str] | None:
    """Statically evaluate an expression to a set of strings, or None."""
    if isinstance(node, (ast.Set, ast.List, ast.Tuple)):
        names: list[str] = []
        for element in node.elts:
            if isinstance(element, ast.Constant) and isinstance(element.value, str):
                names.append(element.value)
            else:
                return None
        return frozenset(names)
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return frozenset({node.value})
    if isinstance(node, ast.Call):
        func = node.func
        if (
            isinstance(func, ast.Name)
            and func.id in ("frozenset", "set")
            and len(node.args) <= 1
            and not node.keywords
        ):
            if not node.args:
                return frozenset()
            return _eval_string_set(node.args[0], constants)
        return None
    if isinstance(node, ast.Name):
        return constants.get(node.id)
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.BitOr):
        left = _eval_string_set(node.left, constants)
        right = _eval_string_set(node.right, constants)
        if left is not None and right is not None:
            return left | right
        return None
    return None


def _resolve_signature_call(
    call: ast.Call, constants: dict[str, frozenset[str]]
) -> frozenset[str] | None:
    """All action names registered by one ``Signature(...)`` call, or
    None when any argument is not statically resolvable."""
    names: set[str] = set()
    args: list[ast.expr] = list(call.args)
    args.extend(kw.value for kw in call.keywords if kw.arg is not None)
    if any(kw.arg is None for kw in call.keywords):
        return None  # **kwargs: not resolvable
    for arg in args:
        value = _eval_string_set(arg, constants)
        if value is None:
            return None
        names |= value
    return frozenset(names)


def _handled_names(
    cls: ast.ClassDef,
    classes: dict[str, ast.ClassDef],
    constants: dict[str, frozenset[str]],
    cache: dict[str, frozenset[str]],
) -> frozenset[str]:
    """String literals (and referenced name-set constants) appearing in
    the class's transition code, plus those of same-module bases."""
    if cls.name in cache:
        return cache[cls.name]
    cache[cls.name] = frozenset()  # cycle guard
    skip = {id(sub) for call in _signature_calls(cls) for sub in ast.walk(call)}
    handled: set[str] = set()
    for node in ast.walk(cls):
        if id(node) in skip:
            continue
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            handled.add(node.value)
        elif isinstance(node, ast.Name) and node.id in constants:
            handled |= constants[node.id]
    for base in cls.bases:
        if isinstance(base, ast.Name) and base.id in classes:
            handled |= _handled_names(classes[base.id], classes, constants, cache)
    result = frozenset(handled)
    cache[cls.name] = result
    return result
