"""Documentation gate: dead links and runnable snippets.

Prose rots in two ways: relative links break when files move, and
command/code snippets drift from the API they demonstrate.  This gate
mechanises both checks over the repo's markdown:

- **Links** — every inline markdown link with a relative target
  (``[text](docs/TUTORIAL.md)``, ``[x](../README.md#anchor)``) must
  resolve to an existing file or directory.  External schemes
  (``http(s)://``, ``mailto:``) and pure in-page anchors (``#...``)
  are not checked — CI has no network.
- **Snippets** — fenced code blocks whose info string carries the
  ``run`` tag (markdown: ```` ```python run ```` or ```` ```bash run ````)
  are executed from the repository root; a non-zero exit or a traceback
  fails the gate.  Python blocks get ``src/`` prepended to ``sys.path``
  so they run against the working tree, exactly like the test suite;
  bash blocks run under ``bash -e`` and spell out their own
  ``PYTHONPATH`` the way a user would.  Untagged blocks (pseudocode,
  console transcripts, elided fragments) are ignored.

Usage::

    python -m repro.lint.docs            # scan the repo root downwards
    python -m repro.lint.docs --skip-exec  # links only (fast)

Exit code 0 means clean, 1 means findings.  CI runs the full form in
the lint job; ``tests/docs/test_docs.py`` runs it as part of tier-1.
"""

from __future__ import annotations

import argparse
import re
import subprocess
import sys
from dataclasses import dataclass
from pathlib import Path

#: Directory names never scanned for markdown.
SKIP_DIRS = {".git", ".claude", "__pycache__", "node_modules", ".pytest_cache", "trace-artifacts"}

#: Root-level files quoting *other* repos' content (exemplar snippets,
#: issue text); their links point into trees that are not checked out.
SKIP_FILES = {"SNIPPETS.md", "ISSUE.md"}

#: Markdown files whose tagged snippets are executed (relative to root).
EXECUTABLE_DOCS = (
    "README.md",
    "docs/TUTORIAL.md",
    "docs/ARCHITECTURE.md",
    "docs/SHARDING.md",
)

#: Inline markdown link: [text](target) with an optional "title".
_LINK = re.compile(r"\[[^\]]*\]\(\s*([^)\s]+)(?:\s+\"[^\"]*\")?\s*\)")

#: Fence opener: ``` or ~~~ plus an info string.
_FENCE = re.compile(r"^(```+|~~~+)\s*(.*)$")

#: Per-snippet execution ceiling, seconds.  Generous: the live-cluster
#: walkthrough spawns real processes.
SNIPPET_TIMEOUT = 300.0


@dataclass(frozen=True)
class DocFinding:
    """One problem found in one markdown file."""

    path: Path
    line: int
    kind: str  # "dead-link" | "snippet"
    message: str

    def render(self, root: Path) -> str:
        rel = self.path.relative_to(root)
        return f"{rel}:{self.line}: [{self.kind}] {self.message}"


@dataclass(frozen=True)
class Snippet:
    """One runnable-tagged fenced block."""

    path: Path
    line: int  # line of the opening fence
    language: str  # "python" | "bash"
    code: str


def markdown_files(root: Path) -> list[Path]:
    """Every ``*.md`` under ``root``, skipping vendored/derived trees."""
    out: list[Path] = []
    for path in sorted(root.rglob("*.md")):
        if any(part in SKIP_DIRS for part in path.parts):
            continue
        if path.name in SKIP_FILES:
            continue
        out.append(path)
    return out


def check_links(path: Path, root: Path) -> list[DocFinding]:
    """Flag relative link targets that do not exist on disk."""
    findings: list[DocFinding] = []
    in_fence: str | None = None
    for lineno, line in enumerate(
        path.read_text(encoding="utf-8").splitlines(), start=1
    ):
        fence = _FENCE.match(line.strip())
        if fence is not None:
            marker = fence.group(1)[0] * 3
            if in_fence is None:
                in_fence = marker
            elif line.strip().startswith(in_fence):
                in_fence = None
            continue
        if in_fence is not None:
            continue  # code blocks are not prose; links there are examples
        for match in _LINK.finditer(line):
            target = match.group(1)
            if "://" in target or target.startswith(("mailto:", "#")):
                continue
            file_part = target.split("#", 1)[0]
            if not file_part:
                continue
            if file_part.startswith("/"):
                resolved = root / file_part.lstrip("/")
            else:
                resolved = path.parent / file_part
            if not resolved.exists():
                findings.append(
                    DocFinding(
                        path,
                        lineno,
                        "dead-link",
                        f"relative link target {target!r} does not exist",
                    )
                )
    return findings


def extract_snippets(path: Path) -> list[Snippet]:
    """Pull out every fenced block tagged ``run``."""
    snippets: list[Snippet] = []
    lines = path.read_text(encoding="utf-8").splitlines()
    index = 0
    while index < len(lines):
        fence = _FENCE.match(lines[index].strip())
        if fence is None:
            index += 1
            continue
        marker, info = fence.group(1)[0] * 3, fence.group(2).strip()
        open_line = index + 1
        body: list[str] = []
        index += 1
        while index < len(lines) and not lines[index].strip().startswith(marker):
            body.append(lines[index])
            index += 1
        index += 1  # past the closing fence
        words = info.split()
        if len(words) >= 2 and words[1] == "run" and words[0] in ("python", "bash", "sh"):
            language = "bash" if words[0] in ("bash", "sh") else "python"
            snippets.append(Snippet(path, open_line, language, "\n".join(body)))
    return snippets


def run_snippet(snippet: Snippet, root: Path) -> DocFinding | None:
    """Execute one snippet from the repo root; None means it passed."""
    if snippet.language == "python":
        shim = f"import sys as _sys\n_sys.path.insert(0, {str(root / 'src')!r})\n"
        argv = [sys.executable, "-c", shim + snippet.code]
    else:
        argv = ["bash", "-ec", snippet.code]
    try:
        proc = subprocess.run(
            argv,
            cwd=root,
            capture_output=True,
            text=True,
            timeout=SNIPPET_TIMEOUT,
        )
    except subprocess.TimeoutExpired:
        return DocFinding(
            snippet.path,
            snippet.line,
            "snippet",
            f"{snippet.language} block exceeded the {SNIPPET_TIMEOUT:.0f}s ceiling",
        )
    if proc.returncode != 0:
        tail = (proc.stderr or proc.stdout).strip().splitlines()[-6:]
        return DocFinding(
            snippet.path,
            snippet.line,
            "snippet",
            f"{snippet.language} block exited {proc.returncode}: "
            + " | ".join(tail),
        )
    return None


def check_docs(
    root: Path, execute: bool = True
) -> tuple[list[DocFinding], int, int]:
    """Run the whole gate.  Returns (findings, files scanned, snippets run)."""
    findings: list[DocFinding] = []
    files = markdown_files(root)
    for path in files:
        findings.extend(check_links(path, root))
    snippets_run = 0
    if execute:
        for rel in EXECUTABLE_DOCS:
            doc = root / rel
            if not doc.exists():
                continue
            for snippet in extract_snippets(doc):
                snippets_run += 1
                finding = run_snippet(snippet, root)
                if finding is not None:
                    findings.append(finding)
    return findings, len(files), snippets_run


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint.docs",
        description="Check markdown links and execute runnable snippets.",
    )
    parser.add_argument(
        "--root",
        default=".",
        help="repository root to scan (default: current directory)",
    )
    parser.add_argument(
        "--skip-exec",
        action="store_true",
        help="only check links; do not execute tagged snippets",
    )
    args = parser.parse_args(argv)
    root = Path(args.root).resolve()
    findings, files, snippets = check_docs(root, execute=not args.skip_exec)
    for finding in sorted(findings, key=lambda f: (str(f.path), f.line)):
        print(finding.render(root))
    print(
        f"{len(findings)} findings in {files} markdown files "
        f"({snippets} snippets executed)"
    )
    return 1 if findings else 0


if __name__ == "__main__":
    raise SystemExit(main())
