""":class:`ChaosRunner` — the full stack under a nemesis, continuously
verified.

One run drives VStoTO over the token ring while a
:class:`~repro.faults.schedule.FaultSchedule` perturbs packets, crashes
and restarts processors and skews timers; throughout, the online VS
conformance monitor (:class:`repro.core.monitor.OnlineVSMonitor`)
watches every VS event, and at the end the TO-level trace is checked
against TO-machine.  After the last fault window closes, a stable
whole-group layout is installed and the run continues for a settle
period; the report records

- safety: VS violations (must be none) and the TO trace verdict;
- recovery: whether every submitted value was delivered everywhere
  after the final stable epoch, and how long past stabilisation the
  last newview/delivery happened (compared to the paper's b and b+d);
- diagnostics: per-reason drop counters, dedup/retransmission/restart
  counts, message totals.

This is experiment E18 (``benchmarks/bench_chaos_soak.py``); a compact
form is surfaced by ``python -m repro.report``.
"""

from __future__ import annotations

import functools
import time
from dataclasses import dataclass, field
from collections.abc import Hashable, Iterable, Sequence
from typing import TYPE_CHECKING, Any

from repro.core.monitor import OnlineVSMonitor
from repro.core.quorums import MajorityQuorumSystem, QuorumSystem
from repro.core.to_spec import TO_EXTERNAL, check_to_trace
from repro.core.vstoto.runtime import VStoTORuntime
from repro.faults.injectors import ChaosContext
from repro.faults.schedule import FaultSchedule
from repro.faults.triggers import ProtocolEventHub
from repro.membership.bounds import VSBounds
from repro.membership.ring import RingConfig
from repro.membership.service import TokenRingVS
from repro.net.scenarios import stable_partition

if TYPE_CHECKING:
    from repro.obs import Observability
    from repro.parallel import RunEnvelope

ProcId = Hashable


@dataclass
class ChaosReport:
    """The outcome of one chaos run."""

    seed: int
    fault_kinds: tuple[str, ...]
    sends: int
    #: VS-level conformance violations seen by the online monitor.
    violations: list[str] = field(default_factory=list)
    to_ok: bool = True
    to_reason: str = ""
    #: every submitted value delivered at every processor, identically.
    delivered_complete: bool = False
    #: when the last fault window closed / the stable layout began.
    stabilization_time: float = 0.0
    #: last newview or client delivery, relative to stabilisation
    #: (how long the system needed to re-form and reconcile).
    recovery_time: float = 0.0
    #: the paper's TO-level bound b + d for the final full group —
    #: context for recovery_time (reconciliation of a backlog may
    #: legitimately take several deliver rounds on top).
    bound_to_b: float = 0.0
    drops: dict[str, int] = field(default_factory=dict)
    #: aggregate drop count straight from the channels — the per-reason
    #: breakdown in ``drops`` must sum to exactly this.
    drops_total: int = 0
    stats: dict[str, Any] = field(default_factory=dict)
    #: protocol-state coverage of the run (see
    #: :class:`repro.scenarios.coverage.CoverageReport`): VStoTO
    #: statuses, status edges, view-transition edges, fault×status
    #: pairs.  JSON-shaped; merged across sweeps with
    #: :func:`repro.parallel.merge_coverage_dicts`.
    coverage: dict[str, Any] = field(default_factory=dict)

    @property
    def safety_ok(self) -> bool:
        return not self.violations and self.to_ok

    @property
    def ok(self) -> bool:
        return self.safety_ok and self.delivered_complete


class ChaosRunner:
    """Build, perturb, verify: one seeded chaos-soak execution.

    Parameters
    ----------
    processors:
        The processor set.
    schedule:
        The nemesis.  Its :attr:`~FaultSchedule.horizon` defines the
        stabilisation point; after it the runner installs a stable
        whole-group partition and lets the system settle.
    seed:
        Master seed for the stack's RNG registry (channel delays,
        injector draws, traffic times — all separate streams).
    config:
        Ring timing; defaults to a hardened work-conserving config with
        bounded retransmission enabled.
    sends:
        Client values submitted at seeded times before the horizon.
    settle:
        Extra virtual time after stabilisation for recovery.
    obs:
        Optional :class:`repro.obs.Observability` hub threaded through
        the whole stack (service, simulator, channels, ring, runtime).
    """

    def __init__(
        self,
        processors: Iterable[ProcId],
        schedule: FaultSchedule,
        *,
        seed: int = 0,
        config: RingConfig | None = None,
        quorums: QuorumSystem | None = None,
        sends: int = 20,
        settle: float = 600.0,
        obs: Observability | None = None,
    ) -> None:
        self.processors: tuple[ProcId, ...] = tuple(processors)
        self.schedule = schedule
        self.seed = seed
        self.config = config if config is not None else RingConfig(
            delta=1.0,
            pi=10.0,
            mu=30.0,
            work_conserving=True,
            retransmit_attempts=3,
        )
        self.sends = sends
        self.settle = settle
        self.service = TokenRingVS(
            self.processors, self.config, seed=seed, obs=obs
        )
        self.runtime = VStoTORuntime(
            self.service,
            quorums if quorums is not None else MajorityQuorumSystem(
                self.processors
            ),
        )
        # Permissive mode: record every violation instead of raising at
        # the first, so a failing run still yields a full report.
        self.monitor = OnlineVSMonitor(
            self.processors, self.service.initial_view, strict=False
        )
        self.monitor.attach(self.service)
        # Protocol-event hook: normalizes VS events and VStoTO status
        # edges so schedules can key windows to protocol state (the
        # scenario engine's triggered faults) and so coverage can be
        # tracked.  Both are pure observers — no RNG, no scheduled
        # events unless a trigger actually fires.
        self.hub = ProtocolEventHub(self.service)
        self.hub.attach_runtime(self.runtime)
        # Imported lazily: repro.scenarios sits above repro.faults.
        from repro.scenarios.coverage import CoverageTracker

        self.coverage = CoverageTracker(self.runtime)
        self.hub.add_window_observer(self.coverage.note_triggered_window)
        self.ctx: ChaosContext | None = None

    # ------------------------------------------------------------------
    def run(self) -> ChaosReport:
        stabilization = self.schedule.horizon
        self.ctx = self.schedule.install(self.service, hub=self.hub)
        for window in self.schedule.windows:
            self.coverage.note_window(
                window.injector.SPEC_KIND, window.start, window.stop
            )
        # The conditional properties quantify over executions that
        # stabilise: end with a stable whole-group layout.  (This also
        # clears any lingering ugly/bad statuses the nemesis left.)
        self.service.install_scenario(
            stable_partition(self.processors, at=stabilization)
        )
        traffic = self.service.rngs.stream("chaos:traffic")
        values = []
        for i in range(self.sends):
            p = self.processors[i % len(self.processors)]
            value = f"chaos{i}"
            values.append(value)
            self.runtime.schedule_broadcast(
                traffic.uniform(5.0, stabilization), p, value
            )
        self.runtime.start()
        self.runtime.run_until(stabilization + self.settle)
        return self._report(stabilization, values)

    @classmethod
    def run_many(
        cls,
        processors: Iterable[ProcId],
        seeds: Sequence[int],
        *,
        workers: int = 1,
        **kwargs: Any,
    ) -> list[ChaosReport]:
        """Run one randomly-scheduled chaos soak per seed, fanned out
        over ``workers`` processes, merged in seed order.  The merged
        reports are identical to a sequential loop regardless of worker
        count; keyword knobs are those of :func:`run_chaos`."""
        return run_chaos_many(processors, seeds, workers=workers, **kwargs)

    # ------------------------------------------------------------------
    def _report(
        self, stabilization: float, values: Sequence[Any]
    ) -> ChaosReport:
        to_actions = [
            e.action
            for e in self.runtime.merged_trace().events
            if e.action.name in TO_EXTERNAL
        ]
        to_result = check_to_trace(to_actions, self.processors)
        reference = self.runtime.delivered_values(self.processors[0])
        complete = sorted(reference) == sorted(values) and all(
            self.runtime.delivered_values(p) == reference
            for p in self.processors[1:]
        )
        last_delivery = max(
            (d.time for d in self.runtime.deliveries), default=0.0
        )
        last_newview = max(
            (
                e.time
                for e in self.service.trace.events
                if e.action.name == "newview"
            ),
            default=0.0,
        )
        bounds = VSBounds(
            delta=self.config.delta, pi=self.config.pi, mu=self.config.mu
        )
        forced = list(self.ctx.forced_violations) if self.ctx else []
        return ChaosReport(
            seed=self.seed,
            fault_kinds=self.schedule.fault_kinds,
            sends=len(values),
            violations=list(self.monitor.violations) + forced,
            to_ok=to_result.ok,
            to_reason=to_result.reason,
            delivered_complete=complete,
            stabilization_time=stabilization,
            recovery_time=max(
                0.0, max(last_delivery, last_newview) - stabilization
            ),
            bound_to_b=bounds.to_b(len(self.processors)),
            drops=self.service.network.drop_stats(),
            drops_total=self.service.network.dropped_total(),
            stats=self.service.stats(),
            coverage=self.coverage.report().to_dict(),
        )


def run_chaos(
    processors: Iterable[ProcId],
    *,
    seed: int = 0,
    horizon: float = 400.0,
    intensity: float = 0.5,
    kinds: Sequence[str] | None = None,
    sends: int = 20,
    settle: float = 600.0,
    config: RingConfig | None = None,
    obs: Observability | None = None,
) -> ChaosReport:
    """One-call convenience: random schedule + runner + run."""
    processors = tuple(processors)
    schedule = FaultSchedule.random(
        seed, processors, horizon=horizon, intensity=intensity, kinds=kinds
    )
    runner = ChaosRunner(
        processors,
        schedule,
        seed=seed,
        sends=sends,
        settle=settle,
        config=config,
        obs=obs,
    )
    return runner.run()


# ----------------------------------------------------------------------
# Parallel multi-seed soaking (repro.parallel)
# ----------------------------------------------------------------------
def _chaos_envelope_worker(
    seed: int,
    *,
    processors: tuple[ProcId, ...],
    horizon: float,
    intensity: float,
    kinds: Sequence[str] | None,
    sends: int,
    settle: float,
    config: RingConfig | None,
) -> RunEnvelope:
    """One seeded chaos run wrapped in a RunEnvelope (module-level so it
    pickles into worker processes)."""
    from repro.parallel import make_envelope

    # Host wall-clock of the whole run, reported in the envelope for
    # operators; it never feeds simulation state, traces, or digests.
    t0 = time.perf_counter()  # repro-lint: ignore[DET002] -- operator wall-clock
    report = run_chaos(
        processors,
        seed=seed,
        horizon=horizon,
        intensity=intensity,
        kinds=kinds,
        sends=sends,
        settle=settle,
        config=config,
    )
    return make_envelope(
        seed,
        report,
        ok=report.ok,
        stats=report.stats,
        violations=report.violations,
        coverage=report.coverage,
        wall_s=time.perf_counter() - t0,  # repro-lint: ignore[DET002] -- operator wall-clock
    )


def run_chaos_sweep(
    processors: Iterable[ProcId],
    seeds: Sequence[int],
    *,
    workers: int = 1,
    horizon: float = 400.0,
    intensity: float = 0.5,
    kinds: Sequence[str] | None = None,
    sends: int = 20,
    settle: float = 600.0,
    config: RingConfig | None = None,
) -> list[RunEnvelope]:
    """Run :func:`run_chaos` for every seed, optionally across worker
    processes, returning :class:`repro.parallel.RunEnvelope` objects in
    seed order.  The merged result is identical to the sequential loop
    (``workers=1``) by construction; the envelopes' digests make that
    checkable."""
    from repro.parallel import run_seed_sweep

    worker = functools.partial(
        _chaos_envelope_worker,
        processors=tuple(processors),
        horizon=horizon,
        intensity=intensity,
        kinds=tuple(kinds) if kinds is not None else None,
        sends=sends,
        settle=settle,
        config=config,
    )
    return run_seed_sweep(worker, seeds, workers=workers)


def run_chaos_many(
    processors: Iterable[ProcId],
    seeds: Sequence[int],
    *,
    workers: int = 1,
    **kwargs: Any,
) -> list[ChaosReport]:
    """Seed-ordered chaos reports, fanned out over ``workers`` processes
    (see :func:`run_chaos_sweep` for the keyword knobs)."""
    return [
        env.result
        for env in run_chaos_sweep(processors, seeds, workers=workers, **kwargs)
    ]
