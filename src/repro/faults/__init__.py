"""Nemesis-style fault injection for the token-ring stack.

The paper's theorems are conditional on *every* execution — including
those with packet loss, duplication, reordering, crash-restart and
timer skew, none of which the scenario-level good/bad/ugly oracle can
express at packet granularity.  This package supplies:

- :mod:`~repro.faults.injectors` — composable, deterministically seeded
  fault injectors built on the packet-interception middleware of
  :class:`repro.net.channel.Channel` and on membership-layer hooks
  (crash-restart, timer skew);
- :mod:`~repro.faults.schedule` — :class:`FaultSchedule`, timed windows
  of injector activity, plus a seeded random adversarial generator;
- :mod:`~repro.faults.chaos` — :class:`ChaosRunner`, which runs the
  full VStoTO-over-token-ring stack under a schedule with the online VS
  monitor and TO trace checker attached, and reports safety violations
  (must be zero), recovery time and drop diagnostics.
"""

from repro.faults.chaos import (
    ChaosReport,
    ChaosRunner,
    run_chaos,
    run_chaos_many,
    run_chaos_sweep,
)
from repro.faults.injectors import (
    ChaosContext,
    CrashRestartInjector,
    FaultInjector,
    ForcedViolationInjector,
    PacketDelayInjector,
    PacketDuplicateInjector,
    PacketInjector,
    PacketLossInjector,
    PacketReorderInjector,
    PartitionInjector,
    TimerSkewInjector,
    TokenLossInjector,
)
from repro.faults.schedule import (
    ALL_FAULT_KINDS,
    SPEC_KINDS,
    FaultSchedule,
    FaultWindow,
    injector_from_spec,
    injector_to_spec,
)
from repro.faults.triggers import (
    ProtocolEvent,
    ProtocolEventHub,
    TriggeredFault,
    TriggerSpec,
)

__all__ = [
    "ALL_FAULT_KINDS",
    "SPEC_KINDS",
    "ChaosContext",
    "ChaosReport",
    "ChaosRunner",
    "CrashRestartInjector",
    "FaultInjector",
    "FaultSchedule",
    "FaultWindow",
    "ForcedViolationInjector",
    "PacketDelayInjector",
    "PacketDuplicateInjector",
    "PacketInjector",
    "PacketLossInjector",
    "PacketReorderInjector",
    "PartitionInjector",
    "ProtocolEvent",
    "ProtocolEventHub",
    "TimerSkewInjector",
    "TokenLossInjector",
    "TriggerSpec",
    "TriggeredFault",
    "injector_from_spec",
    "injector_to_spec",
    "run_chaos",
    "run_chaos_many",
    "run_chaos_sweep",
]
