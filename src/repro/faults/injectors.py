"""Composable, deterministically-seeded fault injectors (the nemesis).

Each injector perturbs one aspect of the executing system — per-link
packet loss / duplication / delay-jitter / reordering holds, targeted
token loss, process crash + restart-with-rejoin, and per-process timer
skew.  Injectors are *passive between windows*: a
:class:`~repro.faults.schedule.FaultSchedule` binds them to a running
:class:`~repro.membership.service.TokenRingVS` and opens/closes their
active windows at scheduled virtual times.

Determinism: every injector draws its randomness from its own named
stream of the service's :class:`~repro.sim.rng.RngRegistry`
(``fault:<name>``), so attaching a nemesis never perturbs the channel
delay or workload draws of an existing seed — a run with a zero-rate
nemesis is event-for-event identical to a run with none (see
``tests/faults/test_rng_isolation.py``).

Packet injectors ride on the interception middleware of
:class:`repro.net.channel.Channel`; they only ever see packets that
survived the failure oracle's own verdict, so injected faults compose
with the modelled good/bad/ugly statuses instead of replacing them.
"""

from __future__ import annotations

import random
from collections.abc import Hashable, Iterable, Sequence
from typing import TYPE_CHECKING

from typing import Any

from repro.membership.messages import Sequenced, Token
from repro.net.channel import Packet, PacketFate
from repro.net.status import FailureStatus

if TYPE_CHECKING:
    from repro.membership.service import TokenRingVS

ProcId = Hashable

#: Optional link restriction for packet injectors (None = every link).
Links = Iterable[tuple[ProcId, ProcId]] | None


def _links_param(links: tuple[tuple[ProcId, ProcId], ...] | None) -> Any:
    return None if links is None else [list(pair) for pair in links]


def coerce_links(raw: Any) -> Links:
    """JSON-decoded link lists back to the tuple-of-pairs shape."""
    if raw is None:
        return None
    return tuple((pair[0], pair[1]) for pair in raw)


class ChaosContext:
    """What an injector gets to work with: one running service stack."""

    def __init__(self, service: TokenRingVS) -> None:
        self.service = service
        self.network = service.network
        self.simulator = service.simulator
        self.oracle = service.network.oracle
        self.rngs = service.rngs
        #: messages appended by :class:`ForcedViolationInjector` windows;
        #: :class:`~repro.faults.chaos.ChaosRunner` folds them into the
        #: report's violation list (the shrinker's demo oracle).
        self.forced_violations: list[str] = []

    @property
    def processors(self) -> tuple[ProcId, ...]:
        return self.network.processors

    def rng(self, name: str) -> random.Random:
        """The injector's private seeded stream (isolated from channel
        delays and every other stochastic concern)."""
        return self.rngs.stream(f"fault:{name}")


class FaultInjector:
    """Base class: bind once, then open/close active windows."""

    #: short serialization kind (the vocabulary of schedule files); every
    #: concrete injector overrides it and registers in
    #: :data:`repro.faults.schedule.SPEC_KINDS`.
    SPEC_KIND = "abstract"

    def __init__(self, name: str) -> None:
        self.name = name
        self.active = False
        self.activations = 0
        self._ctx: ChaosContext | None = None
        self._rng: random.Random | None = None

    @property
    def kind(self) -> str:
        return type(self).__name__

    @property
    def ctx(self) -> ChaosContext:
        if self._ctx is None:
            raise RuntimeError(f"injector {self.name!r} is not bound")
        return self._ctx

    @property
    def rng(self) -> random.Random:
        if self._rng is None:
            raise RuntimeError(f"injector {self.name!r} is not bound")
        return self._rng

    def bind(self, ctx: ChaosContext) -> None:
        """Attach to a service (idempotent; called once per schedule)."""
        if self._ctx is not None:
            return
        self._ctx = ctx
        self._rng = ctx.rng(self.name)
        self._bind(ctx)

    def start(self, stop_time: float) -> None:
        """Open an active window ending (at the latest) at ``stop_time``."""
        if self._ctx is None:
            raise RuntimeError(f"injector {self.name!r} is not bound")
        self.active = True
        self.activations += 1
        self._start(stop_time)

    def stop(self) -> None:
        self.active = False
        self._stop()

    # Serialization -----------------------------------------------------
    def params(self) -> dict[str, Any]:
        """JSON-able constructor parameters (everything but ``name``).

        Together with :meth:`from_params` this must round-trip exactly:
        ``type(i).from_params(i.name, json.loads(json.dumps(i.params())))``
        rebuilds an injector with identical behaviour.  Tested by
        ``tests/faults/test_schedule_serialization.py``.
        """
        return {}

    @classmethod
    def from_params(cls, name: str, params: dict[str, Any]) -> FaultInjector:
        """Rebuild an injector from JSON-decoded :meth:`params` output."""
        return cls(name, **params)

    # Subclass hooks ----------------------------------------------------
    def _bind(self, ctx: ChaosContext) -> None:
        pass

    def _start(self, stop_time: float) -> None:
        pass

    def _stop(self) -> None:
        pass


def _payload(message: object) -> object:
    """The protocol body of a wire message (unwrap the seq stamp)."""
    return message.body if isinstance(message, Sequenced) else message


class PacketInjector(FaultInjector):
    """Base for injectors that perturb individual packets in flight."""

    def __init__(self, name: str, links: Links = None) -> None:
        super().__init__(name)
        self.links = tuple(links) if links is not None else None
        self.packets_touched = 0

    def _bind(self, ctx: ChaosContext) -> None:
        ctx.network.add_interceptor(self._intercept, links=self.links)

    def _intercept(
        self, packet: Packet, fate: PacketFate
    ) -> PacketFate | None:
        if not self.active or fate.dropped or not self._applies(packet):
            return None
        perturbed = self._perturb(packet, fate)
        if perturbed is not None:
            self.packets_touched += 1
        return perturbed

    def _applies(self, packet: Packet) -> bool:
        return True

    def _perturb(
        self, packet: Packet, fate: PacketFate
    ) -> PacketFate | None:
        raise NotImplementedError

    @classmethod
    def from_params(cls, name: str, params: dict[str, Any]) -> FaultInjector:
        params = dict(params)
        params["links"] = coerce_links(params.get("links"))
        return cls(name, **params)


class PacketLossInjector(PacketInjector):
    """Drop each passing packet with probability ``rate``."""

    SPEC_KIND = "loss"

    def __init__(self, name: str, rate: float, links: Links = None) -> None:
        super().__init__(name, links)
        self.rate = rate

    def params(self) -> dict[str, Any]:
        return {"rate": self.rate, "links": _links_param(self.links)}

    def _perturb(self, packet: Packet, fate: PacketFate) -> PacketFate | None:
        if self.rng.random() < self.rate:
            return PacketFate((), drop_reason="injected")
        return None


class PacketDuplicateInjector(PacketInjector):
    """Deliver an extra copy of a packet with probability ``rate``; the
    copy arrives up to ``extra_delay`` later than the original (so the
    duplicate may also be reordered past later traffic)."""

    SPEC_KIND = "duplicate"

    def __init__(
        self,
        name: str,
        rate: float,
        extra_delay: float = 5.0,
        links: Links = None,
    ) -> None:
        super().__init__(name, links)
        self.rate = rate
        self.extra_delay = extra_delay

    def params(self) -> dict[str, Any]:
        return {
            "rate": self.rate,
            "extra_delay": self.extra_delay,
            "links": _links_param(self.links),
        }

    def _perturb(self, packet: Packet, fate: PacketFate) -> PacketFate | None:
        if self.rng.random() < self.rate:
            echo = fate.delays[0] + self.rng.uniform(0.0, self.extra_delay)
            return PacketFate(fate.delays + (echo,), fate.drop_reason)
        return None


class PacketDelayInjector(PacketInjector):
    """Add uniform jitter up to ``jitter`` to each passing packet —
    breaking the good-link δ bound and, because the jitter is
    per-packet, reordering traffic on the link."""

    SPEC_KIND = "delay"

    def __init__(
        self, name: str, rate: float, jitter: float = 5.0, links: Links = None
    ) -> None:
        super().__init__(name, links)
        self.rate = rate
        self.jitter = jitter

    def params(self) -> dict[str, Any]:
        return {
            "rate": self.rate,
            "jitter": self.jitter,
            "links": _links_param(self.links),
        }

    def _perturb(self, packet: Packet, fate: PacketFate) -> PacketFate | None:
        if self.rng.random() >= self.rate:
            return None
        bump = self.rng.uniform(0.0, self.jitter)
        return PacketFate(
            tuple(d + bump for d in fate.delays), fate.drop_reason
        )


class PacketReorderInjector(PacketInjector):
    """Hold a packet back for at least ``hold_min`` (up to ``hold_max``)
    so that packets sent after it overtake it — a guaranteed reorder
    whenever the hold exceeds the link's δ and there is later traffic."""

    SPEC_KIND = "reorder"

    def __init__(
        self,
        name: str,
        rate: float,
        hold_min: float = 2.0,
        hold_max: float = 8.0,
        links: Links = None,
    ) -> None:
        super().__init__(name, links)
        self.rate = rate
        self.hold_min = hold_min
        self.hold_max = hold_max

    def params(self) -> dict[str, Any]:
        return {
            "rate": self.rate,
            "hold_min": self.hold_min,
            "hold_max": self.hold_max,
            "links": _links_param(self.links),
        }

    def _perturb(self, packet: Packet, fate: PacketFate) -> PacketFate | None:
        if self.rng.random() >= self.rate:
            return None
        hold = self.rng.uniform(self.hold_min, self.hold_max)
        return PacketFate(
            tuple(d + hold for d in fate.delays), fate.drop_reason
        )


class TokenLossInjector(PacketInjector):
    """Drop circulating :class:`~repro.membership.messages.Token`
    packets with probability ``rate`` — the targeted attack on the
    ring's liveness core, answered by the token-regeneration watchdog."""

    SPEC_KIND = "token_loss"

    def __init__(self, name: str, rate: float, links: Links = None) -> None:
        super().__init__(name, links)
        self.rate = rate

    def params(self) -> dict[str, Any]:
        return {"rate": self.rate, "links": _links_param(self.links)}

    def _applies(self, packet: Packet) -> bool:
        return isinstance(_payload(packet.message), Token)

    def _perturb(self, packet: Packet, fate: PacketFate) -> PacketFate | None:
        if self.rng.random() < self.rate:
            return PacketFate((), drop_reason="injected")
        return None


class TimerSkewInjector(FaultInjector):
    """Run selected members' local timers at a random rate in
    [``skew_min``, ``skew_max``] for the window, then restore nominal
    speed.  Fast clocks (<1) fire watchdogs early and force spurious
    view formations; slow clocks (>1) delay loss detection."""

    SPEC_KIND = "timer_skew"

    def __init__(
        self,
        name: str,
        skew_min: float = 0.7,
        skew_max: float = 1.5,
        targets: Sequence[ProcId] | None = None,
    ) -> None:
        super().__init__(name)
        if skew_min <= 0 or skew_max < skew_min:
            raise ValueError("need 0 < skew_min <= skew_max")
        self.skew_min = skew_min
        self.skew_max = skew_max
        self.targets = tuple(targets) if targets is not None else None
        self._skewed: list[ProcId] = []

    def params(self) -> dict[str, Any]:
        return {
            "skew_min": self.skew_min,
            "skew_max": self.skew_max,
            "targets": None if self.targets is None else list(self.targets),
        }

    @classmethod
    def from_params(cls, name: str, params: dict[str, Any]) -> FaultInjector:
        params = dict(params)
        targets = params.get("targets")
        params["targets"] = None if targets is None else tuple(targets)
        return cls(name, **params)

    def _start(self, stop_time: float) -> None:
        candidates = self.targets or self.ctx.processors
        for p in candidates:
            member = self.ctx.service.members[p]
            member.set_timer_skew(
                self.rng.uniform(self.skew_min, self.skew_max)
            )
            self._skewed.append(p)

    def _stop(self) -> None:
        for p in self._skewed:
            self.ctx.service.members[p].set_timer_skew(1.0)
        self._skewed = []


class CrashRestartInjector(FaultInjector):
    """Crash one processor (failure status *bad* — it takes no steps and
    receives nothing) and restart it before the window closes: the ring
    member comes back with fresh volatile state
    (:meth:`~repro.membership.ring.RingMember.restart`) and rejoins
    through the merge-probe path.

    The victim is drawn from ``targets`` (default: every processor),
    avoiding processors this injector still has down.  The outage length
    is uniform in [``min_down``, ``max_down``], clipped to the window.
    """

    SPEC_KIND = "crash_restart"

    def __init__(
        self,
        name: str,
        min_down: float = 20.0,
        max_down: float = 60.0,
        targets: Sequence[ProcId] | None = None,
    ) -> None:
        super().__init__(name)
        if min_down <= 0 or max_down < min_down:
            raise ValueError("need 0 < min_down <= max_down")
        self.min_down = min_down
        self.max_down = max_down
        self.targets = tuple(targets) if targets is not None else None
        self.crashes = 0
        self._down: set[ProcId] = set()

    def params(self) -> dict[str, Any]:
        return {
            "min_down": self.min_down,
            "max_down": self.max_down,
            "targets": None if self.targets is None else list(self.targets),
        }

    @classmethod
    def from_params(cls, name: str, params: dict[str, Any]) -> FaultInjector:
        params = dict(params)
        targets = params.get("targets")
        params["targets"] = None if targets is None else tuple(targets)
        return cls(name, **params)

    def _start(self, stop_time: float) -> None:
        sim = self.ctx.simulator
        candidates = [
            p
            for p in (self.targets or self.ctx.processors)
            if p not in self._down
        ]
        if not candidates:
            return
        victim = candidates[self.rng.randrange(len(candidates))]
        down_for = self.rng.uniform(self.min_down, self.max_down)
        restart_at = min(sim.now + down_for, stop_time)
        self.crashes += 1
        self._down.add(victim)
        self.ctx.oracle.set_processor(victim, FailureStatus.BAD, time=sim.now)

        def recover() -> None:
            self._down.discard(victim)
            self.ctx.service.restart_processor(victim)
            self.ctx.oracle.set_processor(
                victim, FailureStatus.GOOD, time=sim.now
            )

        sim.schedule_at(restart_at, recover)


class PartitionInjector(FaultInjector):
    """Cut the network into connectivity components for the window.

    While active, every ordered link between two different ``groups``
    members is *bad* (consistent-partition semantics at the link level);
    closing the window restores those links to *good*.  Processor
    statuses are untouched, so a concurrent :class:`CrashRestartInjector`
    composes instead of being overwritten.  Processors not mentioned in
    any group keep their current connectivity.

    This is the journey-level partition shape: unlike the oracle-wide
    :class:`repro.net.scenarios.PartitionScenario` it is windowed,
    serializable, and shrinkable, and its ``groups`` survive into live
    replay (:func:`repro.rt.faults.windows_from_scenario`).
    """

    SPEC_KIND = "partition"

    def __init__(
        self, name: str, groups: Sequence[Sequence[ProcId]]
    ) -> None:
        super().__init__(name)
        self.groups: tuple[tuple[ProcId, ...], ...] = tuple(
            tuple(g) for g in groups
        )
        seen: set[ProcId] = set()
        for group in self.groups:
            for p in group:
                if p in seen:
                    raise ValueError(f"processor {p!r} in two groups")
                seen.add(p)
        self._cut: list[tuple[ProcId, ProcId]] = []

    def params(self) -> dict[str, Any]:
        return {"groups": [list(g) for g in self.groups]}

    @classmethod
    def from_params(cls, name: str, params: dict[str, Any]) -> FaultInjector:
        return cls(name, groups=tuple(tuple(g) for g in params["groups"]))

    def _component_of(self, p: ProcId) -> int:
        for index, group in enumerate(self.groups):
            if p in group:
                return index
        return -1

    def _start(self, stop_time: float) -> None:
        now = self.ctx.simulator.now
        mentioned = [p for group in self.groups for p in group]
        for p in mentioned:
            for q in mentioned:
                if p == q or self._component_of(p) == self._component_of(q):
                    continue
                self.ctx.oracle.set_link(p, q, FailureStatus.BAD, time=now)
                self._cut.append((p, q))

    def _stop(self) -> None:
        now = self.ctx.simulator.now
        for p, q in self._cut:
            self.ctx.oracle.set_link(p, q, FailureStatus.GOOD, time=now)
        self._cut = []


class ForcedViolationInjector(FaultInjector):
    """A deliberately planted failure: each window opening appends a
    marked violation to the run's report (via
    :attr:`ChaosContext.forced_violations`).

    It exists for the shrinker's acceptance loop: a schedule seeded with
    one forced window among many innocuous ones gives a *deterministic*
    violating run whose minimal reproduction is known by construction,
    so delta-debugging can be tested end-to-end without waiting for a
    real protocol bug.
    """

    SPEC_KIND = "forced_violation"

    def _start(self, stop_time: float) -> None:
        self.ctx.forced_violations.append(
            f"forced violation: injector {self.name!r} active at "
            f"t={self.ctx.simulator.now:g}"
        )
