"""Fault schedules: composable timed windows of nemesis activity.

A :class:`FaultSchedule` is a list of ``(start, stop, injector)``
windows.  Installing it on a running
:class:`~repro.membership.service.TokenRingVS` binds every injector
(registering packet interceptors, etc.) and schedules the window
open/close events on the service's simulator.  The same injector may
appear in several windows; different injectors freely overlap, which is
what *composed* fault types means — e.g. token loss while a processor is
crashed and another's clock runs fast.

Beyond timed windows a schedule can carry *triggered* windows
(:meth:`FaultSchedule.add_triggered`): windows keyed to protocol events
— "when any member enters state exchange, drop the token" — which fire
through a :class:`~repro.faults.triggers.ProtocolEventHub` (the
scenario engine's event-trigger hook on ``ChaosRunner``).

Schedules serialize (:meth:`FaultSchedule.to_dict` /
:meth:`FaultSchedule.from_dict`): every injector's parameters
round-trip through JSON, which is what makes a shrunk violating
schedule a *file* that re-runs to the same verdict
(:mod:`repro.scenarios.shrink`).

:meth:`FaultSchedule.random` generates a seeded adversarial schedule
over a chosen set of fault kinds — the workhorse of the E18 chaos-soak
experiment (``benchmarks/bench_chaos_soak.py``).  Its randomness is a
plain builder-time :class:`random.Random`; the injectors it creates
draw their run-time randomness from per-injector registry streams.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from collections.abc import Hashable, Sequence
from typing import TYPE_CHECKING, Any

from repro.faults.injectors import (
    ChaosContext,
    CrashRestartInjector,
    FaultInjector,
    ForcedViolationInjector,
    PacketDelayInjector,
    PacketDuplicateInjector,
    PacketLossInjector,
    PacketReorderInjector,
    PartitionInjector,
    TimerSkewInjector,
    TokenLossInjector,
)
from repro.faults.triggers import (
    ProtocolEventHub,
    TriggeredFault,
    TriggerSpec,
)

if TYPE_CHECKING:
    from repro.membership.service import TokenRingVS

ProcId = Hashable

#: Every fault kind :meth:`FaultSchedule.random` knows how to build.
ALL_FAULT_KINDS = (
    "loss",
    "duplicate",
    "delay",
    "reorder",
    "token_loss",
    "crash_restart",
    "timer_skew",
)

#: Serialization vocabulary: spec kind → injector class.  Includes the
#: journey-only kinds (``partition``, ``forced_violation``) on top of
#: the random-generator kinds above.
SPEC_KINDS: dict[str, type[FaultInjector]] = {
    cls.SPEC_KIND: cls
    for cls in (
        PacketLossInjector,
        PacketDuplicateInjector,
        PacketDelayInjector,
        PacketReorderInjector,
        TokenLossInjector,
        CrashRestartInjector,
        TimerSkewInjector,
        PartitionInjector,
        ForcedViolationInjector,
    )
}


def injector_to_spec(injector: FaultInjector) -> dict[str, Any]:
    """The JSON-able description of one injector."""
    kind = injector.SPEC_KIND
    if kind not in SPEC_KINDS:
        raise ValueError(
            f"injector {type(injector).__name__} has no registered "
            f"spec kind; known: {sorted(SPEC_KINDS)}"
        )
    return {"kind": kind, "name": injector.name, **injector.params()}


def injector_from_spec(spec: dict[str, Any]) -> FaultInjector:
    """Rebuild an injector from :func:`injector_to_spec` output."""
    data = dict(spec)
    kind = data.pop("kind", None)
    if kind not in SPEC_KINDS:
        raise ValueError(
            f"unknown fault kind {kind!r}; known: {sorted(SPEC_KINDS)}"
        )
    name = data.pop("name")
    return SPEC_KINDS[kind].from_params(name, data)


@dataclass(frozen=True)
class FaultWindow:
    """One activation window of one injector.

    Construction validates the shape — a ``stop <= start`` window would
    otherwise schedule a close before (or at) its open and silently
    no-op, and a non-injector payload would fail only at install time,
    deep inside a simulator callback.
    """

    start: float
    stop: float
    injector: FaultInjector

    def __post_init__(self) -> None:
        if self.start < 0 or self.stop <= self.start:
            raise ValueError(
                f"need 0 <= start < stop, got [{self.start}, {self.stop})"
            )
        if not isinstance(self.injector, FaultInjector):
            raise ValueError(
                f"window payload must be a FaultInjector, "
                f"got {type(self.injector).__name__}"
            )


class FaultSchedule:
    """An installable collection of fault windows.

    ``horizon`` optionally pins the stabilisation point explicitly —
    required when the schedule contains *only* triggered windows (whose
    open times are unknown until run time) and useful to leave settle
    room after the last timed window.
    """

    def __init__(self, horizon: float | None = None) -> None:
        if horizon is not None and horizon <= 0:
            raise ValueError(f"explicit horizon must be > 0, got {horizon}")
        self.windows: list[FaultWindow] = []
        self.triggered: list[TriggeredFault] = []
        self.explicit_horizon = horizon

    def add(
        self, injector: FaultInjector, start: float, stop: float
    ) -> FaultSchedule:
        self.windows.append(FaultWindow(start, stop, injector))
        return self

    def add_triggered(
        self, injector: FaultInjector, trigger: TriggerSpec
    ) -> FaultSchedule:
        """Attach a window that opens when ``trigger`` matches a
        protocol event (see :mod:`repro.faults.triggers`)."""
        if not isinstance(injector, FaultInjector):
            raise ValueError(
                f"triggered payload must be a FaultInjector, "
                f"got {type(injector).__name__}"
            )
        self.triggered.append(TriggeredFault(trigger, injector))
        return self

    @property
    def horizon(self) -> float:
        """When the last window closes — after this the nemesis is done
        and (given a final stable layout) the system must recover."""
        latest = max((w.stop for w in self.windows), default=0.0)
        if self.explicit_horizon is not None:
            latest = max(latest, self.explicit_horizon)
        return latest

    @property
    def injectors(self) -> list[FaultInjector]:
        """The distinct injectors, in first-appearance order (timed
        windows first, then triggered)."""
        seen: dict[int, FaultInjector] = {}
        for window in self.windows:
            seen.setdefault(id(window.injector), window.injector)
        for fault in self.triggered:
            seen.setdefault(id(fault.injector), fault.injector)
        return list(seen.values())

    @property
    def fault_kinds(self) -> tuple[str, ...]:
        """Sorted distinct injector class names (the composition width)."""
        return tuple(sorted({i.kind for i in self.injectors}))

    def install(
        self, service: TokenRingVS, hub: ProtocolEventHub | None = None
    ) -> ChaosContext:
        """Bind injectors to ``service`` and schedule every window.

        Triggered windows need a :class:`ProtocolEventHub` to observe
        protocol events; installing a schedule that has them without one
        is an error (the windows would silently never open).
        """
        if self.triggered and hub is None:
            raise ValueError(
                "schedule has triggered windows; pass a ProtocolEventHub "
                "(ChaosRunner wires one automatically)"
            )
        ctx = ChaosContext(service)
        for injector in self.injectors:
            injector.bind(ctx)
        # Annotate the windows on the service's lifecycle tracer (if
        # any) so trace exports show what the nemesis was doing when.
        obs = getattr(service, "obs", None)
        tracer = getattr(obs, "tracer", None) if obs is not None else None
        if tracer is not None:
            for window in self.windows:
                tracer.on_fault_window(
                    window.injector.kind,
                    window.injector.name,
                    window.start,
                    window.stop,
                )
        for window in self.windows:
            service.simulator.schedule_at(
                window.start,
                lambda w=window: w.injector.start(w.stop),
            )
            service.simulator.schedule_at(
                window.stop, lambda w=window: w.injector.stop()
            )
        if hub is not None:
            horizon = self.horizon if (self.windows or self.explicit_horizon) else None
            for fault in self.triggered:
                hub.arm(fault, horizon)
        return ctx

    # ------------------------------------------------------------------
    # Serialization (scenario files, the shrinker's medium)
    # ------------------------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        """A JSON-able description that :meth:`from_dict` inverts.

        Injector *sharing* is preserved: two windows driven by the same
        instance reference one spec (keyed by kind+name), so activation
        semantics survive the round trip.
        """
        return {
            "horizon": self.explicit_horizon,
            "windows": [
                {
                    "start": w.start,
                    "stop": w.stop,
                    "injector": injector_to_spec(w.injector),
                }
                for w in self.windows
            ],
            "triggered": [
                {
                    "trigger": fault.trigger.to_dict(),
                    "injector": injector_to_spec(fault.injector),
                }
                for fault in self.triggered
            ],
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> FaultSchedule:
        schedule = cls(horizon=data.get("horizon"))
        instances: dict[tuple[str, str], FaultInjector] = {}

        def materialize(spec: dict[str, Any]) -> FaultInjector:
            key = (str(spec.get("kind")), str(spec.get("name")))
            if key not in instances:
                instances[key] = injector_from_spec(spec)
            return instances[key]

        for window in data.get("windows", ()):
            schedule.add(
                materialize(window["injector"]),
                window["start"],
                window["stop"],
            )
        for entry in data.get("triggered", ()):
            schedule.add_triggered(
                materialize(entry["injector"]),
                TriggerSpec.from_dict(entry["trigger"]),
            )
        return schedule

    # ------------------------------------------------------------------
    @classmethod
    def random(
        cls,
        seed: int,
        processors: Sequence[ProcId],
        horizon: float = 400.0,
        intensity: float = 0.5,
        kinds: Sequence[str] | None = None,
        windows_per_kind: int = 2,
    ) -> FaultSchedule:
        """A seeded adversarial schedule composing the given ``kinds``.

        ``intensity`` in (0, 1] scales fault rates and outage lengths.
        Windows start no earlier than a short warm-up and all close by
        ``horizon``; kinds overlap freely.
        """
        if not 0 < intensity <= 1:
            raise ValueError("intensity must lie in (0, 1]")
        kinds = tuple(kinds if kinds is not None else ALL_FAULT_KINDS)
        unknown = set(kinds) - set(ALL_FAULT_KINDS)
        if unknown:
            raise ValueError(f"unknown fault kinds: {sorted(unknown)}")
        rng = random.Random(seed)
        schedule = cls()
        warmup = min(25.0, 0.1 * horizon)
        index = 0
        for kind in kinds:
            for _ in range(1 + rng.randrange(max(1, windows_per_kind))):
                start = rng.uniform(warmup, 0.75 * horizon)
                stop = min(
                    start + rng.uniform(0.1, 0.35) * horizon, horizon
                )
                injector = cls._make_injector(
                    kind, f"{kind}#{index}", rng, processors, intensity
                )
                schedule.add(injector, start, stop)
                index += 1
        return schedule

    @staticmethod
    def _make_injector(
        kind: str,
        name: str,
        rng: random.Random,
        processors: Sequence[ProcId],
        intensity: float,
    ) -> FaultInjector:
        if kind == "loss":
            return PacketLossInjector(
                name, rate=intensity * rng.uniform(0.05, 0.3)
            )
        if kind == "duplicate":
            return PacketDuplicateInjector(
                name,
                rate=intensity * rng.uniform(0.1, 0.5),
                extra_delay=rng.uniform(2.0, 10.0),
            )
        if kind == "delay":
            return PacketDelayInjector(
                name,
                rate=intensity * rng.uniform(0.2, 0.6),
                jitter=rng.uniform(2.0, 12.0),
            )
        if kind == "reorder":
            return PacketReorderInjector(
                name,
                rate=intensity * rng.uniform(0.1, 0.4),
                hold_min=2.0,
                hold_max=rng.uniform(4.0, 10.0),
            )
        if kind == "token_loss":
            return TokenLossInjector(
                name, rate=intensity * rng.uniform(0.1, 0.5)
            )
        if kind == "crash_restart":
            return CrashRestartInjector(
                name,
                min_down=10.0,
                max_down=10.0 + intensity * 60.0,
                targets=tuple(processors),
            )
        if kind == "timer_skew":
            low = 1.0 - 0.4 * intensity
            high = 1.0 + 0.8 * intensity
            return TimerSkewInjector(name, skew_min=low, skew_max=high)
        raise ValueError(f"unknown fault kind {kind!r}")
