"""Fault schedules: composable timed windows of nemesis activity.

A :class:`FaultSchedule` is a list of ``(start, stop, injector)``
windows.  Installing it on a running
:class:`~repro.membership.service.TokenRingVS` binds every injector
(registering packet interceptors, etc.) and schedules the window
open/close events on the service's simulator.  The same injector may
appear in several windows; different injectors freely overlap, which is
what *composed* fault types means — e.g. token loss while a processor is
crashed and another's clock runs fast.

:meth:`FaultSchedule.random` generates a seeded adversarial schedule
over a chosen set of fault kinds — the workhorse of the E18 chaos-soak
experiment (``benchmarks/bench_chaos_soak.py``).  Its randomness is a
plain builder-time :class:`random.Random`; the injectors it creates
draw their run-time randomness from per-injector registry streams.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from collections.abc import Hashable, Sequence
from typing import TYPE_CHECKING

from repro.faults.injectors import (
    ChaosContext,
    CrashRestartInjector,
    FaultInjector,
    PacketDelayInjector,
    PacketDuplicateInjector,
    PacketLossInjector,
    PacketReorderInjector,
    TimerSkewInjector,
    TokenLossInjector,
)

if TYPE_CHECKING:
    from repro.membership.service import TokenRingVS

ProcId = Hashable

#: Every fault kind :meth:`FaultSchedule.random` knows how to build.
ALL_FAULT_KINDS = (
    "loss",
    "duplicate",
    "delay",
    "reorder",
    "token_loss",
    "crash_restart",
    "timer_skew",
)


@dataclass(frozen=True)
class FaultWindow:
    """One activation window of one injector."""

    start: float
    stop: float
    injector: FaultInjector

    def __post_init__(self) -> None:
        if self.start < 0 or self.stop <= self.start:
            raise ValueError(
                f"need 0 <= start < stop, got [{self.start}, {self.stop})"
            )


class FaultSchedule:
    """An installable collection of fault windows."""

    def __init__(self) -> None:
        self.windows: list[FaultWindow] = []

    def add(
        self, injector: FaultInjector, start: float, stop: float
    ) -> FaultSchedule:
        self.windows.append(FaultWindow(start, stop, injector))
        return self

    @property
    def horizon(self) -> float:
        """When the last window closes — after this the nemesis is done
        and (given a final stable layout) the system must recover."""
        return max((w.stop for w in self.windows), default=0.0)

    @property
    def injectors(self) -> list[FaultInjector]:
        """The distinct injectors, in first-appearance order."""
        seen: dict[int, FaultInjector] = {}
        for window in self.windows:
            seen.setdefault(id(window.injector), window.injector)
        return list(seen.values())

    @property
    def fault_kinds(self) -> tuple[str, ...]:
        """Sorted distinct injector class names (the composition width)."""
        return tuple(sorted({i.kind for i in self.injectors}))

    def install(self, service: TokenRingVS) -> ChaosContext:
        """Bind injectors to ``service`` and schedule every window."""
        ctx = ChaosContext(service)
        for injector in self.injectors:
            injector.bind(ctx)
        # Annotate the windows on the service's lifecycle tracer (if
        # any) so trace exports show what the nemesis was doing when.
        obs = getattr(service, "obs", None)
        tracer = getattr(obs, "tracer", None) if obs is not None else None
        if tracer is not None:
            for window in self.windows:
                tracer.on_fault_window(
                    window.injector.kind,
                    window.injector.name,
                    window.start,
                    window.stop,
                )
        for window in self.windows:
            service.simulator.schedule_at(
                window.start,
                lambda w=window: w.injector.start(w.stop),
            )
            service.simulator.schedule_at(
                window.stop, lambda w=window: w.injector.stop()
            )
        return ctx

    # ------------------------------------------------------------------
    @classmethod
    def random(
        cls,
        seed: int,
        processors: Sequence[ProcId],
        horizon: float = 400.0,
        intensity: float = 0.5,
        kinds: Sequence[str] | None = None,
        windows_per_kind: int = 2,
    ) -> FaultSchedule:
        """A seeded adversarial schedule composing the given ``kinds``.

        ``intensity`` in (0, 1] scales fault rates and outage lengths.
        Windows start no earlier than a short warm-up and all close by
        ``horizon``; kinds overlap freely.
        """
        if not 0 < intensity <= 1:
            raise ValueError("intensity must lie in (0, 1]")
        kinds = tuple(kinds if kinds is not None else ALL_FAULT_KINDS)
        unknown = set(kinds) - set(ALL_FAULT_KINDS)
        if unknown:
            raise ValueError(f"unknown fault kinds: {sorted(unknown)}")
        rng = random.Random(seed)
        schedule = cls()
        warmup = min(25.0, 0.1 * horizon)
        index = 0
        for kind in kinds:
            for _ in range(1 + rng.randrange(max(1, windows_per_kind))):
                start = rng.uniform(warmup, 0.75 * horizon)
                stop = min(
                    start + rng.uniform(0.1, 0.35) * horizon, horizon
                )
                injector = cls._make_injector(
                    kind, f"{kind}#{index}", rng, processors, intensity
                )
                schedule.add(injector, start, stop)
                index += 1
        return schedule

    @staticmethod
    def _make_injector(
        kind: str,
        name: str,
        rng: random.Random,
        processors: Sequence[ProcId],
        intensity: float,
    ) -> FaultInjector:
        if kind == "loss":
            return PacketLossInjector(
                name, rate=intensity * rng.uniform(0.05, 0.3)
            )
        if kind == "duplicate":
            return PacketDuplicateInjector(
                name,
                rate=intensity * rng.uniform(0.1, 0.5),
                extra_delay=rng.uniform(2.0, 10.0),
            )
        if kind == "delay":
            return PacketDelayInjector(
                name,
                rate=intensity * rng.uniform(0.2, 0.6),
                jitter=rng.uniform(2.0, 12.0),
            )
        if kind == "reorder":
            return PacketReorderInjector(
                name,
                rate=intensity * rng.uniform(0.1, 0.4),
                hold_min=2.0,
                hold_max=rng.uniform(4.0, 10.0),
            )
        if kind == "token_loss":
            return TokenLossInjector(
                name, rate=intensity * rng.uniform(0.1, 0.5)
            )
        if kind == "crash_restart":
            return CrashRestartInjector(
                name,
                min_down=10.0,
                max_down=10.0 + intensity * 60.0,
                targets=tuple(processors),
            )
        if kind == "timer_skew":
            low = 1.0 - 0.4 * intensity
            high = 1.0 + 0.8 * intensity
            return TimerSkewInjector(name, skew_min=low, skew_max=high)
        raise ValueError(f"unknown fault kind {kind!r}")
