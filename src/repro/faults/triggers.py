"""Protocol-event-triggered fault windows.

Timed windows (:class:`~repro.faults.schedule.FaultWindow`) key the
nemesis to *wall-clock* virtual times; many of the paper's interesting
interleavings are instead keyed to *protocol state*: "when any member
enters state exchange, drop the token", "crash a processor the moment a
view change begins".  This module supplies that hook:

- :class:`TriggerSpec` — a serializable predicate over protocol events
  (a VStoTO status entry, a ``newview`` installation, or a
  view-membership change) plus the window to open when it fires;
- :class:`TriggeredFault` — a (spec, injector) pair carried by a
  :class:`~repro.faults.schedule.FaultSchedule` alongside timed windows;
- :class:`ProtocolEventHub` — the runtime bridge: it subscribes to the
  VS service's event recorder and the VStoTO runtime's status-edge
  feed, normalizes both into :class:`ProtocolEvent` records, and arms
  triggers so a matching event opens the injector's window on the
  simulator.

Determinism: the hub is driven entirely by the deterministic event
stream of a seeded execution and draws no randomness of its own, so a
triggered schedule replays exactly from (seed, scenario file) — which
is what lets the shrinker re-verify candidates.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Callable, Hashable
from typing import TYPE_CHECKING, Any

from repro.faults.injectors import FaultInjector

if TYPE_CHECKING:
    from repro.core.vstoto.runtime import VStoTORuntime
    from repro.membership.service import TokenRingVS

ProcId = Hashable

#: Event vocabulary a trigger can match on.
TRIGGER_EVENTS = ("status_enter", "newview", "view_change")

#: VStoTO statuses (Fig. 9) a ``status_enter`` trigger can name.
TRIGGER_STATUSES = ("normal", "send", "collect")


@dataclass(frozen=True)
class ProtocolEvent:
    """One normalized protocol observation.

    ``kind`` is one of :data:`TRIGGER_EVENTS`; ``detail`` carries the
    entered status for ``status_enter`` and a view-edge label for the
    view kinds.
    """

    time: float
    kind: str
    proc: ProcId
    detail: str = ""


@dataclass(frozen=True)
class TriggerSpec:
    """When to open a triggered window, and for how long.

    Parameters
    ----------
    event:
        One of :data:`TRIGGER_EVENTS`.  ``status_enter`` fires when any
        processor's VStoTO status becomes ``status``; ``newview`` fires
        on any view installation; ``view_change`` fires when a
        processor's view *membership* actually changes (a strict subset
        of ``newview``).
    status:
        Required for ``status_enter`` (one of
        :data:`TRIGGER_STATUSES`); must be ``None`` otherwise.
    delay:
        Virtual time between the matching event and the window opening.
    duration:
        Window length; the stop time is clamped to the schedule horizon
        so a late trigger cannot keep the nemesis alive past
        stabilisation.
    once:
        Fire only on the first matching event (default) or on every one.
    after:
        Ignore matching events before this virtual time (lets a journey
        skip warm-up formations).
    """

    event: str
    duration: float
    status: str | None = None
    delay: float = 0.0
    once: bool = True
    after: float = 0.0

    def __post_init__(self) -> None:
        if self.event not in TRIGGER_EVENTS:
            raise ValueError(
                f"unknown trigger event {self.event!r}; "
                f"known: {list(TRIGGER_EVENTS)}"
            )
        if self.duration <= 0:
            raise ValueError("trigger duration must be > 0")
        if self.delay < 0 or self.after < 0:
            raise ValueError("trigger delay/after must be >= 0")
        if self.event == "status_enter":
            if self.status not in TRIGGER_STATUSES:
                raise ValueError(
                    f"status_enter trigger needs status in "
                    f"{list(TRIGGER_STATUSES)}, got {self.status!r}"
                )
        elif self.status is not None:
            raise ValueError(
                f"{self.event!r} trigger takes no status, got {self.status!r}"
            )

    def matches(self, event: ProtocolEvent) -> bool:
        if event.time < self.after:
            return False
        if event.kind != self.event:
            return False
        if self.event == "status_enter":
            return event.detail == self.status
        return True

    def to_dict(self) -> dict[str, Any]:
        return {
            "event": self.event,
            "duration": self.duration,
            "status": self.status,
            "delay": self.delay,
            "once": self.once,
            "after": self.after,
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> TriggerSpec:
        return cls(
            event=data["event"],
            duration=data["duration"],
            status=data.get("status"),
            delay=data.get("delay", 0.0),
            once=data.get("once", True),
            after=data.get("after", 0.0),
        )


@dataclass
class TriggeredFault:
    """One trigger-armed injector carried by a schedule."""

    trigger: TriggerSpec
    injector: FaultInjector
    #: how many times the trigger has fired this run
    fired: int = 0


#: Observer of window openings: (spec_kind, start, stop).
WindowObserver = Callable[[str, float, float], None]


@dataclass
class _ArmedTrigger:
    fault: TriggeredFault
    horizon: float | None = None


class ProtocolEventHub:
    """Normalize protocol events and arm triggered faults against them.

    Construction subscribes to the service's VS event recorder
    (:meth:`repro.membership.service.TokenRingVS.add_vs_listener`);
    :meth:`attach_runtime` additionally subscribes to the VStoTO
    runtime's status-edge feed — without it, ``status_enter`` triggers
    never fire (there is no VStoTO layer to observe).
    """

    def __init__(self, service: TokenRingVS) -> None:
        self.service = service
        self.simulator = service.simulator
        self.events: list[ProtocolEvent] = []
        self._armed: list[_ArmedTrigger] = []
        self._listeners: list[Callable[[ProtocolEvent], None]] = []
        self._window_observers: list[WindowObserver] = []
        self._view_members: dict[ProcId, frozenset[ProcId] | None] = {
            p: (service.initial_view.set if p in service.initial_view.set else None)
            for p in service.processors
        }
        service.add_vs_listener(self._on_vs_event)

    def attach_runtime(self, runtime: VStoTORuntime) -> None:
        runtime.add_status_listener(self._on_status_edge)

    # ------------------------------------------------------------------
    def add_listener(self, fn: Callable[[ProtocolEvent], None]) -> None:
        self._listeners.append(fn)

    def add_window_observer(self, fn: WindowObserver) -> None:
        """Called with (spec_kind, start, stop) when a triggered window
        opens — the coverage tracker and lifecycle tracer ride on this."""
        self._window_observers.append(fn)

    def arm(self, fault: TriggeredFault, horizon: float | None = None) -> None:
        """Watch for ``fault.trigger`` and open its injector's window on
        a match; windows are clamped to ``horizon`` when given."""
        self._armed.append(_ArmedTrigger(fault, horizon))

    # ------------------------------------------------------------------
    # Feeds
    # ------------------------------------------------------------------
    def _on_vs_event(self, time: float, name: str, args: tuple) -> None:
        if name != "newview":
            return
        view, p = args
        self._dispatch(ProtocolEvent(time, "newview", p, str(view.id)))
        previous = self._view_members.get(p)
        if previous != view.set:
            self._view_members[p] = view.set
            self._dispatch(ProtocolEvent(time, "view_change", p, str(view.id)))

    def _on_status_edge(
        self, time: float, p: ProcId, old: str, new: str
    ) -> None:
        self._dispatch(ProtocolEvent(time, "status_enter", p, new))

    # ------------------------------------------------------------------
    def _dispatch(self, event: ProtocolEvent) -> None:
        self.events.append(event)
        for fn in self._listeners:
            fn(event)
        for armed in self._armed:
            fault = armed.fault
            if fault.trigger.once and fault.fired:
                continue
            if not fault.trigger.matches(event):
                continue
            self._open_window(fault, armed.horizon, event)

    def _open_window(
        self, fault: TriggeredFault, horizon: float | None, event: ProtocolEvent
    ) -> None:
        spec = fault.trigger
        start = event.time + spec.delay
        stop = start + spec.duration
        if horizon is not None:
            if start >= horizon:
                return  # past stabilisation: the nemesis is done
            stop = min(stop, horizon)
        if stop <= start:
            return
        fault.fired += 1
        injector = fault.injector
        self.simulator.schedule_at(start, lambda: injector.start(stop))
        self.simulator.schedule_at(stop, injector.stop)
        for fn in self._window_observers:
            fn(injector.SPEC_KIND, start, stop)
