"""The live-cluster driver: ``python -m repro.rt.cluster``.

Spawns one ``repro.rt.node`` OS process per ring member on localhost,
drives client load over the control plane, optionally injects a
partition (firewall windows from :mod:`repro.rt.faults`), heals it,
optionally SIGKILLs a node, then collects every node's event log and
verifies the merged capture with the VS monitor and TO-machine trace
membership (:mod:`repro.rt.trace`).

The acceptance run::

    python -m repro.rt.cluster --nodes 3 --sends 50 --partition

sends half the values into the initial whole-group view, splits the
ring into a majority and a minority component, keeps sending into both
sides (the majority keeps a primary quorum, so its deliveries continue;
the minority's wait), heals, and waits until every value is delivered
at every node.  Exit status is 0 iff the captured trace is violation-
free *and* delivery completed everywhere.
"""

from __future__ import annotations

import argparse
import asyncio
import functools
import json
import os
import random
import signal
import socket
import subprocess
import sys
import tempfile
import time
from pathlib import Path
from collections.abc import Sequence
from typing import Any

from repro.obs.export import write_chrome_trace
from repro.obs.live.report import build_report
from repro.obs.live.snapshot import ClusterTimeline, MetricsSnapshot
from repro.obs.live.stitch import stitch_log_dir, stitched_jsonl
from repro.rt.faults import (
    FirewallWindow,
    single_partition_window,
    windows_from_scenario,
)
from repro.rt.framing import encode_frame, encode_message
from repro.rt.node import initial_view_for, resolve_flush_after
from repro.rt.trace import VerifyReport, load_event_logs, verify_events
from repro.rt.transport import DRIVER_ID, Ctl, Hello
from repro.rt.wire import WireReader, WireWriter, make_wire
from repro.shard.live import (
    delivered_order_from_logs,
    encode_live_op,
    verify_shard_logs,
)
from repro.shard.router import ShardRouter
from repro.shard.routing import HashRing, group_names, point_for_key
from repro.shard.verify import ShardOp, check_cross_shard_order


def free_port() -> int:
    """Ask the OS for an ephemeral localhost port."""
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return int(sock.getsockname()[1])


class NodeClient:
    """One control-plane connection from the driver to a node.

    ``wire`` picks the codec the driver speaks (replies are decoded by
    header auto-detection regardless); ``flush_after`` batches
    fire-and-forget sends — with a 0-second window, back-to-back client
    sends in one event-loop turn (an overloaded open-loop generator)
    coalesce into one frame.
    """

    def __init__(
        self,
        proc_id: str,
        host: str,
        port: int,
        wire: str = "json",
        flush_after: float | None = None,
    ) -> None:
        self.proc_id = proc_id
        self.host = host
        self.port = port
        self.wire_name = wire
        self._sender = WireWriter(make_wire(wire), flush_after=flush_after)
        self._reader: asyncio.StreamReader | None = None
        self._writer: asyncio.StreamWriter | None = None
        self._replies: asyncio.Queue[Ctl] = asyncio.Queue()
        self._read_task: asyncio.Task[None] | None = None
        # One request in flight at a time: the metrics poller shares
        # this connection with the episode script, and the node pairs
        # each reply with the most recent request — without the lock a
        # concurrent ``stats`` could steal a ``block`` acknowledgement.
        self._request_lock = asyncio.Lock()

    async def connect(self, timeout: float = 10.0) -> None:
        """Connect with retries (the node may still be booting)."""
        deadline = asyncio.get_running_loop().time() + timeout
        last: OSError | None = None
        while asyncio.get_running_loop().time() < deadline:
            try:
                self._reader, self._writer = await asyncio.open_connection(
                    self.host, self.port
                )
                break
            except OSError as exc:
                last = exc
                await asyncio.sleep(0.05)
        else:
            raise ConnectionError(
                f"cannot reach node {self.proc_id} at {self.host}:{self.port}: {last}"
            )
        loop = asyncio.get_running_loop()
        self._sender.set_schedule(
            lambda delay, callback: loop.call_later(delay, callback)
        )
        self._writer.write(
            encode_frame(
                encode_message(Hello(src=DRIVER_ID, wire=self.wire_name))
            )
        )
        self._sender.attach(self._writer.write)
        self._read_task = loop.create_task(self._read_loop())

    async def _read_loop(self) -> None:
        assert self._reader is not None
        reader = WireReader()
        try:
            while True:
                data = await self._reader.read(65536)
                if not data:
                    break
                for message in reader.feed(data):
                    if isinstance(message, Ctl):
                        self._replies.put_nowait(message)
        except asyncio.CancelledError:
            # close() cancels this task and awaits it; swallowing the
            # cancellation here would make that await hang forever.
            raise
        except OSError:
            pass

    def send_nowait(self, ctl: Ctl) -> None:
        """Fire-and-forget a control record (client traffic)."""
        assert self._writer is not None
        self._sender.send(ctl)

    async def request(self, ctl: Ctl, timeout: float = 15.0) -> Ctl:
        """Send a control record and await the next reply."""
        async with self._request_lock:
            self._sender.send_now(ctl)
            return await asyncio.wait_for(self._replies.get(), timeout)

    @property
    def wire_stats(self) -> dict[str, Any]:
        """What this control connection put on the wire."""
        return self._sender.stats.to_dict()

    async def close(self) -> None:
        if self._read_task is not None:
            self._read_task.cancel()
        self._sender.detach()
        if self._writer is not None:
            self._writer.close()


class LiveCluster:
    """Spawn, drive, perturb and verify a localhost ring."""

    def __init__(
        self,
        nodes: int,
        log_dir: str | Path,
        delta: float = 0.05,
        send_interval: float = 0.02,
        metrics_interval: float = 0.25,
        wire: str = "json",
        shards: int = 1,
    ) -> None:
        if nodes < 2:
            raise ValueError("need at least 2 nodes")
        self.shards = max(1, shards)
        self.processors: tuple[str, ...] = tuple(
            f"p{i + 1}" for i in range(nodes)
        )
        self.log_dir = Path(log_dir)
        self.log_dir.mkdir(parents=True, exist_ok=True)
        self.delta = delta
        self.send_interval = send_interval
        self.metrics_interval = metrics_interval
        self.wire = wire
        self.ports: dict[str, int] = {p: free_port() for p in self.processors}
        self.procs: dict[str, subprocess.Popen[bytes]] = {}
        self.clients: dict[str, NodeClient] = {}
        self.killed: set[str] = set()
        self.timeline: list[dict[str, Any]] = []
        #: every metrics snapshot frame seen on any stats reply
        self.metrics = ClusterTimeline()
        self._metrics_task: asyncio.Task[None] | None = None

    # ------------------------------------------------------------------
    def _mark(self, what: str, **extra: Any) -> None:
        self.timeline.append({"t": time.time(), "event": what, **extra})

    def peer_spec(self) -> str:
        return ",".join(
            f"{p}=127.0.0.1:{self.ports[p]}" for p in self.processors
        )

    async def spawn(self) -> None:
        """Launch every node process and connect control channels."""
        src_root = str(Path(__file__).resolve().parents[2])
        env = dict(os.environ)
        env["PYTHONPATH"] = src_root + os.pathsep + env.get("PYTHONPATH", "")
        for p in self.processors:
            # Spawn-time only (one short create per node, before any
            # traffic flows), so blocking the loop here is harmless.
            out = open(  # repro-lint: ignore[ASYNC003] -- spawn-time create, loop idle
                self.log_dir / f"{p}.stdout.log", "wb"
            )
            popen = subprocess.Popen(
                [
                    sys.executable,
                    "-m",
                    "repro.rt.node",
                    "--id",
                    p,
                    "--peers",
                    self.peer_spec(),
                    "--log-dir",
                    str(self.log_dir),
                    "--delta",
                    str(self.delta),
                    "--wire",
                    self.wire,
                ]
                + (["--shards", str(self.shards)] if self.shards > 1 else []),
                stdout=out,
                stderr=subprocess.STDOUT,
                env=env,
            )
            # Popen dup'd the descriptor into the child; keeping ours
            # open leaks one fd per node per run.
            out.close()
            self.procs[p] = popen
        self._mark("spawned", nodes=len(self.processors))
        # Record the timing parameters the nodes were launched with, so
        # the post-run report instantiates the Section 8 bounds with
        # the same δ/π/μ (default_ring_config's scaling).
        self._mark(
            "config",
            delta=self.delta,
            pi=4 * self.delta,
            mu=20 * self.delta,
            nodes=len(self.processors),
            wire=self.wire,
        )
        for p in self.processors:
            client = NodeClient(
                p,
                "127.0.0.1",
                self.ports[p],
                wire=self.wire,
                flush_after=resolve_flush_after(self.wire, -1.0),
            )
            await client.connect()
            self.clients[p] = client

    async def go(self) -> None:
        """Start every ring member; followers first, leader last, so the
        leader's first token finds armed watchdogs everywhere."""
        leader = min(self.processors)
        order = [p for p in self.processors if p != leader] + [leader]
        for p in order:
            await self.clients[p].request(Ctl("go"))
        self._mark("started")
        # One launch spacing so the first circulation completes.
        await asyncio.sleep(8 * self.delta)

    # ------------------------------------------------------------------
    # Metrics streaming
    # ------------------------------------------------------------------
    def _harvest(self, reply: Ctl) -> None:
        """Lift the snapshot frame off any stats reply into the
        cluster timeline (every stats consumer streams for free)."""
        if not isinstance(reply.data, dict):
            return
        frame = reply.data.get("snapshot")
        if isinstance(frame, dict):
            try:
                self.metrics.add(MetricsSnapshot.from_dict(frame))
            except (KeyError, TypeError, ValueError):
                pass  # malformed frame: drop, never fail the run

    async def _poll_metrics_loop(self) -> None:
        while True:
            for p in self.alive():
                try:
                    reply = await self.clients[p].request(
                        Ctl("stats"), timeout=5.0
                    )
                    self._harvest(reply)
                except (asyncio.TimeoutError, OSError, AssertionError):
                    continue  # node mid-kill or napping; next round
            await asyncio.sleep(self.metrics_interval)

    def start_metrics_stream(self) -> None:
        """Begin periodic stats polling; every reply's snapshot frame
        lands in :attr:`metrics`."""
        if self._metrics_task is None:
            self._metrics_task = asyncio.get_running_loop().create_task(
                self._poll_metrics_loop()
            )
            self._mark("metrics_stream", interval=self.metrics_interval)

    async def stop_metrics_stream(self) -> None:
        # Take the handle before suspending: clearing the slot first
        # makes concurrent stop calls idempotent instead of racing to
        # cancel/await the same task after the interleaved await.
        task = self._metrics_task
        if task is None:
            return
        self._metrics_task = None
        task.cancel()
        try:
            await task
        except asyncio.CancelledError:
            pass

    # ------------------------------------------------------------------
    async def send_traffic(
        self, values: list[str], targets: tuple[str, ...] | None = None
    ) -> None:
        """Round-robin client sends over the control plane."""
        targets = targets if targets is not None else self.alive()
        for index, value in enumerate(values):
            target = targets[index % len(targets)]
            self.clients[target].send_nowait(Ctl("send", value))
            await asyncio.sleep(self.send_interval)

    async def send_poisson(
        self,
        values: list[str],
        rate: float | None = None,
        seed: int = 0,
        targets: tuple[str, ...] | None = None,
    ) -> None:
        """Open-loop Poisson client load.

        Arrival times are drawn up front from a seeded exponential
        process at ``rate`` (default ``1/send_interval``, matching the
        round-robin generator's mean throughput) and honoured against
        the wall clock — a send that the cluster absorbs slowly does
        NOT delay later arrivals, so measured latencies are free of
        coordinated omission.  Origins rotate round-robin as before.
        """
        if rate is None:
            rate = 1.0 / self.send_interval
        if rate <= 0:
            raise ValueError(f"rate must be positive: {rate}")
        rng = random.Random(seed)
        arrivals: list[float] = []
        t = 0.0
        for _ in values:
            t += rng.expovariate(rate)
            arrivals.append(t)
        targets = targets if targets is not None else self.alive()
        loop = asyncio.get_running_loop()
        origin = loop.time()
        self._mark("load", arrivals="poisson", rate=rate, sends=len(values))
        for index, value in enumerate(values):
            delay = origin + arrivals[index] - loop.time()
            if delay > 0:
                await asyncio.sleep(delay)
            target = targets[index % len(targets)]
            self.clients[target].send_nowait(Ctl("send", value))

    def alive(self) -> tuple[str, ...]:
        return tuple(p for p in self.processors if p not in self.killed)

    # ------------------------------------------------------------------
    async def apply_partition(self, window: FirewallWindow) -> None:
        """Install the firewall on every side of the split."""
        for p in self.alive():
            blocked = list(window.blocked_for(p))
            await self.clients[p].request(Ctl("block", blocked))
        self._mark("partition", groups=[list(g) for g in window.groups])

    async def heal(self) -> None:
        for p in self.alive():
            await self.clients[p].request(Ctl("unblock"))
        self._mark("heal")

    async def kill(self, p: str) -> None:
        """SIGKILL a node (crash without cleanup; its log is a prefix)."""
        self.procs[p].send_signal(signal.SIGKILL)
        # Reap off the loop: wait() blocks until the kernel delivers
        # the exit status, and the other nodes' traffic keeps flowing.
        await asyncio.get_running_loop().run_in_executor(
            None, self.procs[p].wait
        )
        self.killed.add(p)
        await self.clients[p].close()
        self._mark("kill", node=p)

    # ------------------------------------------------------------------
    async def await_delivery(
        self, expected: int, timeout: float = 30.0
    ) -> bool:
        """Poll node stats until every survivor delivered ``expected``
        values (or the timeout passes)."""
        deadline = asyncio.get_running_loop().time() + timeout
        while asyncio.get_running_loop().time() < deadline:
            counts: list[int] = []
            for p in self.alive():
                try:
                    reply = await self.clients[p].request(Ctl("stats"), timeout=5.0)
                    self._harvest(reply)
                    counts.append(int(reply.data["delivered"]))
                except (asyncio.TimeoutError, KeyError, TypeError):
                    counts.append(-1)
            if counts and all(c >= expected for c in counts):
                self._mark("delivery_complete", counts=counts)
                return True
            await asyncio.sleep(5 * self.delta)
        self._mark("delivery_timeout")
        return False

    async def stop(self) -> None:
        """Graceful shutdown: flush logs, reap processes."""
        await self.stop_metrics_stream()
        for p in self.alive():
            # Final counters: one last snapshot frame per survivor, so
            # even a run with streaming off gets a complete timeline.
            try:
                reply = await self.clients[p].request(Ctl("stats"), timeout=5.0)
                self._harvest(reply)
            except asyncio.TimeoutError:
                pass
            try:
                await self.clients[p].request(Ctl("stop"), timeout=5.0)
            except asyncio.TimeoutError:
                pass
            await self.clients[p].close()
        loop = asyncio.get_running_loop()
        for p, proc in self.procs.items():
            if p in self.killed:
                continue
            try:
                # Reap in an executor: a straggler that takes the full
                # 5s would otherwise freeze every other connection's
                # teardown (and the metrics flush) with it.
                await loop.run_in_executor(
                    None, functools.partial(proc.wait, timeout=5.0)
                )
            except subprocess.TimeoutExpired:
                proc.kill()
                await loop.run_in_executor(None, proc.wait)
        self._mark("stopped")

    # ------------------------------------------------------------------
    async def collect_wire_stats(self) -> dict[str, Any]:
        """Aggregate every survivor's wire + token-batching counters
        (one stats round-trip per node) plus the driver connections'
        own writer stats — the E25 bytes-on-wire accounting."""
        totals: dict[str, dict[str, float]] = {}
        token = {
            "entries_appended": 0,
            "append_batches": 0,
            "entries_sent": 0,
            "forwards": 0,
        }

        def absorb(direction: str, codec: str, stats: dict[str, Any]) -> None:
            bucket = totals.setdefault(
                f"{direction}/{codec}",
                {"frames": 0.0, "entries": 0.0, "bytes_on_wire": 0.0},
            )
            for key in bucket:
                bucket[key] += float(stats.get(key, 0))

        for p in self.alive():
            try:
                reply = await self.clients[p].request(Ctl("stats"), timeout=5.0)
            except (asyncio.TimeoutError, OSError, AssertionError):
                continue
            if not isinstance(reply.data, dict):
                continue
            wire = reply.data.get("transport", {}).get("wire", {})
            for codec, stats in wire.get("tx", {}).items():
                absorb("tx", codec, stats)
            for codec, stats in wire.get("rx", {}).items():
                absorb("rx", codec, stats)
            for key in token:
                token[key] += int(reply.data.get("token", {}).get(key, 0))
        driver = {"frames": 0.0, "entries": 0.0, "bytes_on_wire": 0.0}
        for client in self.clients.values():
            stats = client.wire_stats
            for key in driver:
                driver[key] += float(stats.get(key, 0))
        return {
            "codec": self.wire,
            "nodes": {k: totals[k] for k in sorted(totals)},
            "driver_tx": driver,
            "token": token,
        }

    # ------------------------------------------------------------------
    def verify(self) -> VerifyReport:
        paths = sorted(self.log_dir.glob("*.events.jsonl"))
        events = load_event_logs(paths)
        return verify_events(
            events,
            self.processors,
            initial_view_for(self.processors),
            expect_at=self.alive(),
        )


async def replay_scenario_windows(
    cluster: LiveCluster, windows: Sequence[FirewallWindow]
) -> None:
    """Apply a scenario's partition episodes at their (scaled) offsets.

    Episodes run sequentially — the live firewall holds one blocked set
    per node, so each window is applied, held to its stop offset, and
    healed before the next; offsets are relative to replay start, and a
    window whose start has already passed applies immediately.
    """
    loop = asyncio.get_running_loop()
    origin = loop.time()
    for window in windows:
        now = loop.time() - origin
        if window.start > now:
            await asyncio.sleep(window.start - now)
        await cluster.apply_partition(window)
        now = loop.time() - origin
        if window.stop > now:
            await asyncio.sleep(window.stop - now)
        await cluster.heal()


def scenario_windows_for(
    scenario: str | Path, processors: Sequence[str], time_scale: float
) -> tuple[FirewallWindow, ...]:
    """Load a scenario file and map its partition windows onto a live
    processor set (see :func:`repro.rt.faults.windows_from_scenario`)."""
    from repro.scenarios import ScenarioSpec

    spec = ScenarioSpec.load(scenario)
    return windows_from_scenario(
        spec.build_schedule(),
        spec.proc_ids,
        tuple(processors),
        time_scale=time_scale,
    )


async def run_cluster(
    nodes: int,
    sends: int,
    partition: bool = False,
    kill: bool = False,
    log_dir: str | Path | None = None,
    delta: float = 0.05,
    send_interval: float = 0.02,
    partition_hold: float | None = None,
    settle: float | None = None,
    scenario: str | Path | None = None,
    time_scale: float = 0.05,
    arrivals: str = "poisson",
    seed: int = 0,
    metrics_interval: float = 0.25,
    wire: str = "json",
) -> dict[str, Any]:
    """One full scripted episode; returns the verification report dict.

    ``arrivals`` selects the client load shape: ``"poisson"`` (default;
    open-loop, seeded, mean rate ``1/send_interval``) or
    ``"round-robin"`` (the closed-loop fixed-interval generator).
    Metrics snapshots are streamed every ``metrics_interval`` seconds
    and the run's observability artifacts — ``metrics.jsonl``,
    ``cluster.timeline.json``, ``cluster.spans.jsonl`` (stitched spans)
    and ``cluster.trace.json`` (whole-cluster Perfetto) — are written
    into the log directory.
    """
    if arrivals not in ("poisson", "round-robin"):
        raise ValueError(f"unknown arrival process {arrivals!r}")
    owns_dir = log_dir is None
    if owns_dir:
        log_dir = tempfile.mkdtemp(prefix="repro-rt-")
    cluster = LiveCluster(
        nodes,
        log_dir,
        delta=delta,
        send_interval=send_interval,
        metrics_interval=metrics_interval,
        wire=wire,
    )
    scenario_windows: tuple[FirewallWindow, ...] = ()
    if scenario is not None:
        scenario_windows = scenario_windows_for(
            scenario, cluster.processors, time_scale
        )
    hold = partition_hold if partition_hold is not None else 50 * delta
    settle_time = settle if settle is not None else 40 * delta

    async def send_load(
        chunk: list[str], targets: tuple[str, ...] | None = None
    ) -> None:
        if arrivals == "poisson":
            await cluster.send_poisson(chunk, seed=seed, targets=targets)
        else:
            await cluster.send_traffic(chunk, targets=targets)

    started = time.time()
    await cluster.spawn()
    try:
        await cluster.go()
        cluster.start_metrics_stream()
        values = [f"m{i}" for i in range(sends)]
        if scenario_windows:
            # Replay the sim scenario's partition timeline: first half
            # of the traffic before the episodes, the rest during them.
            half = len(values) // 2
            await send_load(values[:half])
            replay = asyncio.get_running_loop().create_task(
                replay_scenario_windows(cluster, scenario_windows)
            )
            await send_load(values[half:])
            await replay
            cluster._mark(
                "scenario_replayed",
                scenario=str(scenario),
                windows=len(scenario_windows),
            )
        elif partition or kill:
            half = len(values) // 2
            await send_load(values[:half])
            if kill:
                await cluster.kill(max(cluster.processors))
            window: FirewallWindow | None = None
            if partition:
                window = single_partition_window(cluster.alive(), 0.0, hold)
                await cluster.apply_partition(window)
            # Traffic continues into both sides of the split; minority
            # sends are delivered only after the heal reconciles state.
            await send_load(values[half:])
            if partition:
                await asyncio.sleep(hold)
                await cluster.heal()
        else:
            await send_load(values)
        await asyncio.sleep(settle_time)
        # A SIGKILLed node may take accepted-but-unpropagated values with
        # it, so completeness cannot be awaited to the full count there.
        poll_timeout = max(10.0, 200 * delta) if kill else max(30.0, 600 * delta)
        complete = await cluster.await_delivery(sends, timeout=poll_timeout)
        wire_stats = await cluster.collect_wire_stats()
    finally:
        await cluster.stop()
    report = cluster.verify()
    wall = time.time() - started
    obs_summary = write_obs_artifacts(cluster)
    out: dict[str, Any] = report.to_dict()
    out.update(
        {
            "experiment": "live-cluster",
            "nodes": nodes,
            "requested_sends": sends,
            "partition": partition,
            "kill": kill,
            "scenario": None if scenario is None else str(scenario),
            "delta": delta,
            "arrivals": arrivals,
            "wire": wire_stats,
            "polled_complete": complete,
            "wall_seconds": wall,
            "log_dir": str(log_dir),
            "timeline": cluster.timeline,
            "obs": obs_summary,
        }
    )
    return out


class _LiveShardBackend:
    """Router backend for one group: fire a control-plane send at the
    next alive node (round-robin shared across groups)."""

    def __init__(self, group: str, load: LiveShardLoad) -> None:
        self._group = group
        self._load = load

    @property
    def group(self) -> str:
        return self._group

    def submit(self, key: str, value: Any) -> None:
        self._load.dispatch(key, self._group, value)


class LiveShardLoad:
    """Driver-side sharded client load.

    The same :class:`~repro.shard.router.ShardRouter` that fronts the
    simulated service fronts the live cluster here: keys route through
    the consistent-hash ring, each group holds a bounded in-flight
    window, and completions are inferred from polled per-group
    delivered counts (the most-advanced node's count for a group is the
    number of operations that group has totally ordered and delivered).
    """

    def __init__(
        self, cluster: LiveCluster, ring: HashRing, window: int | None = 64
    ) -> None:
        self.cluster = cluster
        self.ring = ring
        self.router = ShardRouter(ring, window=window)
        self.submitted: dict[str, list[ShardOp]] = {}
        self.routed: dict[str, int] = {g: 0 for g in ring.groups}
        self._completed: dict[str, int] = {g: 0 for g in ring.groups}
        self._poll_task: asyncio.Task[None] | None = None
        for group in ring.groups:
            self.router.add_backend(group, _LiveShardBackend(group, self))

    # -- router-facing --------------------------------------------------
    def dispatch(self, key: str, group: str, value: Any) -> None:
        """Send one routed operation to the key's session node.  Every
        operation on a key enters the cluster at one fixed node, so
        TO's per-sender FIFO makes the key's delivered order equal its
        submission order even across partitions (the cross-shard
        checker's premise)."""
        targets = self.cluster.alive()
        target = targets[point_for_key(key) % len(targets)]
        self.cluster.clients[target].send_nowait(
            Ctl("send", {"g": group, "v": value})
        )
        self.routed[group] += 1

    # -- client-facing --------------------------------------------------
    def submit(self, key: str, op_seq: int, payload: str) -> str:
        """Route one operation; returns the owning group.  A full
        window queues it in the router (dispatched on completion)."""
        value = encode_live_op(key, op_seq, payload)
        self.submitted.setdefault(key, []).append((key, op_seq, payload))
        return self.router.submit(key, value)

    def expected_per_group(self) -> dict[str, int]:
        """How many operations each group owns (the completeness bar)."""
        counts = {g: 0 for g in self.ring.groups}
        for key, ops in self.submitted.items():
            counts[self.ring.owner_of(key)] += len(ops)
        return counts

    def pending_total(self) -> int:
        return sum(self.router.pending(g) for g in self.ring.groups)

    # -- completion feedback --------------------------------------------
    def absorb_stats(self, data: Any) -> None:
        """Feed one node's stats reply into the completion loop."""
        groups = data.get("groups") if isinstance(data, dict) else None
        if not isinstance(groups, dict):
            return
        for group, gstats in groups.items():
            if group not in self._completed or not isinstance(gstats, dict):
                continue
            delivered = int(gstats.get("delivered", 0))
            if delivered > self._completed[group]:
                free = min(
                    delivered - self._completed[group],
                    self.router.inflight(group),
                )
                if free > 0:
                    self.router.complete(group, free)
                self._completed[group] = delivered

    async def _poll_loop(self, interval: float) -> None:
        while True:
            for p in self.cluster.alive():
                try:
                    reply = await self.cluster.clients[p].request(
                        Ctl("stats"), timeout=5.0
                    )
                    self.cluster._harvest(reply)
                    self.absorb_stats(reply.data)
                except (asyncio.TimeoutError, OSError, AssertionError):
                    continue
            await asyncio.sleep(interval)

    def start_completion_poller(self, interval: float) -> None:
        if self._poll_task is None:
            self._poll_task = asyncio.get_running_loop().create_task(
                self._poll_loop(interval)
            )

    async def stop_completion_poller(self) -> None:
        task = self._poll_task
        if task is None:
            return
        self._poll_task = None
        task.cancel()
        try:
            await task
        except asyncio.CancelledError:
            pass

    async def drain(self, timeout: float, interval: float) -> bool:
        """Wait until no request is in flight or queued anywhere."""
        deadline = asyncio.get_running_loop().time() + timeout
        while asyncio.get_running_loop().time() < deadline:
            if self.pending_total() == 0:
                return True
            await asyncio.sleep(interval)
        return self.pending_total() == 0


async def await_sharded_delivery(
    cluster: LiveCluster, load: LiveShardLoad, timeout: float
) -> bool:
    """Poll until every alive node delivered every group's expected
    operation count (per-group completeness)."""
    expected = load.expected_per_group()
    deadline = asyncio.get_running_loop().time() + timeout
    while asyncio.get_running_loop().time() < deadline:
        complete = True
        for p in cluster.alive():
            try:
                reply = await cluster.clients[p].request(Ctl("stats"), timeout=5.0)
                cluster._harvest(reply)
                load.absorb_stats(reply.data)
                groups = (
                    reply.data.get("groups", {})
                    if isinstance(reply.data, dict)
                    else {}
                )
                for g, want in expected.items():
                    got = int(groups.get(g, {}).get("delivered", 0))
                    if got < want:
                        complete = False
            except (asyncio.TimeoutError, KeyError, TypeError, OSError):
                complete = False
        if complete:
            cluster._mark("delivery_complete", per_group=expected)
            return True
        await asyncio.sleep(5 * cluster.delta)
    cluster._mark("delivery_timeout")
    return False


def verify_sharded(
    log_dir: str | Path,
    processors: Sequence[str],
    groups: Sequence[str],
    submitted: dict[str, list[ShardOp]],
    ring: HashRing,
    expect_at: Sequence[str],
) -> dict[str, Any]:
    """Per-group live verification plus the cross-shard invariant.

    Each group's event logs are a complete single-group capture, so the
    standard live checkers run once per group; the groups' delivered
    orders then feed :func:`~repro.shard.verify.check_cross_shard_order`.
    """
    per_group: dict[str, VerifyReport] = {}
    orders: dict[str, list[ShardOp]] = {}
    for group in groups:
        per_group[group] = verify_shard_logs(
            log_dir, group, processors, expect_at=expect_at
        )
        orders[group] = delivered_order_from_logs(log_dir, group)
    cross = check_cross_shard_order(submitted, orders, ring)
    ok = all(r.ok for r in per_group.values()) and cross.ok
    return {
        "ok": ok,
        "groups": {g: per_group[g].to_dict() for g in groups},
        "cross_shard": cross.to_dict(),
        "deliveries": sum(r.deliveries for r in per_group.values()),
        "sends": sum(r.sends for r in per_group.values()),
        "violations": [
            f"{g}: {v}" for g in groups for v in per_group[g].violations
        ],
        "delivered_complete": all(
            r.delivered_complete for r in per_group.values()
        ),
    }


async def run_sharded_cluster(
    nodes: int,
    shards: int,
    sends: int,
    partition: bool = False,
    log_dir: str | Path | None = None,
    delta: float = 0.05,
    send_interval: float = 0.02,
    window: int | None = 64,
    seed: int = 0,
    partition_hold: float | None = None,
    settle: float | None = None,
    metrics_interval: float = 0.25,
    wire: str = "json",
) -> dict[str, Any]:
    """One sharded live episode: ``nodes`` processes each hosting
    ``shards`` group runtimes, driver-side consistent-hash routing with
    per-group windows, optional mid-run partition, then per-group
    verification and the cross-shard order check."""
    owns_dir = log_dir is None
    if owns_dir:
        log_dir = tempfile.mkdtemp(prefix="repro-rt-shard-")
    cluster = LiveCluster(
        nodes,
        log_dir,
        delta=delta,
        send_interval=send_interval,
        metrics_interval=metrics_interval,
        wire=wire,
        shards=shards,
    )
    names = group_names(shards)
    ring = HashRing(names, seed=seed)
    load = LiveShardLoad(cluster, ring, window=window)
    hold = partition_hold if partition_hold is not None else 50 * delta
    settle_time = settle if settle is not None else 40 * delta
    keys = [f"k{i}" for i in range(max(4, 4 * shards))]

    async def send_ops(indices: Sequence[int]) -> None:
        for i in indices:
            load.submit(keys[i % len(keys)], i, f"v{i}")
            await asyncio.sleep(send_interval)

    started = time.time()
    await cluster.spawn()
    try:
        await cluster.go()
        load.start_completion_poller(max(0.05, 5 * delta))
        indices = list(range(sends))
        if partition:
            half = len(indices) // 2
            await send_ops(indices[:half])
            window_spec = single_partition_window(cluster.alive(), 0.0, hold)
            await cluster.apply_partition(window_spec)
            await send_ops(indices[half:])
            await asyncio.sleep(hold)
            await cluster.heal()
        else:
            await send_ops(indices)
        drained = await load.drain(
            timeout=max(30.0, 600 * delta), interval=5 * delta
        )
        await asyncio.sleep(settle_time)
        complete = await await_sharded_delivery(
            cluster, load, timeout=max(30.0, 600 * delta)
        )
        wire_stats = await cluster.collect_wire_stats()
    finally:
        await load.stop_completion_poller()
        await cluster.stop()
    wall = time.time() - started
    report = verify_sharded(
        cluster.log_dir,
        cluster.processors,
        names,
        load.submitted,
        ring,
        expect_at=cluster.alive(),
    )
    # Sharded nodes run without lifecycle tracing (spans would alias
    # across groups), so only the timeline and metrics stream persist.
    (cluster.log_dir / "cluster.timeline.json").write_text(
        json.dumps(cluster.timeline, indent=2), encoding="utf-8"
    )
    snapshots = cluster.metrics.write_jsonl(cluster.log_dir / "metrics.jsonl")
    report.update(
        {
            "experiment": "live-shard",
            "nodes": nodes,
            "shards": shards,
            "requested_sends": sends,
            "partition": partition,
            "delta": delta,
            "window": window,
            "seed": seed,
            "wire": wire_stats,
            "router": load.router.stats(),
            "drained": drained,
            "polled_complete": complete,
            "wall_seconds": wall,
            "throughput": (
                report["deliveries"] / wall if wall > 0 else 0.0
            ),
            "log_dir": str(log_dir),
            "timeline": cluster.timeline,
            "obs": {"metrics_snapshots": snapshots},
        }
    )
    return report


def write_obs_artifacts(cluster: LiveCluster) -> dict[str, Any]:
    """Persist the run's observability artifacts next to the event logs
    and return the summary dict embedded in the episode report.

    Written: ``cluster.timeline.json`` (driver marks, the stitcher's
    fault/config source), ``metrics.jsonl`` (every streamed snapshot),
    ``cluster.spans.jsonl`` (stitched distributed spans, canonical
    bytes) and ``cluster.trace.json`` (whole-cluster Perfetto/Chrome
    trace).  Failures here never mask a protocol verdict: the episode
    already verified; an unstitchable capture reports itself in the
    summary instead of raising.
    """
    log_dir = cluster.log_dir
    (log_dir / "cluster.timeline.json").write_text(
        json.dumps(cluster.timeline, indent=2), encoding="utf-8"
    )
    snapshots = cluster.metrics.write_jsonl(log_dir / "metrics.jsonl")
    summary: dict[str, Any] = {
        "metrics_snapshots": snapshots,
        "metrics_nodes": list(cluster.metrics.nodes()),
        "metrics_path": str(log_dir / "metrics.jsonl"),
    }
    try:
        run = stitch_log_dir(log_dir, processors=cluster.processors)
    except (OSError, ValueError, KeyError) as exc:
        summary["stitch_error"] = repr(exc)
        return summary
    (log_dir / "cluster.spans.jsonl").write_text(
        stitched_jsonl(run), encoding="utf-8"
    )
    write_chrome_trace(run.tracer, str(log_dir / "cluster.trace.json"))
    obs_report = build_report(log_dir)
    summary.update(
        {
            "spans_path": str(log_dir / "cluster.spans.jsonl"),
            "trace_path": str(log_dir / "cluster.trace.json"),
            "message_spans": len(run.tracer.message_spans),
            "cross_node_spans": run.cross_node_spans(),
            "view_spans": len(run.tracer.view_spans),
            "fault_windows": len(run.tracer.faults),
            "unmatched_events": run.tracer.unmatched_events,
            "safe_p99": obs_report.bounds_verdict.safe_p99,
            "delta_measured": obs_report.bounds_verdict.delta_measured,
            "slo_ok": all(v.ok for v in obs_report.slos),
            "bounds_ok": obs_report.bounds_verdict.ok,
        }
    )
    return summary


def build_arg_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.rt.cluster",
        description="Spawn, drive and verify a live localhost ring.",
    )
    parser.add_argument("--nodes", type=int, default=3)
    parser.add_argument("--sends", type=int, default=50)
    parser.add_argument(
        "--shards",
        type=int,
        default=1,
        help="VS group runtimes per node; >1 switches to the sharded "
        "episode (driver-side key routing, per-group verification)",
    )
    parser.add_argument(
        "--window",
        type=int,
        default=64,
        help="per-group in-flight window for the sharded episode "
        "(0 disables backpressure)",
    )
    parser.add_argument(
        "--partition",
        action="store_true",
        help="inject a majority/minority partition mid-run, then heal",
    )
    parser.add_argument(
        "--kill",
        action="store_true",
        help="SIGKILL the highest node mid-run (it stays down)",
    )
    parser.add_argument("--delta", type=float, default=0.05)
    parser.add_argument("--send-interval", type=float, default=0.02)
    parser.add_argument(
        "--wire",
        choices=("json", "binary"),
        default="json",
        help="wire codec for nodes and driver (default json; binary "
        "adds interning + frame batching)",
    )
    parser.add_argument(
        "--arrivals",
        choices=("poisson", "round-robin"),
        default="poisson",
        help="client load shape: open-loop Poisson (default) or the "
        "closed-loop fixed-interval round-robin",
    )
    parser.add_argument(
        "--seed",
        type=int,
        default=0,
        help="seed for the Poisson arrival process",
    )
    parser.add_argument(
        "--metrics-interval",
        type=float,
        default=0.25,
        help="seconds between metrics snapshot polls (streamed into "
        "metrics.jsonl)",
    )
    parser.add_argument(
        "--log-dir", default=None, help="keep logs here (default: temp dir)"
    )
    parser.add_argument("--json", default=None, help="write the report here")
    parser.add_argument(
        "--scenario",
        default=None,
        help="replay a sim scenario file's partition windows (node count "
        "is taken from the scenario)",
    )
    parser.add_argument(
        "--time-scale",
        type=float,
        default=0.05,
        help="wall seconds per scenario virtual time unit",
    )
    return parser


def sharded_main(args: argparse.Namespace) -> int:
    """Run and summarise a ``--shards N`` episode."""
    report = asyncio.run(
        run_sharded_cluster(
            nodes=args.nodes,
            shards=args.shards,
            sends=args.sends,
            partition=args.partition,
            log_dir=args.log_dir,
            delta=args.delta,
            send_interval=args.send_interval,
            window=args.window if args.window > 0 else None,
            seed=args.seed,
            metrics_interval=args.metrics_interval,
            wire=args.wire,
        )
    )
    if args.json:
        Path(args.json).write_text(
            json.dumps(report, indent=2), encoding="utf-8"
        )
    ok = report["ok"] and report["delivered_complete"]
    print(
        "live-shard: nodes={nodes} shards={shards} sends={sends} "
        "deliveries={deliveries} complete={complete} "
        "throughput={tput:.1f}/s wall={wall:.1f}s".format(
            nodes=report["nodes"],
            shards=report["shards"],
            sends=report["sends"],
            deliveries=report["deliveries"],
            complete=report["delivered_complete"],
            tput=report["throughput"],
            wall=report["wall_seconds"],
        )
    )
    for group, gr in report["groups"].items():
        print(
            "  {g}: sends={sends} deliveries={deliveries} "
            "views={views} ok={ok}".format(
                g=group,
                sends=gr["sends"],
                deliveries=gr["deliveries"],
                views=gr["views_installed"],
                ok=gr["ok"],
            )
        )
    cross = report["cross_shard"]
    print(
        "  cross-shard: ok={ok} keys={keys} ops={ops}".format(
            ok=cross["ok"], keys=cross["keys_checked"], ops=cross["ops_checked"]
        )
    )
    for violation in report["violations"]:
        print(f"  VS violation: {violation}")
    if not ok:
        print("  VERDICT: FAIL")
        return 1
    print("  VERDICT: OK (every shard conforms; cross-shard order holds)")
    return 0


def main(argv: list[str] | None = None) -> int:
    args = build_arg_parser().parse_args(argv)
    if args.shards > 1:
        return sharded_main(args)
    nodes = args.nodes
    if args.scenario is not None:
        from repro.scenarios import ScenarioSpec

        nodes = ScenarioSpec.load(args.scenario).processors
    report = asyncio.run(
        run_cluster(
            nodes=nodes,
            sends=args.sends,
            partition=args.partition,
            kill=args.kill,
            log_dir=args.log_dir,
            delta=args.delta,
            send_interval=args.send_interval,
            scenario=args.scenario,
            time_scale=args.time_scale,
            arrivals=args.arrivals,
            seed=args.seed,
            metrics_interval=args.metrics_interval,
            wire=args.wire,
        )
    )
    if args.json:
        Path(args.json).write_text(
            json.dumps(report, indent=2), encoding="utf-8"
        )
    ok = report["ok"] and (report["delivered_complete"] or args.kill)
    print(
        "live-cluster: nodes={nodes} sends={sends} deliveries={deliveries} "
        "views={views} violations={violations} to_ok={to_ok} "
        "complete={complete} throughput={tput:.1f}/s wall={wall:.1f}s".format(
            nodes=report["nodes"],
            sends=report["sends"],
            deliveries=report["deliveries"],
            views=report["views_installed"],
            violations=len(report["violations"]),
            to_ok=report["to_ok"],
            complete=report["delivered_complete"],
            tput=report["throughput"],
            wall=report["wall_seconds"],
        )
    )
    wire_stats = report.get("wire", {})
    if wire_stats:
        node_totals = wire_stats.get("nodes", {})
        total_bytes = sum(
            bucket.get("bytes_on_wire", 0.0)
            for key, bucket in node_totals.items()
            if key.startswith("tx/")
        )
        token = wire_stats.get("token", {})
        batches = token.get("append_batches", 0)
        appended = token.get("entries_appended", 0)
        print(
            "  wire: codec={codec} node_tx_bytes={total:.0f} "
            "token_entries/batch={epb:.2f}".format(
                codec=wire_stats.get("codec"),
                total=total_bytes,
                epb=(appended / batches) if batches else 0.0,
            )
        )
    obs = report.get("obs", {})
    if obs and "stitch_error" not in obs:
        print(
            "  obs: snapshots={snaps} cross_node_spans={cross} "
            "safe_p99={p99:.4f}s slo_ok={slo} bounds_ok={bounds}".format(
                snaps=obs.get("metrics_snapshots", 0),
                cross=obs.get("cross_node_spans", 0),
                p99=obs.get("safe_p99", 0.0),
                slo=obs.get("slo_ok"),
                bounds=obs.get("bounds_ok"),
            )
        )
    for violation in report["violations"]:
        print(f"  VS violation: {violation}")
    if not report["to_ok"]:
        print(f"  TO violation: {report['to_reason']}")
    if not ok:
        print("  VERDICT: FAIL")
        return 1
    print("  VERDICT: OK (captured trace conforms to VS and TO specs)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
