"""The live transport: the :class:`~repro.net.network.Network` surface
over persistent TCP streams.

One :class:`LiveNetwork` per node process.  It listens on the node's
own port, keeps one *outbound* stream per peer (reconnecting with
backoff whenever a connection drops), and dispatches inbound frames to
the registered protocol endpoint — the same
:meth:`~repro.net.network.NetworkNode.on_message` contract the
simulated network uses, so :class:`~repro.membership.ring.RingMember`
runs over it unmodified.

Identity handshake: the first frame on every connection is a
:class:`Hello` naming the sender, after which frames are protocol
messages attributed to that sender.  The cluster driver connects the
same way (as ``"driver"``) and speaks :class:`Ctl` records, which are
routed to the node's control handler instead of the ring.

Partition injection is *firewall-style*: :meth:`LiveNetwork.block`
drops frames to and from the named peers at this node while leaving
TCP connections alone — exactly a ``bad`` link pair in the paper's
failure model, driven from :mod:`repro.rt.faults` windows.  Loss is
accounted per direction in :attr:`LiveNetwork.counters` and in
``repro.obs`` metrics when a hub is attached.

Delivery semantics match the model's *fair lossy* channels: a frame
written while the peer is connected is delivered unless the connection
drops mid-flight; frames sent while disconnected or blocked are lost
(the ring's watchdogs and retransmissions are what tolerate exactly
this).
"""

from __future__ import annotations

import asyncio
from collections.abc import Awaitable, Callable, Iterable
from dataclasses import dataclass, field
from typing import Any

from repro.net.status import FailureOracle
from repro.rt.clock import LiveScheduler
from repro.rt.framing import (
    MAX_FRAME,
    FrameError,
    encode_frame,
    encode_message,
    register_wire_type,
)
from repro.rt.wire import (
    ReaderStats,
    WireReader,
    WireWriter,
    WriterStats,
    make_wire,
)

#: Reserved sender id for the cluster driver's control connections.
DRIVER_ID = "driver"

#: Counter keys maintained by every LiveNetwork.
COUNTER_KEYS = (
    "frames_sent",
    "frames_received",
    "bytes_sent",
    "bytes_received",
    "blocked_out",
    "blocked_in",
    "disconnected_drops",
    "connects",
    "connect_failures",
    "frame_errors",
)


@register_wire_type
@dataclass(frozen=True)
class Hello:
    """Connection handshake: who is speaking on this stream, and which
    codec they will frame after this record.  The Hello itself always
    rides as a legacy json frame so any peer can read it; ``wire`` is
    informational (receivers auto-detect per frame from the header) and
    defaults to json so old peers decode cleanly."""

    src: str
    wire: str = "json"


@register_wire_type
@dataclass(frozen=True)
class Ctl:
    """A control-plane record (driver <-> node).

    ``op`` names the operation; ``data`` is an op-specific payload
    (any codec-encodable value).
    """

    op: str
    data: Any = None


CtlHandler = Callable[[str, Ctl, Callable[[Ctl], None]], Awaitable[None]]


@dataclass
class _Peer:
    """Connection state for one remote processor."""

    host: str
    port: int
    writer: asyncio.StreamWriter | None = None
    task: asyncio.Task | None = field(default=None, repr=False)
    #: Codec + batching over the current outbound stream (bound by
    #: LiveNetwork.__init__, reattached on every reconnect).
    sender: WireWriter | None = field(default=None, repr=False)


class LiveNetwork:
    """All-pairs messaging for one live node.

    Parameters
    ----------
    proc_id:
        This node's processor id.
    peers:
        ``proc_id -> (host, port)`` for *every* processor including this
        one (its entry defines the listen address).
    scheduler:
        The node's :class:`~repro.rt.clock.LiveScheduler` (exposed as
        :attr:`simulator` for the protocol objects).
    on_ctl:
        Async handler for :class:`Ctl` frames ``(src, ctl, reply)``;
        ``reply`` writes a control record back on the inbound stream.
    max_frame:
        Frame ceiling for both directions.
    reconnect_delay:
        Initial outbound reconnect backoff (doubles up to 8x).
    wire:
        Codec for everything this node sends (``"json"`` or
        ``"binary"``); inbound frames are auto-detected per frame, so
        mixed-codec clusters interoperate.
    flush_after:
        Batching window in seconds for outbound protocol frames.
        ``None`` disables batching (every message is its own frame —
        with the json codec this is byte-identical to the legacy wire);
        ``0.0`` coalesces messages sent within the same event-loop turn
        without adding latency.
    flush_max_bytes:
        Flush the batch queue early once it holds this many payload
        bytes (clamped to half the frame ceiling).
    """

    def __init__(
        self,
        proc_id: str,
        peers: dict[str, tuple[str, int]],
        scheduler: LiveScheduler,
        on_ctl: CtlHandler | None = None,
        max_frame: int = MAX_FRAME,
        reconnect_delay: float = 0.05,
        wire: str = "json",
        flush_after: float | None = None,
        flush_max_bytes: int = 1 << 16,
    ) -> None:
        if proc_id not in peers:
            raise ValueError(f"own id {proc_id!r} missing from the peer map")
        self.proc_id = proc_id
        self.processors: tuple[str, ...] = tuple(sorted(peers))
        self.simulator = scheduler
        #: An all-good oracle: live failures are real (killed processes,
        #: firewalled links), not modelled, so protocol-side gates
        #: (``_alive`` checks, send gating) always pass.
        self.oracle = FailureOracle(self.processors)
        self._peers: dict[str, _Peer] = {
            p: _Peer(host, port) for p, (host, port) in peers.items() if p != proc_id
        }
        self._listen: tuple[str, int] = peers[proc_id]
        self._on_ctl = on_ctl
        self.max_frame = max_frame
        self._reconnect_delay = reconnect_delay
        self.wire_name = wire
        self.flush_after = flush_after
        self.flush_max_bytes = flush_max_bytes
        # One aggregate per codec name, shared by every connection's
        # writer/reader (all access is on the loop thread).
        self.tx_stats: dict[str, WriterStats] = {}
        self.rx_stats: dict[str, ReaderStats] = {}
        for peer in self._peers.values():
            peer.sender = self._make_sender(batching=True)
        self._node: Any = None
        self._server: asyncio.AbstractServer | None = None
        self._inbound: dict[str, asyncio.StreamWriter] = {}
        self._closing = False
        self.blocked: set[str] = set()
        self.counters: dict[str, int] = {key: 0 for key in COUNTER_KEYS}
        self.messages_sent = 0
        self.messages_delivered = 0
        # Observability slots (bound by attach_obs; `is None` guarded).
        self._m_sent = None
        self._m_received = None
        self._m_blocked = None
        self._m_connected = None
        self._m_wire: Any = None

    # ------------------------------------------------------------------
    # Wire plumbing
    # ------------------------------------------------------------------
    def _tx_stats_for(self, codec_name: str) -> WriterStats:
        stats = self.tx_stats.get(codec_name)
        if stats is None:
            stats = self.tx_stats[codec_name] = WriterStats()
        return stats

    def _make_sender(self, batching: bool) -> WireWriter:
        """A codec writer for one outbound direction.  ``batching``
        is off for reply writers: control replies must hit the wire
        before the requester's timeout, not a flush window later."""
        wire = make_wire(self.wire_name)
        return WireWriter(
            wire,
            max_frame=self.max_frame,
            flush_after=self.flush_after if batching else None,
            flush_max_bytes=self.flush_max_bytes,
            schedule=self.simulator.schedule,
            stats=self._tx_stats_for(wire.name),
        )

    def _frame_sink(self, writer: asyncio.StreamWriter) -> Callable[[bytes], None]:
        """The byte sink a WireWriter flushes into: write the frame and
        keep the transport counters truthful about the wire."""

        def sink(frame: bytes) -> None:
            try:
                writer.write(frame)
            except OSError:
                self.counters["disconnected_drops"] += 1
                return
            self.counters["frames_sent"] += 1
            self.counters["bytes_sent"] += len(frame)
            if self._m_sent is not None:
                self._m_sent.inc()

        return sink

    # ------------------------------------------------------------------
    def attach_obs(self, obs: Any) -> None:
        """Bind transport metrics: frames in/out, firewall drops, and a
        connected-peer gauge, all labelled by this node."""
        if obs is None or obs.metrics is None:
            return
        metrics = obs.metrics
        proc = str(self.proc_id)
        self._m_sent = metrics.counter(
            "rt_frames_sent_total", "frames written to peer streams",
            labels=("proc",),
        ).labels(proc)
        self._m_received = metrics.counter(
            "rt_frames_received_total", "frames dispatched from peer streams",
            labels=("proc",),
        ).labels(proc)
        self._m_blocked = metrics.counter(
            "rt_firewall_drops_total", "frames dropped by the partition firewall",
            labels=("proc", "direction"),
        )
        self._m_connected = metrics.gauge(
            "rt_peers_connected", "outbound streams currently established",
            labels=("proc",),
        ).labels(proc)
        # Wire-level families, synced from the per-codec aggregates on
        # every stats()/snapshot pass (zero hot-path cost).
        self._m_wire = {
            "frames": metrics.gauge(
                "rt_wire_frames", "frames on the wire, by direction and codec",
                labels=("proc", "dir", "codec"),
            ),
            "bytes": metrics.gauge(
                "rt_wire_bytes", "bytes on the wire, by direction and codec",
                labels=("proc", "dir", "codec"),
            ),
            "entries": metrics.gauge(
                "rt_wire_entries",
                "message payloads carried, by direction and codec",
                labels=("proc", "dir", "codec"),
            ),
            "flushes": metrics.gauge(
                "rt_wire_flushes", "batch-queue flushes, by codec",
                labels=("proc", "codec"),
            ),
            "seconds": metrics.gauge(
                "rt_wire_codec_seconds",
                "cumulative encode/decode wall seconds, by codec",
                labels=("proc", "op", "codec"),
            ),
        }

    def _sync_wire_metrics(self) -> None:
        """Publish the per-codec wire aggregates into the registry."""
        if self._m_wire is None:
            return
        proc = str(self.proc_id)
        for codec, tx in sorted(self.tx_stats.items()):
            self._m_wire["frames"].labels(proc, "out", codec).set(tx.frames)
            self._m_wire["bytes"].labels(proc, "out", codec).set(tx.bytes_on_wire)
            self._m_wire["entries"].labels(proc, "out", codec).set(tx.entries)
            self._m_wire["flushes"].labels(proc, codec).set(tx.flushes)
            self._m_wire["seconds"].labels(proc, "encode", codec).set(
                tx.encode_seconds
            )
        for codec, rx in sorted(self.rx_stats.items()):
            self._m_wire["frames"].labels(proc, "in", codec).set(rx.frames)
            self._m_wire["bytes"].labels(proc, "in", codec).set(rx.bytes_on_wire)
            self._m_wire["entries"].labels(proc, "in", codec).set(rx.entries)
            self._m_wire["seconds"].labels(proc, "decode", codec).set(
                rx.decode_seconds
            )

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def register(self, node: Any) -> None:
        """Attach the protocol endpoint (a NetworkNode for proc_id)."""
        if node.proc_id != self.proc_id:
            raise ValueError(
                f"node {node.proc_id!r} registered on transport {self.proc_id!r}"
            )
        self._node = node

    async def start(self) -> None:
        """Bind the listen socket and start outbound connector tasks."""
        listen_host, listen_port = self._listen
        self._server = await asyncio.start_server(
            self._serve, listen_host, listen_port
        )
        for peer_id, peer in sorted(self._peers.items()):
            peer.task = asyncio.get_running_loop().create_task(
                self._maintain_peer(peer_id, peer)
            )

    async def wait_connected(self, timeout: float = 10.0) -> bool:
        """Block until every outbound peer stream is up (or timeout)."""
        deadline = asyncio.get_running_loop().time() + timeout
        while asyncio.get_running_loop().time() < deadline:
            if all(peer.writer is not None for peer in self._peers.values()):
                return True
            await asyncio.sleep(0.01)
        return all(peer.writer is not None for peer in self._peers.values())

    async def close(self) -> None:
        """Stop serving, cancel connectors, close every stream."""
        self._closing = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        for peer in self._peers.values():
            if peer.task is not None:
                peer.task.cancel()
            if peer.sender is not None:
                peer.sender.detach()
            if peer.writer is not None:
                peer.writer.close()
                peer.writer = None
        for writer in list(self._inbound.values()):
            writer.close()
        self._inbound.clear()

    # ------------------------------------------------------------------
    # Outbound
    # ------------------------------------------------------------------
    async def _maintain_peer(self, peer_id: str, peer: _Peer) -> None:
        """Keep one outbound stream to ``peer_id`` alive."""
        delay = self._reconnect_delay
        while not self._closing:
            try:
                reader, writer = await asyncio.open_connection(
                    peer.host, peer.port
                )
            except OSError:
                self.counters["connect_failures"] += 1
                await asyncio.sleep(delay)
                delay = min(delay * 2, 8 * self._reconnect_delay)
                continue
            delay = self._reconnect_delay
            # The Hello always rides the legacy json wire (it is what
            # tells the peer which codec the rest of the stream uses).
            writer.write(
                encode_frame(
                    encode_message(Hello(src=self.proc_id, wire=self.wire_name))
                )
            )
            assert peer.sender is not None
            peer.sender.attach(self._frame_sink(writer))
            peer.writer = writer
            self.counters["connects"] += 1
            if self._m_connected is not None:
                self._m_connected.inc()
            try:
                # The outbound stream is write-only; reading it just
                # detects peer closure (EOF) so we can reconnect.
                while await reader.read(4096):
                    pass
            except OSError:
                pass
            finally:
                peer.writer = None
                peer.sender.detach()
                if self._m_connected is not None:
                    self._m_connected.dec()
                writer.close()
            if not self._closing:
                await asyncio.sleep(self._reconnect_delay)

    # ------------------------------------------------------------------
    # The Network surface (protocol side; runs on the loop thread)
    # ------------------------------------------------------------------
    def send(self, src: str, dst: str, message: Any) -> None:
        """Unicast one protocol message (the Network.send contract)."""
        if src != self.proc_id:
            raise ValueError(f"live node {self.proc_id!r} cannot send as {src!r}")
        if src == dst:
            raise ValueError("self-sends are local; do not use the network")
        self.messages_sent += 1
        if dst in self.blocked:
            self.counters["blocked_out"] += 1
            if self._m_blocked is not None:
                self._m_blocked.labels(str(self.proc_id), "out").inc()
            return
        peer = self._peers.get(dst)
        if peer is None or peer.sender is None or not peer.sender.connected:
            self.counters["disconnected_drops"] += 1
            return
        peer.sender.send(message)

    def broadcast(self, src: str, message: Any, include_self: bool = False) -> None:
        for dst in self.processors:
            if dst != src:
                self.send(src, dst, message)
        if include_self:
            self.simulator.call_soon(
                lambda: self._dispatch(src, message)
            )

    def multicast(self, src: str, dests: Iterable[str], message: Any) -> None:
        for dst in dests:
            if dst != src:
                self.send(src, dst, message)

    # ------------------------------------------------------------------
    # Firewall (partition injection)
    # ------------------------------------------------------------------
    def block(self, peers: Iterable[str]) -> None:
        """Drop all frames to and from ``peers`` until unblocked."""
        for p in peers:
            if p != self.proc_id:
                self.blocked.add(p)

    def unblock(self, peers: Iterable[str] | None = None) -> None:
        """Lift the firewall for ``peers`` (default: everyone)."""
        if peers is None:
            self.blocked.clear()
        else:
            for p in peers:
                self.blocked.discard(p)

    # ------------------------------------------------------------------
    # Inbound
    # ------------------------------------------------------------------
    async def _serve(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        wire_reader = WireReader(self.max_frame, stats=self.rx_stats)
        # Replies share the connection's lifetime; no batching so a
        # control reply never sits behind a flush window.
        replier: Callable[[Ctl], None] | None = None
        src: str | None = None
        try:
            while True:
                data = await reader.read(65536)
                if not data:
                    break
                self.counters["bytes_received"] += len(data)
                try:
                    messages = wire_reader.feed(data)
                except FrameError:
                    # A framing or payload error desyncs any stateful
                    # codec on this stream; drop the connection and let
                    # the peer's reconnect start clean.
                    self.counters["frame_errors"] += 1
                    break
                for message in messages:
                    if isinstance(message, Hello):
                        src = message.src
                        self._inbound[src] = writer
                        continue
                    if src is None:
                        self.counters["frame_errors"] += 1
                        continue
                    self.counters["frames_received"] += 1
                    if self._m_received is not None:
                        self._m_received.inc()
                    if isinstance(message, Ctl):
                        if self._on_ctl is not None:
                            if replier is None:
                                replier = self._replier(writer)
                            await self._on_ctl(src, message, replier)
                        continue
                    self._dispatch(src, message)
        except asyncio.CancelledError:
            # Server shutdown cancels every connection handler; the
            # finally below still runs, and the cancellation must reach
            # the Server so close() can finish.
            raise
        except OSError:
            pass
        finally:
            if src is not None and self._inbound.get(src) is writer:
                del self._inbound[src]
            writer.close()

    def _replier(self, writer: asyncio.StreamWriter) -> Callable[[Ctl], None]:
        sender = self._make_sender(batching=False)
        sender.attach(self._frame_sink(writer))

        def reply(ctl: Ctl) -> None:
            sender.send_now(ctl)

        return reply

    def _dispatch(self, src: str, message: Any) -> None:
        if src in self.blocked:
            self.counters["blocked_in"] += 1
            if self._m_blocked is not None:
                self._m_blocked.labels(str(self.proc_id), "in").inc()
            return
        if self._node is not None:
            self.messages_delivered += 1
            self._node.on_message(src, message)

    # ------------------------------------------------------------------
    def flush(self) -> None:
        """Flush every peer's batch queue immediately."""
        for peer in self._peers.values():
            if peer.sender is not None:
                peer.sender.flush()

    def stats(self) -> dict[str, Any]:
        """Transport counters plus connection state (diagnostics)."""
        self._sync_wire_metrics()
        return {
            **self.counters,
            "messages_sent": self.messages_sent,
            "messages_delivered": self.messages_delivered,
            "peers_connected": sum(
                1 for peer in self._peers.values() if peer.writer is not None
            ),
            "blocked": sorted(self.blocked),
            "wire": {
                "codec": self.wire_name,
                "flush_after": self.flush_after,
                "tx": {
                    codec: s.to_dict()
                    for codec, s in sorted(self.tx_stats.items())
                },
                "rx": {
                    codec: s.to_dict()
                    for codec, s in sorted(self.rx_stats.items())
                },
            },
        }
