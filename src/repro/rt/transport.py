"""The live transport: the :class:`~repro.net.network.Network` surface
over persistent TCP streams.

One :class:`LiveNetwork` per node process.  It listens on the node's
own port, keeps one *outbound* stream per peer (reconnecting with
backoff whenever a connection drops), and dispatches inbound frames to
the registered protocol endpoint — the same
:meth:`~repro.net.network.NetworkNode.on_message` contract the
simulated network uses, so :class:`~repro.membership.ring.RingMember`
runs over it unmodified.

Identity handshake: the first frame on every connection is a
:class:`Hello` naming the sender, after which frames are protocol
messages attributed to that sender.  The cluster driver connects the
same way (as ``"driver"``) and speaks :class:`Ctl` records, which are
routed to the node's control handler instead of the ring.

Partition injection is *firewall-style*: :meth:`LiveNetwork.block`
drops frames to and from the named peers at this node while leaving
TCP connections alone — exactly a ``bad`` link pair in the paper's
failure model, driven from :mod:`repro.rt.faults` windows.  Loss is
accounted per direction in :attr:`LiveNetwork.counters` and in
``repro.obs`` metrics when a hub is attached.

Delivery semantics match the model's *fair lossy* channels: a frame
written while the peer is connected is delivered unless the connection
drops mid-flight; frames sent while disconnected or blocked are lost
(the ring's watchdogs and retransmissions are what tolerate exactly
this).
"""

from __future__ import annotations

import asyncio
from collections.abc import Awaitable, Callable, Iterable
from dataclasses import dataclass, field
from typing import Any

from repro.net.status import FailureOracle
from repro.rt.clock import LiveScheduler
from repro.rt.framing import (
    MAX_FRAME,
    FrameDecoder,
    FrameError,
    decode_message,
    encode_frame,
    encode_message,
    register_wire_type,
)

#: Reserved sender id for the cluster driver's control connections.
DRIVER_ID = "driver"

#: Counter keys maintained by every LiveNetwork.
COUNTER_KEYS = (
    "frames_sent",
    "frames_received",
    "bytes_sent",
    "bytes_received",
    "blocked_out",
    "blocked_in",
    "disconnected_drops",
    "connects",
    "connect_failures",
    "frame_errors",
)


@register_wire_type
@dataclass(frozen=True)
class Hello:
    """Connection handshake: who is speaking on this stream."""

    src: str


@register_wire_type
@dataclass(frozen=True)
class Ctl:
    """A control-plane record (driver <-> node).

    ``op`` names the operation; ``data`` is an op-specific payload
    (any codec-encodable value).
    """

    op: str
    data: Any = None


CtlHandler = Callable[[str, Ctl, Callable[[Ctl], None]], Awaitable[None]]


@dataclass
class _Peer:
    """Connection state for one remote processor."""

    host: str
    port: int
    writer: asyncio.StreamWriter | None = None
    task: asyncio.Task | None = field(default=None, repr=False)


class LiveNetwork:
    """All-pairs messaging for one live node.

    Parameters
    ----------
    proc_id:
        This node's processor id.
    peers:
        ``proc_id -> (host, port)`` for *every* processor including this
        one (its entry defines the listen address).
    scheduler:
        The node's :class:`~repro.rt.clock.LiveScheduler` (exposed as
        :attr:`simulator` for the protocol objects).
    on_ctl:
        Async handler for :class:`Ctl` frames ``(src, ctl, reply)``;
        ``reply`` writes a control record back on the inbound stream.
    max_frame:
        Frame ceiling for both directions.
    reconnect_delay:
        Initial outbound reconnect backoff (doubles up to 8x).
    """

    def __init__(
        self,
        proc_id: str,
        peers: dict[str, tuple[str, int]],
        scheduler: LiveScheduler,
        on_ctl: CtlHandler | None = None,
        max_frame: int = MAX_FRAME,
        reconnect_delay: float = 0.05,
    ) -> None:
        if proc_id not in peers:
            raise ValueError(f"own id {proc_id!r} missing from the peer map")
        self.proc_id = proc_id
        self.processors: tuple[str, ...] = tuple(sorted(peers))
        self.simulator = scheduler
        #: An all-good oracle: live failures are real (killed processes,
        #: firewalled links), not modelled, so protocol-side gates
        #: (``_alive`` checks, send gating) always pass.
        self.oracle = FailureOracle(self.processors)
        self._peers: dict[str, _Peer] = {
            p: _Peer(host, port) for p, (host, port) in peers.items() if p != proc_id
        }
        self._listen: tuple[str, int] = peers[proc_id]
        self._on_ctl = on_ctl
        self.max_frame = max_frame
        self._reconnect_delay = reconnect_delay
        self._node: Any = None
        self._server: asyncio.AbstractServer | None = None
        self._inbound: dict[str, asyncio.StreamWriter] = {}
        self._closing = False
        self.blocked: set[str] = set()
        self.counters: dict[str, int] = {key: 0 for key in COUNTER_KEYS}
        self.messages_sent = 0
        self.messages_delivered = 0
        # Observability slots (bound by attach_obs; `is None` guarded).
        self._m_sent = None
        self._m_received = None
        self._m_blocked = None
        self._m_connected = None

    # ------------------------------------------------------------------
    def attach_obs(self, obs: Any) -> None:
        """Bind transport metrics: frames in/out, firewall drops, and a
        connected-peer gauge, all labelled by this node."""
        if obs is None or obs.metrics is None:
            return
        metrics = obs.metrics
        proc = str(self.proc_id)
        self._m_sent = metrics.counter(
            "rt_frames_sent_total", "frames written to peer streams",
            labels=("proc",),
        ).labels(proc)
        self._m_received = metrics.counter(
            "rt_frames_received_total", "frames dispatched from peer streams",
            labels=("proc",),
        ).labels(proc)
        self._m_blocked = metrics.counter(
            "rt_firewall_drops_total", "frames dropped by the partition firewall",
            labels=("proc", "direction"),
        )
        self._m_connected = metrics.gauge(
            "rt_peers_connected", "outbound streams currently established",
            labels=("proc",),
        ).labels(proc)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def register(self, node: Any) -> None:
        """Attach the protocol endpoint (a NetworkNode for proc_id)."""
        if node.proc_id != self.proc_id:
            raise ValueError(
                f"node {node.proc_id!r} registered on transport {self.proc_id!r}"
            )
        self._node = node

    async def start(self) -> None:
        """Bind the listen socket and start outbound connector tasks."""
        listen_host, listen_port = self._listen
        self._server = await asyncio.start_server(
            self._serve, listen_host, listen_port
        )
        for peer_id, peer in sorted(self._peers.items()):
            peer.task = asyncio.get_running_loop().create_task(
                self._maintain_peer(peer_id, peer)
            )

    async def wait_connected(self, timeout: float = 10.0) -> bool:
        """Block until every outbound peer stream is up (or timeout)."""
        deadline = asyncio.get_running_loop().time() + timeout
        while asyncio.get_running_loop().time() < deadline:
            if all(peer.writer is not None for peer in self._peers.values()):
                return True
            await asyncio.sleep(0.01)
        return all(peer.writer is not None for peer in self._peers.values())

    async def close(self) -> None:
        """Stop serving, cancel connectors, close every stream."""
        self._closing = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        for peer in self._peers.values():
            if peer.task is not None:
                peer.task.cancel()
            if peer.writer is not None:
                peer.writer.close()
                peer.writer = None
        for writer in list(self._inbound.values()):
            writer.close()
        self._inbound.clear()

    # ------------------------------------------------------------------
    # Outbound
    # ------------------------------------------------------------------
    async def _maintain_peer(self, peer_id: str, peer: _Peer) -> None:
        """Keep one outbound stream to ``peer_id`` alive."""
        delay = self._reconnect_delay
        while not self._closing:
            try:
                reader, writer = await asyncio.open_connection(
                    peer.host, peer.port
                )
            except OSError:
                self.counters["connect_failures"] += 1
                await asyncio.sleep(delay)
                delay = min(delay * 2, 8 * self._reconnect_delay)
                continue
            delay = self._reconnect_delay
            writer.write(encode_frame(encode_message(Hello(src=self.proc_id))))
            peer.writer = writer
            self.counters["connects"] += 1
            if self._m_connected is not None:
                self._m_connected.inc()
            try:
                # The outbound stream is write-only; reading it just
                # detects peer closure (EOF) so we can reconnect.
                while await reader.read(4096):
                    pass
            except OSError:
                pass
            finally:
                peer.writer = None
                if self._m_connected is not None:
                    self._m_connected.dec()
                writer.close()
            if not self._closing:
                await asyncio.sleep(self._reconnect_delay)

    # ------------------------------------------------------------------
    # The Network surface (protocol side; runs on the loop thread)
    # ------------------------------------------------------------------
    def send(self, src: str, dst: str, message: Any) -> None:
        """Unicast one protocol message (the Network.send contract)."""
        if src != self.proc_id:
            raise ValueError(f"live node {self.proc_id!r} cannot send as {src!r}")
        if src == dst:
            raise ValueError("self-sends are local; do not use the network")
        self.messages_sent += 1
        if dst in self.blocked:
            self.counters["blocked_out"] += 1
            if self._m_blocked is not None:
                self._m_blocked.labels(str(self.proc_id), "out").inc()
            return
        peer = self._peers.get(dst)
        if peer is None or peer.writer is None:
            self.counters["disconnected_drops"] += 1
            return
        frame = encode_frame(encode_message(message, self.max_frame), self.max_frame)
        try:
            peer.writer.write(frame)
        except OSError:
            self.counters["disconnected_drops"] += 1
            return
        self.counters["frames_sent"] += 1
        self.counters["bytes_sent"] += len(frame)
        if self._m_sent is not None:
            self._m_sent.inc()

    def broadcast(self, src: str, message: Any, include_self: bool = False) -> None:
        for dst in self.processors:
            if dst != src:
                self.send(src, dst, message)
        if include_self:
            self.simulator.call_soon(
                lambda: self._dispatch(src, message)
            )

    def multicast(self, src: str, dests: Iterable[str], message: Any) -> None:
        for dst in dests:
            if dst != src:
                self.send(src, dst, message)

    # ------------------------------------------------------------------
    # Firewall (partition injection)
    # ------------------------------------------------------------------
    def block(self, peers: Iterable[str]) -> None:
        """Drop all frames to and from ``peers`` until unblocked."""
        for p in peers:
            if p != self.proc_id:
                self.blocked.add(p)

    def unblock(self, peers: Iterable[str] | None = None) -> None:
        """Lift the firewall for ``peers`` (default: everyone)."""
        if peers is None:
            self.blocked.clear()
        else:
            for p in peers:
                self.blocked.discard(p)

    # ------------------------------------------------------------------
    # Inbound
    # ------------------------------------------------------------------
    async def _serve(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        decoder = FrameDecoder(self.max_frame)
        src: str | None = None
        try:
            while True:
                data = await reader.read(65536)
                if not data:
                    break
                try:
                    payloads = decoder.feed(data)
                except FrameError:
                    self.counters["frame_errors"] += 1
                    break
                for payload in payloads:
                    try:
                        message = decode_message(payload)
                    except FrameError:
                        self.counters["frame_errors"] += 1
                        continue
                    if isinstance(message, Hello):
                        src = message.src
                        self._inbound[src] = writer
                        continue
                    if src is None:
                        self.counters["frame_errors"] += 1
                        continue
                    self.counters["frames_received"] += 1
                    self.counters["bytes_received"] += len(payload)
                    if self._m_received is not None:
                        self._m_received.inc()
                    if isinstance(message, Ctl):
                        if self._on_ctl is not None:
                            await self._on_ctl(src, message, self._replier(writer))
                        continue
                    self._dispatch(src, message)
        except (OSError, asyncio.CancelledError):
            pass
        finally:
            if src is not None and self._inbound.get(src) is writer:
                del self._inbound[src]
            writer.close()

    def _replier(self, writer: asyncio.StreamWriter) -> Callable[[Ctl], None]:
        def reply(ctl: Ctl) -> None:
            try:
                writer.write(
                    encode_frame(encode_message(ctl, self.max_frame), self.max_frame)
                )
            except OSError:
                pass

        return reply

    def _dispatch(self, src: str, message: Any) -> None:
        if src in self.blocked:
            self.counters["blocked_in"] += 1
            if self._m_blocked is not None:
                self._m_blocked.labels(str(self.proc_id), "in").inc()
            return
        if self._node is not None:
            self.messages_delivered += 1
            self._node.on_message(src, message)

    # ------------------------------------------------------------------
    def stats(self) -> dict[str, Any]:
        """Transport counters plus connection state (diagnostics)."""
        return {
            **self.counters,
            "messages_sent": self.messages_sent,
            "messages_delivered": self.messages_delivered,
            "peers_connected": sum(
                1 for peer in self._peers.values() if peer.writer is not None
            ),
            "blocked": sorted(self.blocked),
        }
