"""Live asyncio runtime: the VS/TO stack over real sockets.

The simulator reproduces the paper's Section 8 implementation under a
deterministic clock; this package runs the *same protocol objects*
(:class:`~repro.membership.ring.RingMember`,
:class:`~repro.core.vstoto.runtime.VStoTORuntime`) across real OS
processes over TCP:

- :mod:`repro.rt.framing` — length-prefixed frames and a JSON wire
  codec for every protocol message (tokens, membership rounds, client
  payloads, control ops);
- :mod:`repro.rt.clock` — :class:`LiveScheduler`, a Simulator-shaped
  timer facade over the asyncio event loop (the one place protocol
  code touches the host clock; see the ``repro.rt`` carve-out in the
  DET002 lint rule);
- :mod:`repro.rt.transport` — :class:`LiveNetwork`, the
  :class:`~repro.net.network.Network` surface over persistent TCP
  streams, with firewall-style peer blocking for partition injection;
- :mod:`repro.rt.trace` — per-node JSONL event capture and the offline
  merge + verification path (the captured trace is checked with the
  *same* :class:`~repro.core.monitor.OnlineVSMonitor` and TO-machine
  trace membership used for simulated runs);
- :mod:`repro.rt.faults` — live partition windows, reusing
  :class:`~repro.faults.schedule.FaultSchedule` timing;
- :mod:`repro.rt.node` — ``python -m repro.rt.node``, one ring member
  as a daemon process;
- :mod:`repro.rt.cluster` — ``python -m repro.rt.cluster``, the driver
  that spawns nodes, drives client load, partitions/heals/kills, and
  verifies the captured trace.

Determinism contract: live runs are *not* replayable from a seed (real
scheduling and real sockets); what is preserved is checkability — every
external event is captured and the capture must lie in the trace sets
of the VS and TO specifications.
"""

from __future__ import annotations

from repro.rt.clock import LiveScheduler
from repro.rt.framing import (
    FrameDecoder,
    FrameError,
    MAX_FRAME,
    decode_message,
    encode_frame,
    encode_message,
)
from repro.rt.transport import Ctl, Hello, LiveNetwork
from repro.rt.trace import EventLog, VerifyReport, load_event_logs, verify_events

__all__ = [
    "Ctl",
    "EventLog",
    "FrameDecoder",
    "FrameError",
    "Hello",
    "LiveNetwork",
    "LiveScheduler",
    "MAX_FRAME",
    "VerifyReport",
    "decode_message",
    "encode_frame",
    "encode_message",
    "load_event_logs",
    "verify_events",
]
