"""Partition injection for live clusters.

The simulator's nemesis (:mod:`repro.faults`) perturbs packets inside
the process; live nodes are separate OS processes, so the lever is the
socket-layer firewall on :class:`~repro.rt.transport.LiveNetwork`.  A
:class:`FirewallWindow` says *when* (offsets from traffic start) and
*how* (a grouping of the processors into components); the cluster
driver turns it into ``block``/``unblock`` control messages so that
during the window each node drops frames to and from everything
outside its own component — the live counterpart of the paper's
transitional partition scenarios.

:func:`windows_from_schedule` reuses :class:`~repro.faults.schedule.
FaultSchedule` as the timing source: each of the schedule's windows
becomes a firewall window (scaled from virtual to wall seconds), so
the same seeded adversarial timing that drives E18 chaos soaks can
drive a live cluster's partitions.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Hashable, Iterable, Sequence

from repro.faults.injectors import PartitionInjector
from repro.faults.schedule import FaultSchedule

Groups = tuple[tuple[str, ...], ...]


@dataclass(frozen=True)
class FirewallWindow:
    """One timed partition episode.

    ``start``/``stop`` are seconds relative to the start of traffic;
    ``groups`` are the connectivity components (every processor must
    appear in exactly one).
    """

    start: float
    stop: float
    groups: Groups

    def __post_init__(self) -> None:
        if self.start < 0 or self.stop <= self.start:
            raise ValueError(
                f"need 0 <= start < stop, got [{self.start}, {self.stop})"
            )
        seen: set[str] = set()
        for group in self.groups:
            for p in group:
                if p in seen:
                    raise ValueError(f"processor {p!r} in two components")
                seen.add(p)

    def blocked_for(self, p: str) -> tuple[str, ...]:
        """Everyone outside ``p``'s component (what ``p`` firewalls)."""
        component: tuple[str, ...] = ()
        for group in self.groups:
            if p in group:
                component = group
                break
        members = set(component)
        all_procs = {q for group in self.groups for q in group}
        return tuple(sorted(all_procs - members - {p}))


def majority_split(processors: Sequence[str]) -> Groups:
    """The canonical two-component split: a majority of ⌈(n+1)/2⌉ lowest
    ids against the rest (the majority side keeps a primary quorum, so
    TO delivery continues there through the partition)."""
    ordered = tuple(sorted(processors))
    cut = len(ordered) // 2 + 1
    return (ordered[:cut], ordered[cut:])


def windows_from_schedule(
    schedule: FaultSchedule,
    groups: Groups,
    time_scale: float = 1.0,
) -> tuple[FirewallWindow, ...]:
    """Map a fault schedule's activation windows onto firewall windows.

    Every ``(start, stop)`` in the schedule becomes one partition
    episode with the given ``groups``; ``time_scale`` converts the
    schedule's virtual time units into wall seconds (a schedule built
    for δ=1 virtual units drives a live cluster running δ=0.05 s with
    ``time_scale=0.05``).
    """
    return tuple(
        FirewallWindow(
            start=window.start * time_scale,
            stop=window.stop * time_scale,
            groups=groups,
        )
        for window in sorted(schedule.windows, key=lambda w: (w.start, w.stop))
    )


def single_partition_window(
    processors: Iterable[str], start: float, stop: float
) -> FirewallWindow:
    """The default cluster-driver episode: one majority/minority split."""
    return FirewallWindow(start=start, stop=stop, groups=majority_split(tuple(processors)))


def windows_from_scenario(
    schedule: FaultSchedule,
    sim_processors: Sequence[Hashable],
    live_processors: Sequence[str],
    time_scale: float = 1.0,
) -> tuple[FirewallWindow, ...]:
    """Replay a sim scenario's partition windows on a live cluster.

    Windows driven by a :class:`~repro.faults.injectors.PartitionInjector`
    carry explicit connectivity groups; each simulated processor id maps
    onto a live node id by sorted position (``sorted(..., key=str)``, a
    deterministic bijection).  A schedule with no partition windows —
    e.g. a shrunk scenario whose minimal reproduction was packet-level —
    falls back to :func:`windows_from_schedule` with the canonical
    majority split, so its *timing* still replays.

    This closes half of the live→sim loop: the same shrunk scenario
    file that reproduces a failure in the simulator drives the firewall
    on a real cluster (``python -m repro.rt.cluster --scenario``).
    """
    if len(set(sim_processors)) != len(live_processors):
        raise ValueError(
            f"scenario has {len(set(sim_processors))} processors, "
            f"cluster has {len(live_processors)}"
        )
    mapping = dict(
        zip(sorted(sim_processors, key=str), live_processors)
    )
    windows: list[FirewallWindow] = []
    for window in sorted(schedule.windows, key=lambda w: (w.start, w.stop)):
        if not isinstance(window.injector, PartitionInjector):
            continue
        groups = tuple(
            tuple(mapping[p] for p in group)
            for group in window.injector.groups
        )
        windows.append(
            FirewallWindow(
                start=window.start * time_scale,
                stop=window.stop * time_scale,
                groups=groups,
            )
        )
    if not windows:
        return windows_from_schedule(
            schedule, majority_split(live_processors), time_scale
        )
    return tuple(windows)
