"""Compact binary wire codec and frame/payload batching (E25).

:mod:`repro.rt.framing` defines the live runtime's *legacy* wire: a
4-byte length prefix around a tagged-JSON payload.  That format is kept
fully supported — it is the fallback codec and the offline trace
vocabulary — but it pays for self-description on every frame.  This
module adds the hot-path alternative:

**Framed header.**  Binary-era frames open with a struct-packed header
``(magic, version, codec id, flags, length)`` instead of a bare length.
The magic byte (0xA5) can never open a legacy frame (a legacy length
prefix below 16 MiB starts with 0x00), so :class:`WireDecoder` tells
the two formats apart per frame and a stream may mix them — which is
exactly how the handshake works: every connection opens with a legacy
:class:`~repro.rt.transport.Hello` naming the sender's codec, and the
frames after it speak whatever the header says.

**Compact value encoding.**  :class:`BinaryEncoder` writes the codec's
value shapes (scalars, tuples/lists/frozensets/dicts, ``View``,
``BOTTOM``, and every dataclass in the :func:`~repro.rt.framing.
register_wire_type` registry) as tagged bytes: varint ints, packed
doubles, length-prefixed UTF-8, positional dataclass fields.  It is the
msgpack idea specialised to the registry — no field names on the wire,
because both ends share the registry.

**In-band interning.**  Repeated strings — member ids, label origins,
metric names, wire-type names — are interned per connection: the first
occurrence rides as a definition (``SDEF``), every later one as a
varint reference (``SREF``).  The table is negotiated purely in-band
(the definitions *are* the negotiation) and resets with the connection,
so reconnects can never desynchronise it.

**Batching.**  :class:`WireWriter` coalesces multiple message payloads
into one frame (``FLAG_BATCH``: varint count + length-prefixed
payloads) under a size/time-bounded flush, so a burst of gpsnd traffic
or control-plane sends costs one header and one socket write instead
of one each.

Determinism: encoding any value is a pure function of the value and
the encoder's table state; sets sort by the canonical JSON encoding of
their elements (the same order the legacy codec uses), so both codecs
serialise one value identically on every process and hash seed.
"""

from __future__ import annotations

import struct
import time
from collections.abc import Callable, Sequence
from dataclasses import dataclass, fields as dataclass_fields
from typing import Any

from repro.core.types import BOTTOM, Bottom, View
from repro.rt.framing import (
    MAX_FRAME,
    FrameError,
    decode_message,
    encode_frame,
    encode_message,
    encode_value,
    lookup_wire_type,
    wire_type_name,
)

#: First header byte of a binary-era frame.  A legacy frame's first
#: byte is the top byte of a 32-bit length, i.e. 0x00 for any frame
#: under 16 MiB — far above every supported ceiling — so one byte of
#: lookahead separates the two formats.
WIRE_MAGIC = 0xA5
#: Wire protocol version carried in every binary-era header.
WIRE_VERSION = 1

#: Codec identifiers carried in the frame header.
CODEC_JSON = 0
CODEC_BINARY = 1

#: Header flag: the payload is a batch (varint count, then that many
#: varint-length-prefixed message payloads).
FLAG_BATCH = 0x01

#: magic, version, codec id, flags, payload length.
_WIRE_HEADER = struct.Struct(">BBBBI")
_LEGACY_HEADER = struct.Struct(">I")
_DOUBLE = struct.Struct(">d")

#: Interned strings longer than this ride inline (interning a huge
#: payload string would bloat the table for little reuse).
_MAX_INTERN_LEN = 255
#: Per-connection interning table ceiling; once full, new strings ride
#: inline.  4096 labels cover every registry name, member id and metric
#: name a cluster produces many times over.
_MAX_INTERN_TABLE = 4096

#: Wire format names accepted by the node/cluster CLIs.
WIRE_NAMES = ("json", "binary")


class WireFrame:
    """One decoded frame: which codec, which flags, which bytes."""

    __slots__ = ("codec", "flags", "payload")

    def __init__(self, codec: int, flags: int, payload: bytes) -> None:
        self.codec = codec
        self.flags = flags
        self.payload = payload


def encode_wire_frame(
    payload: bytes,
    codec: int,
    flags: int = 0,
    max_frame: int = MAX_FRAME,
) -> bytes:
    """Wrap ``payload`` in a binary-era header; reject oversized."""
    if len(payload) > max_frame:
        raise FrameError(
            f"frame payload of {len(payload)} bytes exceeds the "
            f"{max_frame}-byte ceiling"
        )
    return (
        _WIRE_HEADER.pack(WIRE_MAGIC, WIRE_VERSION, codec, flags, len(payload))
        + payload
    )


class WireDecoder:
    """Incremental reassembly of a mixed legacy/binary frame stream.

    The same offset-cursor technique as :class:`~repro.rt.framing.
    FrameDecoder` (one compaction per feed, never per frame), plus one
    byte of lookahead to pick the header format.  Legacy frames come
    back as ``WireFrame(CODEC_JSON, 0, payload)``.
    """

    def __init__(self, max_frame: int = MAX_FRAME) -> None:
        self.max_frame = max_frame
        self._buffer = bytearray()
        self._pos = 0
        #: (codec, flags, remaining length) of the frame being read.
        self._expect: tuple[int, int, int] | None = None
        self.frames_decoded = 0
        self.bytes_fed = 0

    def _parse_header(self, buffer: bytearray, pos: int) -> tuple[int, tuple[int, int, int]] | None:
        """Parse one header at ``pos``; None when more bytes are needed.
        Returns (bytes consumed, (codec, flags, length))."""
        if buffer[pos] != WIRE_MAGIC:
            if len(buffer) - pos < _LEGACY_HEADER.size:
                return None
            (length,) = _LEGACY_HEADER.unpack_from(buffer, pos)
            if length > self.max_frame:
                raise FrameError(
                    f"incoming frame declares {length} bytes, above the "
                    f"{self.max_frame}-byte ceiling"
                )
            return _LEGACY_HEADER.size, (CODEC_JSON, 0, length)
        if len(buffer) - pos < _WIRE_HEADER.size:
            return None
        _magic, version, codec, flags, length = _WIRE_HEADER.unpack_from(
            buffer, pos
        )
        if version != WIRE_VERSION:
            raise FrameError(f"unsupported wire version {version}")
        if length > self.max_frame:
            raise FrameError(
                f"incoming frame declares {length} bytes, above the "
                f"{self.max_frame}-byte ceiling"
            )
        return _WIRE_HEADER.size, (codec, flags, length)

    def feed(self, data: bytes) -> list[WireFrame]:
        """Absorb ``data``; return every frame completed by it."""
        self.bytes_fed += len(data)
        buffer = self._buffer
        buffer.extend(data)
        pos = self._pos
        out: list[WireFrame] = []
        try:
            while True:
                if self._expect is None:
                    if len(buffer) - pos < 1:
                        break
                    parsed = self._parse_header(buffer, pos)
                    if parsed is None:
                        break
                    consumed, self._expect = parsed
                    pos += consumed
                codec, flags, length = self._expect
                if len(buffer) - pos < length:
                    break
                out.append(
                    WireFrame(codec, flags, bytes(buffer[pos : pos + length]))
                )
                pos += length
                self._expect = None
                self.frames_decoded += 1
        finally:
            if pos and (pos == len(buffer) or pos >= 1 << 16):
                del buffer[:pos]
                pos = 0
            self._pos = pos
        return out

    @property
    def pending_bytes(self) -> int:
        """Bytes buffered towards an incomplete frame."""
        return len(self._buffer) - self._pos


# ----------------------------------------------------------------------
# Batch payloads
# ----------------------------------------------------------------------
def _write_uvarint(out: bytearray, value: int) -> None:
    while value > 0x7F:
        out.append((value & 0x7F) | 0x80)
        value >>= 7
    out.append(value)


def _read_uvarint(data: bytes, pos: int) -> tuple[int, int]:
    result = 0
    shift = 0
    while True:
        if pos >= len(data):
            raise FrameError("truncated varint")
        byte = data[pos]
        pos += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, pos
        shift += 7


def pack_batch(payloads: Sequence[bytes]) -> bytes:
    """Concatenate message payloads into one batch frame payload."""
    out = bytearray()
    _write_uvarint(out, len(payloads))
    for payload in payloads:
        _write_uvarint(out, len(payload))
        out += payload
    return bytes(out)


def unpack_batch(payload: bytes) -> list[bytes]:
    """Inverse of :func:`pack_batch`."""
    count, pos = _read_uvarint(payload, 0)
    out: list[bytes] = []
    for _ in range(count):
        length, pos = _read_uvarint(payload, pos)
        if pos + length > len(payload):
            raise FrameError("truncated batch entry")
        out.append(payload[pos : pos + length])
        pos += length
    if pos != len(payload):
        raise FrameError(f"{len(payload) - pos} trailing bytes after batch")
    return out


# ----------------------------------------------------------------------
# Binary value encoding
# ----------------------------------------------------------------------
_T_NONE = 0x00
_T_TRUE = 0x01
_T_FALSE = 0x02
_T_BOTTOM = 0x03
_T_INT = 0x04
_T_FLOAT = 0x05
_T_STR = 0x06  # inline: varint byte length + UTF-8
_T_SDEF = 0x07  # like _T_STR, and both sides append it to the table
_T_SREF = 0x08  # varint table index
_T_LIST = 0x09
_T_TUPLE = 0x0A
_T_FROZENSET = 0x0B
_T_DICT = 0x0C
_T_VIEW = 0x0D
_T_MESSAGE = 0x0E  # type name (str value) + varint arity + fields


def _canonical_set_order(values: Any) -> list[Any]:
    """Set elements in the legacy codec's order (sorted by the repr of
    their canonical JSON encoding) — hash-seed independent, and it
    keeps both codecs byte-deterministic for the same value."""
    return sorted(values, key=lambda v: repr(encode_value(v)))


class BinaryEncoder:
    """Stateful (per-connection) compact encoder.

    One instance per outbound stream: the interning table it builds is
    mirrored by the peer's :class:`BinaryDecoder` through the ``SDEF``
    records inside the byte stream itself.  :meth:`encode` is atomic
    with respect to the table — a failed encode rolls back any strings
    it interned, so the table never drifts ahead of the bytes actually
    put on the wire.
    """

    def __init__(self, max_table: int = _MAX_INTERN_TABLE) -> None:
        self._table: dict[str, int] = {}
        self._max_table = max_table

    def reset(self) -> None:
        """Forget the interning table (new connection, fresh peer)."""
        self._table.clear()

    @property
    def table_size(self) -> int:
        return len(self._table)

    def encode(self, message: Any, max_frame: int = MAX_FRAME) -> bytes:
        out = bytearray()
        added: list[str] = []
        try:
            self._enc(message, out, added)
        except FrameError:
            for key in added:
                del self._table[key]
            raise
        if len(out) > max_frame:
            for key in added:
                del self._table[key]
            raise FrameError(
                f"encoded message of {len(out)} bytes exceeds the "
                f"{max_frame}-byte frame ceiling"
            )
        return bytes(out)

    def _enc_str(self, value: str, out: bytearray, added: list[str]) -> None:
        index = self._table.get(value)
        if index is not None:
            out.append(_T_SREF)
            _write_uvarint(out, index)
            return
        raw = value.encode("utf-8")
        if len(raw) <= _MAX_INTERN_LEN and len(self._table) < self._max_table:
            self._table[value] = len(self._table)
            added.append(value)
            out.append(_T_SDEF)
        else:
            out.append(_T_STR)
        _write_uvarint(out, len(raw))
        out += raw

    def _enc(self, value: Any, out: bytearray, added: list[str]) -> None:
        if value is None:
            out.append(_T_NONE)
        elif value is True:
            out.append(_T_TRUE)
        elif value is False:
            out.append(_T_FALSE)
        elif isinstance(value, str):
            self._enc_str(value, out, added)
        elif isinstance(value, int) and not isinstance(value, bool):
            out.append(_T_INT)
            # Generalised zigzag: sign in the low bit, magnitude above.
            _write_uvarint(
                out, (value << 1) if value >= 0 else ((-value << 1) - 1)
            )
        elif isinstance(value, float):
            out.append(_T_FLOAT)
            out += _DOUBLE.pack(value)
        elif value is BOTTOM or isinstance(value, Bottom):
            out.append(_T_BOTTOM)
        else:
            kind = wire_type_name(type(value))
            if kind is not None:
                out.append(_T_MESSAGE)
                self._enc_str(kind, out, added)
                field_values = [
                    getattr(value, f.name) for f in dataclass_fields(value)
                ]
                _write_uvarint(out, len(field_values))
                for field_value in field_values:
                    self._enc(field_value, out, added)
            elif isinstance(value, View):
                out.append(_T_VIEW)
                self._enc(value.id, out, added)
                members = _canonical_set_order(value.set)
                _write_uvarint(out, len(members))
                for member in members:
                    self._enc(member, out, added)
            elif isinstance(value, tuple):
                out.append(_T_TUPLE)
                _write_uvarint(out, len(value))
                for item in value:
                    self._enc(item, out, added)
            elif isinstance(value, list):
                out.append(_T_LIST)
                _write_uvarint(out, len(value))
                for item in value:
                    self._enc(item, out, added)
            elif isinstance(value, (set, frozenset)):
                out.append(_T_FROZENSET)
                elements = _canonical_set_order(value)
                _write_uvarint(out, len(elements))
                for element in elements:
                    self._enc(element, out, added)
            elif isinstance(value, dict):
                out.append(_T_DICT)
                _write_uvarint(out, len(value))
                for key, item in value.items():
                    self._enc(key, out, added)
                    self._enc(item, out, added)
            else:
                raise FrameError(
                    f"cannot encode value of type {type(value).__name__}: "
                    f"{value!r}"
                )


class BinaryDecoder:
    """Stateful (per-connection) inverse of :class:`BinaryEncoder`.

    The interning table is rebuilt purely from the ``SDEF`` records in
    the byte stream, in stream order — feed it the frames of one
    connection in the order they arrived and it stays in lockstep with
    the sender's table.
    """

    def __init__(self) -> None:
        self._table: list[str] = []

    def reset(self) -> None:
        self._table.clear()

    @property
    def table_size(self) -> int:
        return len(self._table)

    def decode(self, payload: bytes) -> Any:
        try:
            value, pos = self._dec(payload, 0)
        except (IndexError, struct.error, UnicodeDecodeError) as exc:
            raise FrameError(f"undecodable binary payload: {exc}") from exc
        if pos != len(payload):
            raise FrameError(
                f"{len(payload) - pos} trailing bytes after binary payload"
            )
        return value

    def _dec_str(self, data: bytes, pos: int, define: bool) -> tuple[str, int]:
        length, pos = _read_uvarint(data, pos)
        if pos + length > len(data):
            raise FrameError("truncated string payload")
        text = data[pos : pos + length].decode("utf-8")
        if define:
            self._table.append(text)
        return text, pos + length

    def _dec(self, data: bytes, pos: int) -> tuple[Any, int]:
        if pos >= len(data):
            raise FrameError("truncated binary payload")
        tag = data[pos]
        pos += 1
        if tag == _T_NONE:
            return None, pos
        if tag == _T_TRUE:
            return True, pos
        if tag == _T_FALSE:
            return False, pos
        if tag == _T_BOTTOM:
            return BOTTOM, pos
        if tag == _T_INT:
            raw, pos = _read_uvarint(data, pos)
            return (raw >> 1) if not raw & 1 else -((raw + 1) >> 1), pos
        if tag == _T_FLOAT:
            if pos + _DOUBLE.size > len(data):
                raise FrameError("truncated float payload")
            (value,) = _DOUBLE.unpack_from(data, pos)
            return value, pos + _DOUBLE.size
        if tag in (_T_STR, _T_SDEF):
            return self._dec_str(data, pos, define=tag == _T_SDEF)
        if tag == _T_SREF:
            index, pos = _read_uvarint(data, pos)
            if index >= len(self._table):
                raise FrameError(f"string reference {index} not defined")
            return self._table[index], pos
        if tag in (_T_LIST, _T_TUPLE, _T_FROZENSET):
            count, pos = _read_uvarint(data, pos)
            items = []
            for _ in range(count):
                item, pos = self._dec(data, pos)
                items.append(item)
            if tag == _T_LIST:
                return items, pos
            if tag == _T_TUPLE:
                return tuple(items), pos
            return frozenset(items), pos
        if tag == _T_DICT:
            count, pos = _read_uvarint(data, pos)
            mapping: dict[Any, Any] = {}
            for _ in range(count):
                key, pos = self._dec(data, pos)
                value, pos = self._dec(data, pos)
                mapping[key] = value
            return mapping, pos
        if tag == _T_VIEW:
            viewid, pos = self._dec(data, pos)
            count, pos = _read_uvarint(data, pos)
            members = []
            for _ in range(count):
                member, pos = self._dec(data, pos)
                members.append(member)
            return View(viewid, frozenset(members)), pos
        if tag == _T_MESSAGE:
            name, pos = self._dec(data, pos)
            if not isinstance(name, str):
                raise FrameError("wire-type name is not a string")
            cls = lookup_wire_type(name)
            if cls is None:
                raise FrameError(f"unknown wire type {name!r}")
            count, pos = _read_uvarint(data, pos)
            field_values = []
            for _ in range(count):
                field_value, pos = self._dec(data, pos)
                field_values.append(field_value)
            try:
                return cls(*field_values), pos
            except TypeError as exc:
                raise FrameError(
                    f"wire type {name!r} rejected {count} fields: {exc}"
                ) from exc
        raise FrameError(f"unknown binary tag 0x{tag:02x}")


# ----------------------------------------------------------------------
# Codec objects (one per connection direction)
# ----------------------------------------------------------------------
class Wire:
    """One connection direction's codec: payload bytes <-> messages."""

    name: str
    codec_id: int

    def encode(self, message: Any, max_frame: int = MAX_FRAME) -> bytes:
        raise NotImplementedError

    def decode(self, payload: bytes) -> Any:
        raise NotImplementedError

    def reset(self) -> None:
        """Drop per-connection state (called on (re)connect)."""


class JsonWire(Wire):
    """The legacy tagged-JSON codec behind the common interface."""

    name = "json"
    codec_id = CODEC_JSON

    def encode(self, message: Any, max_frame: int = MAX_FRAME) -> bytes:
        return encode_message(message, max_frame)

    def decode(self, payload: bytes) -> Any:
        return decode_message(payload)


class BinaryWire(Wire):
    """The compact binary codec; holds both interning tables so one
    instance can serve a connection's encode or decode side."""

    name = "binary"
    codec_id = CODEC_BINARY

    def __init__(self) -> None:
        self._encoder = BinaryEncoder()
        self._decoder = BinaryDecoder()

    def encode(self, message: Any, max_frame: int = MAX_FRAME) -> bytes:
        return self._encoder.encode(message, max_frame)

    def decode(self, payload: bytes) -> Any:
        return self._decoder.decode(payload)

    def reset(self) -> None:
        self._encoder.reset()
        self._decoder.reset()


def make_wire(name: str) -> Wire:
    """A fresh codec instance for a CLI wire name."""
    if name == "json":
        return JsonWire()
    if name == "binary":
        return BinaryWire()
    raise ValueError(f"unknown wire format {name!r} (want one of {WIRE_NAMES})")


def wire_for_codec(codec: int) -> Wire:
    """A fresh codec instance for a frame-header codec id."""
    if codec == CODEC_JSON:
        return JsonWire()
    if codec == CODEC_BINARY:
        return BinaryWire()
    raise FrameError(f"unknown codec id {codec}")


# ----------------------------------------------------------------------
# Batching writer
# ----------------------------------------------------------------------
@dataclass
class WriterStats:
    """What one :class:`WireWriter` put on the wire."""

    frames: int = 0
    entries: int = 0
    batches: int = 0
    flushes: int = 0
    bytes_on_wire: int = 0
    encode_seconds: float = 0.0

    def merge(self, other: WriterStats) -> None:
        self.frames += other.frames
        self.entries += other.entries
        self.batches += other.batches
        self.flushes += other.flushes
        self.bytes_on_wire += other.bytes_on_wire
        self.encode_seconds += other.encode_seconds

    def to_dict(self) -> dict[str, Any]:
        return {
            "frames": self.frames,
            "entries": self.entries,
            "batches": self.batches,
            "flushes": self.flushes,
            "bytes_on_wire": self.bytes_on_wire,
            "encode_seconds": self.encode_seconds,
            "entries_per_frame": (
                self.entries / self.frames if self.frames else 0.0
            ),
        }


class WireWriter:
    """Codec + size/time-bounded batching over one outbound stream.

    Messages are encoded immediately (so encode cost is attributed to
    the sender's turn and the interning table advances in send order)
    and the payload bytes are queued.  The queue is flushed into one
    frame when it reaches ``flush_max_bytes``, when the ``flush_after``
    timer (armed at the first queued payload) fires, or explicitly via
    :meth:`send_now`/:meth:`flush`.  ``flush_after=None`` disables
    batching: every payload is written as its own frame, and a json
    codec degenerates to the byte-identical legacy (length-prefixed)
    wire — the E22 fallback.
    """

    def __init__(
        self,
        wire: Wire,
        max_frame: int = MAX_FRAME,
        flush_after: float | None = None,
        flush_max_bytes: int = 1 << 16,
        schedule: Callable[[float, Callable[[], None]], Any] | None = None,
        stats: WriterStats | None = None,
    ) -> None:
        if flush_max_bytes > max_frame // 2:
            flush_max_bytes = max_frame // 2
        self.wire = wire
        self.max_frame = max_frame
        self.flush_after = flush_after
        self.flush_max_bytes = flush_max_bytes
        self._schedule = schedule
        self._write: Callable[[bytes], None] | None = None
        self._pending: list[bytes] = []
        self._pending_bytes = 0
        self._timer: Any = None
        #: May be shared between writers (one aggregate per codec at the
        #: transport level); all access is on the event-loop thread.
        self.stats = stats if stats is not None else WriterStats()

    # ------------------------------------------------------------------
    @property
    def connected(self) -> bool:
        return self._write is not None

    def set_schedule(
        self, schedule: Callable[[float, Callable[[], None]], Any]
    ) -> None:
        """Late-bind the timer source (callers that construct the
        writer before their event loop exists)."""
        self._schedule = schedule

    def attach(self, write: Callable[[bytes], None]) -> None:
        """Bind a (re)connected stream; per-connection codec state and
        any payloads queued for the dead stream are dropped (they were
        encoded against the old interning table)."""
        self._drop_pending()
        self.wire.reset()
        self._write = write

    def detach(self) -> None:
        self._drop_pending()
        self._write = None

    def _drop_pending(self) -> None:
        self._pending.clear()
        self._pending_bytes = 0
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None

    # ------------------------------------------------------------------
    def send(self, message: Any) -> bool:
        """Encode and queue (or write) one message; False when no
        stream is attached (the message is dropped, as a disconnected
        legacy send would be)."""
        if self._write is None:
            return False
        start = time.perf_counter()
        payload = self.wire.encode(message, self.max_frame)
        self.stats.encode_seconds += time.perf_counter() - start
        if self.flush_after is None or self._schedule is None:
            self._emit([payload])
            return True
        if (
            self._pending
            and self._pending_bytes + len(payload) > self.flush_max_bytes
        ):
            self.flush()
        self._pending.append(payload)
        self._pending_bytes += len(payload)
        if self._pending_bytes >= self.flush_max_bytes:
            self.flush()
        elif self._timer is None:
            self._timer = self._schedule(self.flush_after, self.flush)
        return True

    def send_now(self, message: Any) -> bool:
        """Send with an immediate flush (control-plane requests that
        expect a reply must not sit in the batch queue)."""
        ok = self.send(message)
        self.flush()
        return ok

    def flush(self) -> None:
        """Write everything queued as one frame."""
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None
        if not self._pending or self._write is None:
            self._pending.clear()
            self._pending_bytes = 0
            return
        payloads = self._pending
        self._pending = []
        self._pending_bytes = 0
        self.stats.flushes += 1
        self._emit(payloads)

    def _emit(self, payloads: list[bytes]) -> None:
        write = self._write
        assert write is not None
        if len(payloads) == 1 and self.wire.codec_id == CODEC_JSON:
            # Single json payload: the byte-identical legacy frame.
            frame = encode_frame(payloads[0], self.max_frame)
        elif len(payloads) == 1:
            frame = encode_wire_frame(
                payloads[0], self.wire.codec_id, 0, self.max_frame
            )
        else:
            frame = encode_wire_frame(
                pack_batch(payloads),
                self.wire.codec_id,
                FLAG_BATCH,
                self.max_frame,
            )
            self.stats.batches += 1
        write(frame)
        self.stats.frames += 1
        self.stats.entries += len(payloads)
        self.stats.bytes_on_wire += len(frame)


# ----------------------------------------------------------------------
# Reading side
# ----------------------------------------------------------------------
@dataclass
class ReaderStats:
    """What one :class:`WireReader` took off the wire."""

    frames: int = 0
    entries: int = 0
    batches: int = 0
    bytes_on_wire: int = 0
    decode_seconds: float = 0.0

    def merge(self, other: ReaderStats) -> None:
        self.frames += other.frames
        self.entries += other.entries
        self.batches += other.batches
        self.bytes_on_wire += other.bytes_on_wire
        self.decode_seconds += other.decode_seconds

    def to_dict(self) -> dict[str, Any]:
        return {
            "frames": self.frames,
            "entries": self.entries,
            "batches": self.batches,
            "bytes_on_wire": self.bytes_on_wire,
            "decode_seconds": self.decode_seconds,
            "entries_per_frame": (
                self.entries / self.frames if self.frames else 0.0
            ),
        }


class WireReader:
    """Incremental frame reassembly + per-codec payload decoding for
    one inbound stream.  Codec state (the binary interning table) lives
    for the stream's lifetime, exactly mirroring the sender.  Stats are
    kept per codec name and may be shared across connections (the
    transport hands every reader one aggregate dict)."""

    def __init__(
        self,
        max_frame: int = MAX_FRAME,
        stats: dict[str, ReaderStats] | None = None,
    ) -> None:
        self._decoder = WireDecoder(max_frame)
        self._wires: dict[int, Wire] = {}
        self.stats: dict[str, ReaderStats] = stats if stats is not None else {}

    def _wire(self, codec: int) -> Wire:
        wire = self._wires.get(codec)
        if wire is None:
            wire = wire_for_codec(codec)
            self._wires[codec] = wire
        return wire

    def feed(self, data: bytes) -> list[Any]:
        """Absorb stream bytes; return every decoded message.

        Raises :class:`FrameError` on any framing or payload error —
        with stateful interning a partially-decoded stream cannot be
        safely resumed, so the caller must drop the connection.
        """
        messages: list[Any] = []
        for frame in self._decoder.feed(data):
            wire = self._wire(frame.codec)
            stats = self.stats.get(wire.name)
            if stats is None:
                stats = self.stats[wire.name] = ReaderStats()
            stats.frames += 1
            stats.bytes_on_wire += len(frame.payload)
            if frame.flags & FLAG_BATCH:
                payloads = unpack_batch(frame.payload)
                stats.batches += 1
            else:
                payloads = [frame.payload]
            start = time.perf_counter()
            for payload in payloads:
                messages.append(wire.decode(payload))
            stats.decode_seconds += time.perf_counter() - start
            stats.entries += len(payloads)
        return messages
