"""One live ring member as a daemon process: ``python -m repro.rt.node``.

The node hosts the *unmodified* protocol stack — a
:class:`~repro.membership.ring.RingMember` over a
:class:`~repro.rt.transport.LiveNetwork`, with a
:class:`~repro.core.vstoto.runtime.VStoTORuntime` on top for TO
semantics — and exposes a small control plane to the cluster driver:

- ``go`` — start the ring (replied once every outbound peer stream is
  up, giving the driver a clean synchronized launch);
- ``send`` — submit one client value (the TO ``bcast`` input);
- ``block`` / ``unblock`` — firewall peers (partition injection);
- ``stats`` — reply with live protocol/transport counters;
- ``stop`` — flush the event log, write the final report, exit.

Every VS and TO external event is appended to
``<log-dir>/<id>.events.jsonl`` (see :mod:`repro.rt.trace`); on stop a
``<id>.report.json`` records transport counters, ring statistics and
the rendered ``repro.obs`` metrics so live runs are observable with
the same vocabulary as simulated ones.

Usage::

    python -m repro.rt.node --id p1 \\
        --peers p1=127.0.0.1:9101,p2=127.0.0.1:9102,p3=127.0.0.1:9103 \\
        --log-dir /tmp/cluster-logs --delta 0.05
"""

from __future__ import annotations

import argparse
import asyncio
import functools
import json
import time
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Any, cast
from collections.abc import Callable

if TYPE_CHECKING:  # structural stand-in: the runtime only uses the
    from repro.membership.service import TokenRingVS  # TokenRingVS surface

from repro.core.quorums import MajorityQuorumSystem
from repro.core.types import View
from repro.core.vstoto.runtime import VStoTORuntime
from repro.membership.ring import RingConfig, RingMember
from repro.obs import Observability
from repro.obs.live.snapshot import MetricsSnapshot
from repro.rt.clock import LiveScheduler
from repro.rt.trace import EventLog
from repro.rt.transport import Ctl, LiveNetwork
from repro.shard.live import GroupDemux, GroupNet
from repro.shard.routing import group_names

#: Callback signatures mirrored from TokenRingVS (the runtime installs
#: its sinks on these attributes).
DeliveryCallback = Callable[[Any, str, str], None]
ViewCallback = Callable[[View, str], None]


def initial_view_for(processors: tuple[str, ...]) -> View:
    """The hybrid initial view v0 every node starts from: whole group,
    id (0, min) — identical to the TokenRingVS default, so live and
    simulated runs share their base case."""
    return View((0, min(processors)), frozenset(processors))


class LiveNodeService:
    """The per-node VS service façade.

    Presents the slice of :class:`~repro.membership.service.TokenRingVS`
    that :class:`~repro.membership.ring.RingMember` (RingService
    protocol) and :class:`~repro.core.vstoto.runtime.VStoTORuntime`
    consume, backed by one live transport and one local ring member.
    Every VS external event at this node is recorded to the event log
    before being forwarded.
    """

    def __init__(
        self,
        proc_id: str,
        network: LiveNetwork,
        log: EventLog | None = None,
        obs: Observability | None = None,
    ) -> None:
        self.proc_id = proc_id
        self.network = network
        self.simulator = network.simulator
        self.processors: tuple[str, ...] = network.processors
        self.initial_view = initial_view_for(self.processors)
        self.log = log
        self.obs = obs
        self.member: RingMember | None = None
        self.on_gprcv: DeliveryCallback | None = None
        self.on_safe: DeliveryCallback | None = None
        self.on_newview: ViewCallback | None = None
        self._tracer = obs.tracer if obs is not None else None
        if self._tracer is not None:
            self._tracer.set_initial_view(self.initial_view)

    # -- TokenRingVS-compatible client surface -------------------------
    def start(self) -> None:
        if self.member is not None:
            self.member.start()

    def gpsnd(self, p: str, payload: Any) -> None:
        """Client send at this node (p must be the local processor)."""
        assert p == self.proc_id, f"live node {self.proc_id!r} cannot send as {p!r}"
        self._record("gpsnd", payload, p)
        assert self.member is not None
        self.member.gpsnd(payload)

    def current_view(self, p: str) -> View | None:
        assert self.member is not None
        return self.member.view

    # -- RingService emission ------------------------------------------
    def emit_newview(self, view: View, p: str) -> None:
        self._record("newview", view, p)
        if self.on_newview is not None:
            self.on_newview(view, p)

    def emit_gprcv(self, payload: Any, src: str, dst: str) -> None:
        self._record("gprcv", payload, src, dst)
        if self.on_gprcv is not None:
            self.on_gprcv(payload, src, dst)

    def emit_safe(self, payload: Any, src: str, dst: str) -> None:
        self._record("safe", payload, src, dst)
        if self.on_safe is not None:
            self.on_safe(payload, src, dst)

    def _record(self, name: str, *args: Any) -> None:
        if self.log is not None:
            self.log.record(name, *args)
        if self._tracer is not None:
            self._tracer.on_vs_event(self.simulator.now, name, args)


@dataclass
class _GroupStack:
    """One hosted group's full per-node stack (log through runtime)."""

    group: str
    log: EventLog
    service: LiveNodeService
    member: RingMember
    runtime: VStoTORuntime


class LiveNode:
    """The assembled node: transport + ring + VStoTO + control plane.

    With ``shards > 1`` the node hosts that many complete group stacks
    (ring member + VStoTO runtime + event log per group) over the one
    transport, multiplexed by :class:`~repro.shard.live.ShardEnvelope`
    frames; ``shards == 1`` keeps the pre-sharding wire byte-identical
    (no envelope, member registered directly).
    """

    def __init__(
        self,
        proc_id: str,
        peers: dict[str, tuple[str, int]],
        log_dir: str | Path,
        config: RingConfig | None = None,
        max_frame: int | None = None,
        wire: str = "json",
        flush_after: float | None = None,
        shards: int = 1,
    ) -> None:
        self.proc_id = proc_id
        self.config = config if config is not None else default_ring_config()
        self.shards = max(1, shards)
        loop = asyncio.get_event_loop()
        self.scheduler = LiveScheduler(loop)
        kwargs: dict[str, Any] = {}
        if max_frame is not None:
            kwargs["max_frame"] = max_frame
        self.network = LiveNetwork(
            proc_id,
            peers,
            self.scheduler,
            on_ctl=self._on_ctl,
            wire=wire,
            flush_after=flush_after,
            **kwargs,
        )
        self.log_dir = Path(log_dir)
        self.log_dir.mkdir(parents=True, exist_ok=True)
        # Span stitching reads one lifecycle tracer per node; with many
        # groups interleaving on one node the spans would alias, so
        # sharded nodes keep metrics (aggregating across groups) and
        # drop tracing.
        self.obs = Observability(metrics=True, tracing=self.shards == 1)
        self.network.attach_obs(self.obs)
        self._stacks: dict[str, _GroupStack] = {}
        if self.shards == 1:
            stack = self._build_stack(None)
            self.network.register(stack.member)
        else:
            names = group_names(self.shards)
            for name in names:
                self._build_stack(name)
            self.network.register(
                GroupDemux(
                    proc_id,
                    {g: s.member for g, s in self._stacks.items()},
                    default=names[0],
                )
            )
        first = self._stacks[min(self._stacks)]
        self.log = first.log
        self.service = first.service
        self.member = first.member
        self.runtime = first.runtime
        self.started = False
        self.sends_accepted = 0
        self.sends_rejected = 0
        self._snapshot_seq = 0
        self._stopping: asyncio.Future[None] = loop.create_future()

    def _build_stack(self, group: str | None) -> _GroupStack:
        """Assemble one group's log/service/member/runtime.  ``None``
        is the unsharded stack: legacy log name, bare transport."""
        name = group if group is not None else "g0"
        suffix = "" if group is None else f"@{group}"
        log = EventLog(
            self.log_dir / f"{self.proc_id}{suffix}.events.jsonl", self.proc_id
        )
        net = self.network if group is None else GroupNet(group, self.network)
        service = LiveNodeService(
            self.proc_id, cast(LiveNetwork, net), log, self.obs
        )
        member = RingMember(
            self.proc_id, service, self.config, service.initial_view
        )
        member.attach_obs(self.obs)
        service.member = member
        runtime = VStoTORuntime(
            cast("TokenRingVS", service),
            MajorityQuorumSystem(self.network.processors),
            on_deliver=functools.partial(self._on_deliver, log),
        )
        stack = _GroupStack(name, log, service, member, runtime)
        self._stacks[name] = stack
        return stack

    # ------------------------------------------------------------------
    async def start(self) -> None:
        await self.network.start()

    async def run_until_stopped(self) -> None:
        await self._stopping

    def _on_deliver(
        self, log: EventLog, value: Any, origin: str, dst: str
    ) -> None:
        log.record("brcv", value, origin, dst)

    # ------------------------------------------------------------------
    # Control plane
    # ------------------------------------------------------------------
    async def _on_ctl(
        self, src: str, ctl: Ctl, reply: Callable[[Ctl], None]
    ) -> None:
        if ctl.op == "go":
            await self.network.wait_connected(timeout=10.0)
            if not self.started:
                self.started = True
                for name in sorted(self._stacks):
                    self._stacks[name].member.start()
            reply(Ctl("ok", {"op": "go", "node": self.proc_id}))
        elif ctl.op == "send":
            group, value = self._parse_send(ctl.data)
            stack = self._stacks.get(group)
            if stack is None:
                self.sends_rejected += 1
                return
            self.sends_accepted += 1
            stack.log.record("bcast", value, self.proc_id)
            stack.runtime.broadcast(self.proc_id, value)
        elif ctl.op == "block":
            self.network.block(ctl.data or ())
            reply(Ctl("ok", {"op": "block", "blocked": sorted(self.network.blocked)}))
        elif ctl.op == "unblock":
            self.network.unblock(ctl.data)
            reply(Ctl("ok", {"op": "unblock", "blocked": sorted(self.network.blocked)}))
        elif ctl.op == "stats":
            reply(Ctl("stats", {**self.stats(), "snapshot": self.snapshot()}))
        elif ctl.op == "ping":
            reply(Ctl("ok", {"op": "ping", "node": self.proc_id}))
        elif ctl.op == "stop":
            self._write_report()
            reply(Ctl("ok", {"op": "stop", "node": self.proc_id}))
            # Let the reply frame flush before tearing the loop down.
            loop = asyncio.get_running_loop()
            loop.call_later(0.05, self._finish)

    def _finish(self) -> None:
        if not self._stopping.done():
            self._stopping.set_result(None)

    def _parse_send(self, data: Any) -> tuple[str, Any]:
        """Resolve a client send to ``(group, value)``.  Sharded nodes
        accept the dict form ``{"g": group, "v": value}``; a bare value
        (or any send on an unsharded node) goes to the first group."""
        if (
            self.shards > 1
            and isinstance(data, dict)
            and "g" in data
        ):
            return str(data["g"]), data.get("v")
        return min(self._stacks), data

    # ------------------------------------------------------------------
    def _stack_stats(self, stack: _GroupStack) -> dict[str, Any]:
        """One group stack's counters (the legacy per-node shape)."""
        member = stack.member
        view = member.view
        return {
            "view": list(view.id) if view is not None else None,
            "view_size": len(view.set) if view is not None else 0,
            "delivered": len(stack.runtime.deliveries),
            "events_recorded": stack.log.events_recorded,
            "formations": member.formations_initiated,
            "tokens_processed": member.tokens_processed,
            "duplicates_suppressed": member.duplicates_suppressed,
            "token": {
                "forwards": member.token_forwards,
                "entries_sent": member.token_entries_sent,
                "entries_max": member.token_entries_max,
                "resyncs": member.token_resyncs,
                "entries_appended": member.token_entries_appended,
                "append_batches": member.token_append_batches,
                "append_max": member.token_append_max,
                "entries_per_batch": (
                    member.token_entries_appended / member.token_append_batches
                    if member.token_append_batches
                    else 0.0
                ),
            },
        }

    def stats(self) -> dict[str, Any]:
        """Live counters: ring, TO deliveries, transport, event log.
        Sharded nodes aggregate across groups and add a per-group
        breakdown under ``"groups"``."""
        out: dict[str, Any] = {
            "node": self.proc_id,
            "sends_accepted": self.sends_accepted,
        }
        if self.shards == 1:
            out.update(self._stack_stats(next(iter(self._stacks.values()))))
        else:
            per = {
                name: self._stack_stats(self._stacks[name])
                for name in sorted(self._stacks)
            }
            first = per[min(per)]
            token_totals = {
                key: sum(g["token"][key] for g in per.values())
                for key in first["token"]
                if key != "entries_per_batch"
            }
            batches = token_totals["append_batches"]
            token_totals["entries_per_batch"] = (
                token_totals["entries_appended"] / batches if batches else 0.0
            )
            out.update(
                {
                    "shards": self.shards,
                    "view": first["view"],
                    "view_size": first["view_size"],
                    "delivered": sum(g["delivered"] for g in per.values()),
                    "events_recorded": sum(
                        g["events_recorded"] for g in per.values()
                    ),
                    "formations": sum(g["formations"] for g in per.values()),
                    "tokens_processed": sum(
                        g["tokens_processed"] for g in per.values()
                    ),
                    "duplicates_suppressed": sum(
                        g["duplicates_suppressed"] for g in per.values()
                    ),
                    "token": token_totals,
                    "groups": per,
                }
            )
        out["transport"] = self.network.stats()
        return out

    def snapshot(self) -> dict[str, Any]:
        """One typed metrics snapshot frame: the full registry plus a
        per-node sequence number and this node's clocks.  ``ts`` is the
        same wall clock the event log stamps, so the driver's metrics
        timeline and the stitched spans share one time base."""
        self._snapshot_seq += 1
        metrics = (
            self.obs.metrics.to_dict() if self.obs.metrics is not None else {}
        )
        return MetricsSnapshot(
            node=self.proc_id,
            seq=self._snapshot_seq,
            ts=time.time(),
            uptime=self.scheduler.now,
            metrics=metrics,
        ).to_dict()

    def _write_report(self) -> None:
        report = {
            "stats": self.stats(),
            "metrics": (
                self.obs.metrics.render_text() if self.obs.metrics else ""
            ),
        }
        path = self.log_dir / f"{self.proc_id}.report.json"
        path.write_text(json.dumps(report, indent=2), encoding="utf-8")

    async def close(self) -> None:
        for name in sorted(self._stacks):
            self._stacks[name].log.close()
        await self.network.close()


def default_ring_config(delta: float = 0.05) -> RingConfig:
    """Live timing: δ is the assumed one-hop bound (50 ms is generous
    for loopback TCP); π and μ scale from it as in the Section 8
    sketch.  Work-conserving keeps delivery latency at circulation
    speed instead of π ticks; one blind retransmission covers frames
    lost to a connection riding through a partition edge."""
    return RingConfig(
        delta=delta,
        pi=4 * delta,
        mu=20 * delta,
        work_conserving=True,
        retransmit_attempts=2,
    )


def parse_peers(spec: str) -> dict[str, tuple[str, int]]:
    """Parse ``p1=host:port,p2=host:port,...``."""
    peers: dict[str, tuple[str, int]] = {}
    for part in spec.split(","):
        part = part.strip()
        if not part:
            continue
        name, _, addr = part.partition("=")
        host, _, port = addr.rpartition(":")
        if not name or not host or not port:
            raise ValueError(f"bad peer spec {part!r} (want id=host:port)")
        peers[name] = (host, int(port))
    if len(peers) < 2:
        raise ValueError("need at least two peers")
    return peers


def build_arg_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.rt.node",
        description="Host one live ring member (VS + VStoTO over TCP).",
    )
    parser.add_argument("--id", required=True, help="this node's processor id")
    parser.add_argument(
        "--peers",
        required=True,
        help="comma-separated id=host:port for every processor (incl. self)",
    )
    parser.add_argument(
        "--log-dir", required=True, help="directory for event logs and reports"
    )
    parser.add_argument(
        "--delta",
        type=float,
        default=0.05,
        help="assumed one-hop delivery bound in seconds (default 0.05)",
    )
    parser.add_argument(
        "--max-frame",
        type=int,
        default=None,
        help="frame size ceiling in bytes (default 1 MiB)",
    )
    parser.add_argument(
        "--wire",
        choices=("json", "binary"),
        default="json",
        help="outbound wire codec (default json; inbound is auto-"
        "detected per frame, so mixed clusters interoperate)",
    )
    parser.add_argument(
        "--shards",
        type=int,
        default=1,
        help="number of VS group runtimes to host on this node "
        "(default 1: the unsharded byte-identical wire)",
    )
    parser.add_argument(
        "--flush-interval",
        type=float,
        default=-1.0,
        help="batching window in seconds for outbound frames; 0 "
        "coalesces same-loop-turn sends without added latency, "
        "negative means auto (binary: 0, json: off)",
    )
    return parser


def resolve_flush_after(wire: str, flush_interval: float) -> float | None:
    """The CLI's auto rule: a negative interval picks the codec's
    default (binary batches within the loop turn; json stays on the
    byte-identical legacy one-frame-per-message wire)."""
    if flush_interval >= 0:
        return flush_interval
    return 0.0 if wire == "binary" else None


async def amain(argv: list[str] | None = None) -> int:
    args = build_arg_parser().parse_args(argv)
    peers = parse_peers(args.peers)
    if args.id not in peers:
        raise SystemExit(f"--id {args.id!r} not present in --peers")
    node = LiveNode(
        args.id,
        peers,
        args.log_dir,
        config=default_ring_config(args.delta),
        max_frame=args.max_frame,
        wire=args.wire,
        flush_after=resolve_flush_after(args.wire, args.flush_interval),
        shards=args.shards,
    )
    await node.start()
    try:
        await node.run_until_stopped()
    finally:
        await node.close()
    return 0


def main(argv: list[str] | None = None) -> int:
    return asyncio.run(amain(argv))


if __name__ == "__main__":
    raise SystemExit(main())
