"""A Simulator-shaped timer facade over the asyncio event loop.

The protocol objects (:class:`~repro.membership.ring.RingMember`, the
timers in :mod:`repro.sim.timers`, :class:`~repro.core.vstoto.runtime.
VStoTORuntime`) talk to time through a narrow surface of
:class:`~repro.sim.engine.Simulator`: ``now``, ``schedule``,
``schedule_at``, ``call_soon`` and the returned handle's ``cancel`` /
``cancelled`` / ``time``.  :class:`LiveScheduler` implements exactly
that surface on ``asyncio``, so the same protocol code runs unmodified
over real time — a π of 0.2 means the ring leader launches the token
every 200 ms of wall time.

This module (with the rest of :mod:`repro.rt`) is the sanctioned
wall-clock carve-out of the DET002 determinism rule: live runs are not
replayable from a seed by construction, and their correctness is
checked from captured traces instead (see :mod:`repro.rt.trace`).
"""

from __future__ import annotations

import asyncio
from collections.abc import Callable


class LiveTimerHandle:
    """Duck-types :class:`~repro.sim.engine.EventHandle` over an
    :class:`asyncio.TimerHandle`."""

    __slots__ = ("_handle", "_time", "_cancelled")

    def __init__(self, handle: asyncio.TimerHandle, time: float) -> None:
        self._handle = handle
        self._time = time
        self._cancelled = False

    def cancel(self) -> None:
        self._cancelled = True
        self._handle.cancel()

    @property
    def cancelled(self) -> bool:
        return self._cancelled

    @property
    def time(self) -> float:
        """Scheduled firing time, in the scheduler's clock."""
        return self._time


class LiveScheduler:
    """The Simulator surface protocol code needs, over real time.

    ``now`` is seconds since construction (the loop's monotonic clock,
    rebased to zero so logged protocol times read like the simulator's
    virtual times).  Callbacks run on the event loop thread, which is
    the only thread that touches protocol state — the same
    single-threaded discipline the simulator gives for free.
    """

    def __init__(self, loop: asyncio.AbstractEventLoop | None = None) -> None:
        self._loop = loop if loop is not None else asyncio.get_event_loop()
        self._t0 = self._loop.time()
        self.events_scheduled = 0

    @property
    def now(self) -> float:
        """Seconds since this scheduler was created."""
        return self._loop.time() - self._t0

    def schedule(
        self, delay: float, callback: Callable[[], None]
    ) -> LiveTimerHandle:
        """Run ``callback`` after ``delay`` seconds of real time."""
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        self.events_scheduled += 1
        handle = self._loop.call_later(delay, callback)
        return LiveTimerHandle(handle, self.now + delay)

    def schedule_at(
        self, time: float, callback: Callable[[], None]
    ) -> LiveTimerHandle:
        """Run ``callback`` at an absolute scheduler time."""
        return self.schedule(max(0.0, time - self.now), callback)

    def call_soon(self, callback: Callable[[], None]) -> LiveTimerHandle:
        """Run ``callback`` on the next loop iteration."""
        return self.schedule(0.0, callback)
