"""Per-node event capture and offline verification of live runs.

Each node appends one JSON line per external event to its own log:

``{"ts": <epoch seconds>, "seq": <per-node counter>, "node": <id>,
"ev": <name>, "args": <codec-encoded argument list>}``

Events are the VS interface (``gpsnd``/``gprcv``/``safe``/``newview``)
and the TO interface (``bcast``/``brcv``) — exactly the external
actions the specifications constrain.  The file is line-buffered so a
SIGKILL loses at most the event being written; a killed node's log is
a valid prefix, which is all trace inclusion needs.

:func:`load_event_logs` merges the per-node files into one global
sequence ordered by ``(ts, node, seq)``.  All nodes run on one host in
the supported deployment, so timestamps come from a single clock; the
protocol's causal gaps (a token hop, a TCP round trip) are orders of
magnitude above its resolution.

:func:`verify_events` then replays the merged sequence through the
*same* checkers the simulator uses — :class:`~repro.core.monitor.
OnlineVSMonitor` in permissive mode for the VS events and
:func:`~repro.core.to_spec.check_to_trace` for TO-machine trace
membership — and derives throughput/latency figures from the
``bcast``/``brcv`` timestamps.  This closes the loop the ISSUE asks
for: live runs are verified against the same specs as simulated ones.
"""

from __future__ import annotations

import hashlib
import json
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, TextIO
from collections.abc import Iterable, Sequence

from repro.core.monitor import OnlineVSMonitor
from repro.core.to_spec import check_to_trace
from repro.core.types import View
from repro.ioa.actions import Action, act
from repro.rt.framing import decode_value, encode_value

#: Event names captured at the VS layer (fed to OnlineVSMonitor).
VS_EVENTS = ("gpsnd", "gprcv", "safe", "newview")
#: Event names captured at the TO layer (fed to check_to_trace).
TO_EVENTS = ("bcast", "brcv")


class EventLog:
    """Append-only JSONL capture of one node's external events."""

    def __init__(self, path: str | Path, node: str) -> None:
        self.path = Path(path)
        self.node = node
        self._seq = 0
        self._file: TextIO = open(self.path, "w", buffering=1, encoding="utf-8")

    def record(self, name: str, *args: Any) -> None:
        """Append one event, stamped with the shared host clock."""
        self._seq += 1
        entry = {
            "ts": time.time(),
            "seq": self._seq,
            "node": self.node,
            "ev": name,
            "args": [encode_value(a) for a in args],
        }
        self._file.write(json.dumps(entry, separators=(",", ":")) + "\n")

    def close(self) -> None:
        self._file.close()

    @property
    def events_recorded(self) -> int:
        return self._seq


def load_event_logs(paths: Iterable[str | Path]) -> list[dict[str, Any]]:
    """Merge per-node JSONL logs into one time-ordered event list.

    Argument lists are decoded back to protocol values (tuples, views).
    A trailing partial line (a node killed mid-write) is skipped.
    """
    events: list[dict[str, Any]] = []
    for path in paths:
        with open(path, encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    entry = json.loads(line)
                except json.JSONDecodeError:
                    continue  # torn tail write of a killed node
                entry["args"] = [decode_value(a) for a in entry["args"]]
                events.append(entry)
    events.sort(key=lambda e: (e["ts"], str(e["node"]), e["seq"]))
    return events


@dataclass
class VerifyReport:
    """Verdict and measurements over one captured live run."""

    processors: tuple[str, ...]
    events: int = 0
    #: VS-level conformance violations (must be empty).
    violations: list[str] = field(default_factory=list)
    to_ok: bool = True
    to_reason: str = ""
    sends: int = 0
    deliveries: int = 0
    views_installed: int = 0
    #: every bcast value delivered at every processor in ``expect_at``.
    delivered_complete: bool = False
    #: wall seconds from first bcast to last brcv.
    span_seconds: float = 0.0
    #: brcv events per wall second over the span.
    throughput: float = 0.0
    #: per-delivery latency (brcv ts - bcast ts), summary stats.
    latency: dict[str, float] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return not self.violations and self.to_ok

    def to_dict(self) -> dict[str, Any]:
        return {
            "processors": list(self.processors),
            "events": self.events,
            "violations": list(self.violations),
            "to_ok": self.to_ok,
            "to_reason": self.to_reason,
            "sends": self.sends,
            "deliveries": self.deliveries,
            "views_installed": self.views_installed,
            "delivered_complete": self.delivered_complete,
            "span_seconds": self.span_seconds,
            "throughput": self.throughput,
            "latency": dict(self.latency),
            "ok": self.ok,
        }


def _latency_stats(samples: Sequence[float]) -> dict[str, float]:
    if not samples:
        return {}
    ordered = sorted(samples)
    n = len(ordered)
    return {
        "count": float(n),
        "mean": sum(ordered) / n,
        "p50": ordered[n // 2],
        "p95": ordered[min(n - 1, (n * 95) // 100)],
        "p99": ordered[min(n - 1, (n * 99) // 100)],
        "max": ordered[-1],
    }


def verify_events(
    events: Sequence[dict[str, Any]],
    processors: Iterable[str],
    initial_view: View,
    expect_at: Iterable[str] | None = None,
) -> VerifyReport:
    """Check a merged live capture against the VS and TO specifications.

    ``expect_at`` names the processors required to have delivered every
    broadcast value for ``delivered_complete`` (default: all of them;
    pass the survivors when the run killed nodes).
    """
    procs = tuple(sorted(processors))
    report = VerifyReport(processors=procs, events=len(events))
    monitor = OnlineVSMonitor(procs, initial_view, strict=False)
    to_actions: list[Action] = []
    bcast_ts: dict[Any, float] = {}
    bcast_values: list[Any] = []
    delivered_at: dict[str, list[Any]] = {p: [] for p in procs}
    latencies: list[float] = []
    first_bcast: float | None = None
    last_brcv: float | None = None

    for entry in events:
        name, args, ts = entry["ev"], entry["args"], entry["ts"]
        if name == "newview":
            view, p = args
            monitor.on_newview(view, p)
            report.views_installed += 1
        elif name == "gpsnd":
            payload, p = args
            monitor.on_gpsnd(payload, p)
        elif name == "gprcv":
            payload, src, dst = args
            monitor.on_gprcv(payload, src, dst)
        elif name == "safe":
            payload, src, dst = args
            monitor.on_safe(payload, src, dst)
        elif name == "bcast":
            value, p = args
            to_actions.append(act("bcast", value, p))
            report.sends += 1
            bcast_ts.setdefault(value, ts)
            bcast_values.append(value)
            if first_bcast is None:
                first_bcast = ts
        elif name == "brcv":
            value, origin, dst = args
            to_actions.append(act("brcv", value, origin, dst))
            report.deliveries += 1
            delivered_at[dst].append(value)
            last_brcv = ts
            if value in bcast_ts:
                latencies.append(ts - bcast_ts[value])

    report.violations = list(monitor.violations)
    to_report = check_to_trace(to_actions, procs)
    report.to_ok = to_report.ok
    report.to_reason = to_report.reason

    required = tuple(sorted(expect_at)) if expect_at is not None else procs
    report.delivered_complete = bool(bcast_values) and all(
        set(bcast_values) <= set(delivered_at[p]) for p in required
    )
    if first_bcast is not None and last_brcv is not None and last_brcv > first_bcast:
        report.span_seconds = last_brcv - first_bcast
        report.throughput = report.deliveries / report.span_seconds
    report.latency = _latency_stats(latencies)
    return report


def verify_log_dir(
    log_dir: str | Path,
    processors: Iterable[str],
    initial_view: View,
    expect_at: Iterable[str] | None = None,
) -> VerifyReport:
    """Convenience: merge every ``*.events.jsonl`` under ``log_dir``
    and verify the result."""
    paths = sorted(Path(log_dir).glob("*.events.jsonl"))
    events = load_event_logs(paths)
    return verify_events(events, processors, initial_view, expect_at)


def content_digest(events: Sequence[dict[str, Any]]) -> str:
    """A timing-independent digest of *what* a live run did.

    Live executions are wall-clock scheduled, so two runs of the same
    seeded scenario never produce byte-identical logs — but they must
    agree on the TO client contract: which values were broadcast, and
    the exact multiset each node delivered (``brcv``, value + origin).
    The digest hashes exactly that, canonically ordered and stripped of
    timestamps/sequence numbers, so a json-wire run and a binary-wire
    run of one scenario must collide iff the codecs are equivalent end
    to end (encode → wire → decode → protocol → event log).

    VS-internal traffic (``gprcv``) is deliberately excluded: its
    state-exchange Summary payloads depend on where view formation cut
    each run's timeline, so they differ between two runs of *one* codec
    and cannot witness codec equivalence.
    """
    bcast: list[Any] = []
    brcv: dict[str, list[Any]] = {}
    for entry in events:
        name, args = entry["ev"], entry["args"]
        if name == "bcast":
            value, _p = args
            bcast.append(encode_value(value))
        elif name == "brcv":
            value, origin, dst = args
            brcv.setdefault(dst, []).append(encode_value((value, origin)))
    doc = {
        "bcast": sorted(bcast, key=repr),
        "brcv": {p: sorted(brcv[p], key=repr) for p in sorted(brcv)},
    }
    blob = json.dumps(doc, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def content_digest_for_dir(log_dir: str | Path) -> str:
    """The content digest of every event log under ``log_dir``."""
    paths = sorted(Path(log_dir).glob("*.events.jsonl"))
    return content_digest(load_event_logs(paths))
