"""Wire format of the live transport: frames and the message codec.

A *frame* is a 4-byte big-endian length prefix followed by that many
payload bytes.  :class:`FrameDecoder` reassembles frames from an
arbitrary sequence of reads (TCP gives no message boundaries) and
rejects frames above a configurable ceiling before buffering them, so a
corrupt or hostile peer cannot make a node allocate unbounded memory.

The *payload* is a JSON document produced by :func:`encode_message`.
JSON alone cannot round-trip the protocol's value shapes (tuples vs
lists, frozensets, view records, the bottom element), so composite
values are tagged:

- ``{"!": "t", "v": [...]}`` — tuple;
- ``{"!": "fs", "v": [...]}`` — frozenset (elements sorted by their
  encoded form, so encoding is deterministic);
- ``{"!": "d", "v": [[k, v], ...]}`` — dict (insertion order kept,
  keys may be any encodable value);
- ``{"!": "view", "id": ..., "set": [...]}`` — a
  :class:`~repro.core.types.View`;
- ``{"!": "bot"}`` — :data:`~repro.core.types.BOTTOM`;
- ``{"!": "m", "m": name, "f": {...}}`` — a registered protocol
  dataclass (membership messages, VStoTO labels and summaries,
  transport control records).

Scalars (``None``/bool/int/float/str) and plain lists pass through
unchanged.  The registry covers every message the ring and the cluster
control plane put on the wire; nesting works (a
:class:`~repro.membership.messages.Sequenced` wraps another message, a
token's order entries are tuples of payload and origin).
"""

from __future__ import annotations

import dataclasses
import json
import struct
from typing import Any

from repro.core.types import BOTTOM, Bottom, Label, View
from repro.core.vstoto.summary import Summary
from repro.membership.messages import (
    Accept,
    Join,
    NewGroup,
    Probe,
    Sequenced,
    Token,
)

#: Default ceiling on one frame's payload size.  A steady-state token
#: carries O(new entries); even a full-history resync for thousands of
#: small messages fits comfortably below 1 MiB.
MAX_FRAME = 1 << 20

_HEADER = struct.Struct(">I")


class FrameError(ValueError):
    """A frame violated the wire format (oversized or malformed)."""


def encode_frame(payload: bytes, max_frame: int = MAX_FRAME) -> bytes:
    """Prefix ``payload`` with its length; reject oversized payloads."""
    if len(payload) > max_frame:
        raise FrameError(
            f"frame payload of {len(payload)} bytes exceeds the "
            f"{max_frame}-byte ceiling"
        )
    return _HEADER.pack(len(payload)) + payload


#: Compact the decode buffer once this many consumed bytes accumulate
#: ahead of the cursor (amortises the one memmove over many frames).
_COMPACT_THRESHOLD = 1 << 16


class FrameDecoder:
    """Incremental frame reassembly over a byte stream.

    Feed it whatever the socket produced — half a header, three frames
    and a tail, one byte at a time — and it yields complete payloads in
    order.  State is one buffer, a consumed-prefix cursor and the
    expected length; a declared length above ``max_frame`` raises
    :class:`FrameError` immediately, *before* any of the oversized
    payload is buffered.

    The cursor matters for cost: consuming a frame advances an offset
    instead of deleting the buffer's prefix (which memmoves everything
    behind it — quadratic when one read carries thousands of frames).
    The consumed prefix is dropped in one ``del`` per feed, and only
    once it exceeds a threshold, so a feed of F frames costs O(bytes)
    rather than O(F · bytes).
    """

    def __init__(self, max_frame: int = MAX_FRAME) -> None:
        self.max_frame = max_frame
        self._buffer = bytearray()
        self._pos = 0
        self._expect: int | None = None
        self.frames_decoded = 0
        self.bytes_fed = 0

    def feed(self, data: bytes) -> list[bytes]:
        """Absorb ``data``; return every frame completed by it."""
        self.bytes_fed += len(data)
        buffer = self._buffer
        buffer.extend(data)
        pos = self._pos
        out: list[bytes] = []
        try:
            while True:
                if self._expect is None:
                    if len(buffer) - pos < _HEADER.size:
                        break
                    (length,) = _HEADER.unpack_from(buffer, pos)
                    if length > self.max_frame:
                        raise FrameError(
                            f"incoming frame declares {length} bytes, above "
                            f"the {self.max_frame}-byte ceiling"
                        )
                    pos += _HEADER.size
                    self._expect = length
                if len(buffer) - pos < self._expect:
                    break
                out.append(bytes(buffer[pos : pos + self._expect]))
                pos += self._expect
                self._expect = None
                self.frames_decoded += 1
        finally:
            if pos and (pos == len(buffer) or pos >= _COMPACT_THRESHOLD):
                del buffer[:pos]
                pos = 0
            self._pos = pos
        return out

    @property
    def pending_bytes(self) -> int:
        """Bytes buffered towards an incomplete frame."""
        return len(self._buffer) - self._pos


# ----------------------------------------------------------------------
# Message codec
# ----------------------------------------------------------------------
#: Registered wire dataclasses, by class name.  Control records from
#: :mod:`repro.rt.transport` register themselves at import time via
#: :func:`register_wire_type` (avoiding a circular import).
_REGISTRY: dict[str, type] = {
    cls.__name__: cls
    for cls in (NewGroup, Accept, Join, Probe, Token, Sequenced, Label, Summary)
}
_REGISTERED_TYPES: dict[type, str] = {cls: name for name, cls in _REGISTRY.items()}


def register_wire_type(cls: type) -> type:
    """Add a dataclass to the wire registry (decorator-friendly)."""
    _REGISTRY[cls.__name__] = cls
    _REGISTERED_TYPES[cls] = cls.__name__
    return cls


def registered_wire_types() -> dict[str, type]:
    """Snapshot of the wire registry (name -> class).  The equivalence
    tests sweep this so a newly registered dataclass cannot silently
    miss codec coverage."""
    return dict(_REGISTRY)


def lookup_wire_type(name: str) -> type | None:
    """The registered class for ``name`` (None when unknown)."""
    return _REGISTRY.get(name)


def wire_type_name(cls: type) -> str | None:
    """The registry name of ``cls`` (None when not a wire type)."""
    return _REGISTERED_TYPES.get(cls)


def _enc(value: Any) -> Any:
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if value is BOTTOM or isinstance(value, Bottom):
        return {"!": "bot"}
    kind = _REGISTERED_TYPES.get(type(value))
    if kind is not None:
        fields = {
            f.name: _enc(getattr(value, f.name))
            for f in dataclasses.fields(value)
        }
        return {"!": "m", "m": kind, "f": fields}
    if isinstance(value, View):
        return {
            "!": "view",
            "id": _enc(value.id),
            "set": sorted((_enc(p) for p in value.set), key=repr),
        }
    if isinstance(value, tuple):
        return {"!": "t", "v": [_enc(v) for v in value]}
    if isinstance(value, list):
        return [_enc(v) for v in value]
    if isinstance(value, (set, frozenset)):
        return {"!": "fs", "v": sorted((_enc(v) for v in value), key=repr)}
    if isinstance(value, dict):
        return {"!": "d", "v": [[_enc(k), _enc(v)] for k, v in value.items()]}
    raise FrameError(f"cannot encode value of type {type(value).__name__}: {value!r}")


def _dec(value: Any) -> Any:
    if isinstance(value, list):
        return [_dec(v) for v in value]
    if not isinstance(value, dict):
        return value
    tag = value.get("!")
    if tag == "bot":
        return BOTTOM
    if tag == "t":
        return tuple(_dec(v) for v in value["v"])
    if tag == "fs":
        return frozenset(_dec(v) for v in value["v"])
    if tag == "d":
        return {_dec(k): _dec(v) for k, v in value["v"]}
    if tag == "view":
        return View(_dec(value["id"]), frozenset(_dec(p) for p in value["set"]))
    if tag == "m":
        cls = _REGISTRY.get(value["m"])
        if cls is None:
            raise FrameError(f"unknown wire type {value['m']!r}")
        return cls(**{k: _dec(v) for k, v in value["f"].items()})
    raise FrameError(f"unknown codec tag {tag!r}")


def encode_value(value: Any) -> Any:
    """Public alias of the recursive value encoder (trace capture uses
    it to make event arguments JSON-able)."""
    return _enc(value)


def decode_value(value: Any) -> Any:
    """Inverse of :func:`encode_value`."""
    return _dec(value)


def encode_message(message: Any, max_frame: int = MAX_FRAME) -> bytes:
    """Serialise one protocol message to a framed-ready payload."""
    payload = json.dumps(_enc(message), separators=(",", ":")).encode("utf-8")
    if len(payload) > max_frame:
        raise FrameError(
            f"encoded message of {len(payload)} bytes exceeds the "
            f"{max_frame}-byte frame ceiling"
        )
    return payload


def decode_message(payload: bytes) -> Any:
    """Inverse of :func:`encode_message`."""
    try:
        doc = json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise FrameError(f"undecodable frame payload: {exc}") from exc
    return _dec(doc)
