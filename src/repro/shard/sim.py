"""The DES substrate adapter: many VStoTO groups, one virtual clock.

Each shard is one complete, paper-faithful stack — a
:class:`~repro.apps.totalorder.TotalOrderBroadcast` with its own
simulator, token ring and VStoTO processes — continuously checked by a
permissive :class:`~repro.core.monitor.OnlineVSMonitor`.  Group seeds
derive deterministically from the master seed and the group *name*
(SHA-256, never ``hash()``), so group ``g7`` sees the same channel
randomness whether the service runs 8 or 64 shards, and whether the
groups run sequentially or fanned out over worker processes.

Two execution modes:

- :class:`ShardedSimService` — the closed-loop service: a
  :class:`~repro.shard.router.ShardRouter` in front, per-group windows
  exerting real backpressure (a delivery back at the submitting
  location frees a slot), all groups advanced in lockstep over one
  virtual clock.  This is the mode the isolation tests drive — partition
  one shard and watch the others' windows keep cycling.
- :func:`run_group_workloads` — the open-loop mode for scale sweeps
  (E27): each group's workload is a picklable value, a module-level
  worker runs one group start-to-finish (including verification) and
  returns a :class:`~repro.parallel.RunEnvelope`, and
  :func:`~repro.parallel.parallel_map` fans the groups out across
  processes with results merged in deterministic order.  Because group
  seeds ignore topology, a group's trace here is identical to its trace
  inside the closed-loop service given the same submission schedule.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from collections.abc import Iterable, Mapping, Sequence
from typing import Any

from repro.apps.totalorder import TotalOrderBroadcast
from repro.core.monitor import OnlineVSMonitor
from repro.core.to_spec import TO_EXTERNAL
from repro.ioa.actions import Action
from repro.membership.ring import RingConfig
from repro.net.scenarios import PartitionScenario
from repro.obs import Observability
from repro.parallel import RunEnvelope, make_envelope, parallel_map
from repro.shard.router import ShardRouter
from repro.shard.routing import HashRing, group_names, point_for_key
from repro.shard.verify import (
    ShardOp,
    ShardVerdict,
    check_cross_shard_order,
    make_op,
    verdict_for_group,
)

ProcId = Any


def derive_group_seed(master_seed: int, group: str) -> int:
    """A group's private seed: a 32-bit SHA-256 fold of the master seed
    and the group *name* — stable across processes and topologies."""
    digest = hashlib.sha256(f"{master_seed}|shard-seed|{group}".encode()).digest()
    return int.from_bytes(digest[:4], "big")


def default_processors(count: int) -> tuple[str, ...]:
    """The per-group processor names ``p1 .. p<count>``."""
    if count < 1:
        raise ValueError(f"need at least one processor, got {count}")
    return tuple(f"p{i + 1}" for i in range(count))


class SimShardGroup:
    """One shard: a full TotalOrderBroadcast stack plus its monitor.

    Implements the router's :class:`~repro.shard.router.ShardBackend`
    protocol: ``submit`` broadcasts the operation at the next origin
    location (round-robin), and the origin's own delivery of that
    operation reports completion back to the router — the closed loop
    that makes the per-group window real backpressure.

    Parameters
    ----------
    group:
        The group name (``g0``, ``g1``, ...).
    processors:
        This group's processor identifiers.
    seed:
        The group's private randomness seed (see
        :func:`derive_group_seed`).
    config:
        Ring timing parameters; ``None`` for the stack's defaults.
    router:
        The fronting router to notify on completions (``None`` for
        open-loop use).
    """

    def __init__(
        self,
        group: str,
        processors: Sequence[ProcId],
        seed: int = 0,
        config: RingConfig | None = None,
        router: ShardRouter | None = None,
    ) -> None:
        self._group = group
        self.processors = tuple(processors)
        self.seed = seed
        self.router = router
        self.service = TotalOrderBroadcast(
            self.processors,
            config=config,
            seed=seed,
            on_deliver=self._on_deliver,
        )
        self.monitor = OnlineVSMonitor(
            self.processors, self.service.vs.initial_view, strict=False
        )
        self.monitor.attach(self.service.vs)

    # ------------------------------------------------------------------
    @property
    def group(self) -> str:
        return self._group

    @property
    def now(self) -> float:
        return self.service.now

    def origin_for(self, key: str) -> ProcId:
        """The key's session location.  Every operation on a key enters
        at one fixed processor, so TO's per-sender FIFO turns the
        client's per-key submission order into the delivered order —
        the property the cross-shard checker relies on."""
        return self.processors[point_for_key(key) % len(self.processors)]

    def submit(self, key: str, value: Any) -> None:
        """Broadcast one routed operation at the key's session location."""
        self.service.broadcast(self.origin_for(key), value)

    def _on_deliver(self, value: Any, origin: ProcId, dst: ProcId) -> None:
        # The submitting location's own delivery closes the loop: the
        # operation is totally ordered and applied where it entered.
        if self.router is not None and dst == origin:
            self.router.complete(self._group)

    def run_until(self, time: float) -> None:
        self.service.run_until(time)

    def install_scenario(self, scenario: PartitionScenario) -> None:
        """Script partitions/merges for this shard alone (times are on
        the shared virtual clock — install before running past them)."""
        self.service.install_scenario(scenario)

    # ------------------------------------------------------------------
    def delivered_order(self) -> list[ShardOp]:
        """This shard's total order of operations: the longest delivery
        sequence over its locations (per-shard TO conformance proves all
        locations agree on a common prefix order)."""
        best: list[ShardOp] = []
        for p in self.processors:
            seq = self.service.delivered(p)
            if len(seq) > len(best):
                best = seq
        return list(best)

    def to_actions(self) -> list[Action]:
        return [
            e.action
            for e in self.service.to_trace().events
            if e.action.name in TO_EXTERNAL
        ]

    def verdict(self) -> ShardVerdict:
        """This shard's combined verdict: TO trace membership plus the
        online VS monitor's findings."""
        return verdict_for_group(
            self._group,
            self.processors,
            self.to_actions(),
            self.monitor.violations,
            vs_events_checked=self.monitor.events_checked,
        )

    def stats(self) -> dict[str, Any]:
        stats = self.service.stats()
        stats["group"] = self._group
        stats["seed"] = self.seed
        stats["vs_events_checked"] = self.monitor.events_checked
        return stats


class ShardedSimService:
    """The closed-loop sharded service on the DES substrate.

    ``n_groups`` independent shards, one consistent-hash ring, one
    router with per-group windows, one virtual clock advanced in
    lockstep across every shard's simulator.  Operations enter by key
    (:meth:`put` now, :meth:`schedule_put` later); :meth:`verify`
    decides every per-shard verdict plus the cross-shard key-order
    invariant.

    Parameters
    ----------
    n_groups:
        Shard count; groups are named ``g0 .. g<n-1>``.
    procs_per_group:
        Locations per shard.
    seed:
        Master seed: ring placement uses it directly, each group's
        stack uses :func:`derive_group_seed` of it.
    window:
        Per-group in-flight ceiling (``None``: no backpressure).
    vnodes:
        Ring points per group.
    config:
        Ring timing parameters shared by every shard.
    obs:
        Optional :class:`repro.obs.Observability` hub for router
        metrics.
    """

    def __init__(
        self,
        n_groups: int,
        procs_per_group: int = 3,
        seed: int = 0,
        window: int | None = 32,
        vnodes: int = 64,
        config: RingConfig | None = None,
        obs: Observability | None = None,
    ) -> None:
        self.group_names = group_names(n_groups)
        self.seed = seed
        self.ring = HashRing(self.group_names, seed=seed, vnodes=vnodes)
        self.router = ShardRouter(self.ring, window=window, obs=obs)
        self.groups: dict[str, SimShardGroup] = {}
        for name in self.group_names:
            shard = SimShardGroup(
                name,
                default_processors(procs_per_group),
                seed=derive_group_seed(seed, name),
                config=config,
                router=self.router,
            )
            self.groups[name] = shard
            self.router.add_backend(name, shard)
        self.clock = 0.0
        self.submitted: dict[str, list[ShardOp]] = {}
        self._op_seq = 0
        self._pending: list[tuple[float, int, str, Any]] = []

    # ------------------------------------------------------------------
    def put(self, key: str, payload: Any) -> str:
        """Submit one operation on ``key`` at the current virtual time;
        returns the owning group."""
        op = make_op(key, self._op_seq, payload)
        self._op_seq += 1
        self.submitted.setdefault(key, []).append(op)
        return self.router.submit(key, op)

    def schedule_put(self, time: float, key: str, payload: Any) -> None:
        """Submit ``(key, payload)`` when the virtual clock reaches
        ``time`` (the next :meth:`run_until` that covers it)."""
        if time < self.clock:
            raise ValueError(
                f"cannot schedule at {time} behind the clock ({self.clock})"
            )
        self._pending.append((time, len(self._pending), key, payload))

    def run_until(self, time: float) -> None:
        """Advance every shard to ``time``, dispatching scheduled
        operations at their due times in deterministic order."""
        due = sorted(entry for entry in self._pending if entry[0] <= time)
        self._pending = [entry for entry in self._pending if entry[0] > time]
        for at, _, key, payload in due:
            if at > self.clock:
                self._advance(at)
            self.put(key, payload)
        if time > self.clock:
            self._advance(time)

    def _advance(self, time: float) -> None:
        for name in self.group_names:
            self.groups[name].run_until(time)
        self.clock = time

    def install_scenario(self, group: str, scenario: PartitionScenario) -> None:
        """Script a partition for one shard (others are untouched)."""
        self.groups[group].install_scenario(scenario)

    # ------------------------------------------------------------------
    def deliveries(self) -> int:
        """Total Delivery events across all shards and locations."""
        return sum(len(g.service.deliveries) for g in self.groups.values())

    def verify(self) -> dict[str, Any]:
        """Every per-shard verdict plus the cross-shard invariant."""
        verdicts = {name: self.groups[name].verdict() for name in self.group_names}
        cross = check_cross_shard_order(
            self.submitted,
            {name: self.groups[name].delivered_order() for name in self.group_names},
            self.ring,
        )
        return {
            "ok": all(v.ok for v in verdicts.values()) and cross.ok,
            "groups": {name: verdicts[name].to_dict() for name in self.group_names},
            "cross_shard": cross.to_dict(),
        }

    def stats(self) -> dict[str, Any]:
        return {
            "clock": self.clock,
            "n_groups": len(self.group_names),
            "submitted": self._op_seq,
            "deliveries": self.deliveries(),
            "router": self.router.stats(),
            "ring_load": self.ring.load(self.submitted),
        }


# ----------------------------------------------------------------------
# Open-loop mode: one picklable workload per group, fanned out with
# repro.parallel and merged in deterministic (input) order.


@dataclass(frozen=True)
class GroupWorkload:
    """Everything one worker needs to run one shard start-to-finish."""

    group: str
    seed: int
    processors: tuple[str, ...]
    ops: tuple[tuple[float, ShardOp], ...]
    horizon: float
    delta: float = 1.0
    pi: float = 10.0
    mu: float = 30.0
    work_conserving: bool = True


@dataclass(frozen=True)
class GroupRunResult:
    """One shard's open-loop outcome (picklable; rides a RunEnvelope)."""

    group: str
    deliveries: int
    delivered: tuple[ShardOp, ...]
    verdict: dict[str, Any] = field(default_factory=dict)
    last_delivery: float = 0.0


def run_one_workload(spec: GroupWorkload) -> RunEnvelope:
    """Run one group's workload to its horizon and verify it.  Module
    level (picklable) so :func:`~repro.parallel.parallel_map` can fan
    workloads out across processes."""
    config = RingConfig(
        delta=spec.delta,
        pi=spec.pi,
        mu=spec.mu,
        work_conserving=spec.work_conserving,
    )
    shard = SimShardGroup(
        spec.group, spec.processors, seed=spec.seed, config=config
    )
    for at, op in spec.ops:
        shard.service.schedule_broadcast(at, shard.origin_for(op[0]), op)
    shard.run_until(spec.horizon)
    verdict = shard.verdict()
    result = GroupRunResult(
        group=spec.group,
        deliveries=len(shard.service.deliveries),
        delivered=tuple(shard.delivered_order()),
        verdict=verdict.to_dict(),
        last_delivery=max(
            (d.time for d in shard.service.deliveries), default=0.0
        ),
    )
    return make_envelope(
        seed=spec.seed,
        result=result.delivered,
        ok=verdict.ok,
        stats={
            "group": spec.group,
            "deliveries": result.deliveries,
            "last_delivery": result.last_delivery,
            "verdict": result.verdict,
        },
        violations=list(verdict.vs_violations),
    )


def build_workloads(
    n_groups: int,
    *,
    seed: int = 0,
    procs_per_group: int = 3,
    rate_per_group: float = 0.2,
    horizon: float = 400.0,
    settle: float = 100.0,
    vnodes: int = 64,
    config: RingConfig | None = None,
) -> tuple[HashRing, dict[str, list[ShardOp]], list[GroupWorkload]]:
    """Generate the open-loop E27 workload: a fixed per-group offered
    rate, keys spread over the ring, uniform arrivals.

    Each group receives ``rate_per_group * (horizon - settle)``
    operations at evenly spaced virtual times — the offered load *per
    group* is constant, so aggregate offered load grows linearly with
    ``n_groups`` and ideal scaling is linear by construction.  Returns
    the ring, the per-key submission map (for the cross-shard check)
    and one workload per group.
    """
    names = group_names(n_groups)
    ring = HashRing(names, seed=seed, vnodes=vnodes)
    cfg = config if config is not None else RingConfig(
        delta=1.0, pi=10.0, mu=30.0, work_conserving=True
    )
    per_group = max(1, int(rate_per_group * (horizon - settle)))
    submitted: dict[str, list[ShardOp]] = {}
    ops_for: dict[str, list[tuple[float, ShardOp]]] = {n: [] for n in names}
    op_seq = 0
    for name in names:
        # Deterministically find keys owned by this group: probe the
        # key space in sequence and keep the first hits.
        keys: list[str] = []
        probe = 0
        while len(keys) < min(4, per_group):
            key = f"{name}-k{probe}"
            probe += 1
            if ring.owner_of(key) == name:
                keys.append(key)
        spacing = (horizon - settle) / per_group
        for i in range(per_group):
            key = keys[i % len(keys)]
            op = make_op(key, op_seq, f"v{op_seq}")
            op_seq += 1
            submitted.setdefault(key, []).append(op)
            ops_for[name].append((settle + i * spacing, op))
    workloads = [
        GroupWorkload(
            group=name,
            seed=derive_group_seed(seed, name),
            processors=default_processors(procs_per_group),
            ops=tuple(ops_for[name]),
            horizon=horizon,
            delta=cfg.delta,
            pi=cfg.pi,
            mu=cfg.mu,
            work_conserving=cfg.work_conserving,
        )
        for name in names
    ]
    return ring, submitted, workloads


def run_group_workloads(
    workloads: Sequence[GroupWorkload],
    *,
    workers: int = 1,
) -> list[RunEnvelope]:
    """Fan the workloads out (deterministic merge: input order)."""
    return parallel_map(run_one_workload, workloads, workers=workers)


def sweep_summary(
    ring: HashRing,
    submitted: Mapping[str, Sequence[ShardOp]],
    envelopes: Iterable[RunEnvelope],
) -> dict[str, Any]:
    """Aggregate an open-loop sweep: totals, per-group verdicts, and
    the cross-shard invariant over the merged delivered orders."""
    group_orders: dict[str, list[ShardOp]] = {}
    deliveries = 0
    all_ok = True
    last_delivery = 0.0
    for env in envelopes:
        stats = env.stats
        group = str(stats["group"])
        group_orders[group] = [tuple(op) for op in env.result]
        deliveries += int(stats["deliveries"])
        last_delivery = max(last_delivery, float(stats["last_delivery"]))
        all_ok = all_ok and env.ok
    cross = check_cross_shard_order(submitted, group_orders, ring)
    return {
        "ok": all_ok and cross.ok,
        "n_groups": len(group_orders),
        "deliveries": deliveries,
        "last_delivery": last_delivery,
        "cross_shard": cross.to_dict(),
    }
