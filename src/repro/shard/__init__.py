"""``repro.shard`` — a sharded multi-group service over VStoTO.

One VS group is one token ring and one total order: a hard throughput
ceiling.  The paper's VS layer is inherently multi-group — the group
name ``g`` is an explicit parameter of every signature in Figs. 6 and
8–10 — so running **many independent VStoTO groups side by side**
composes paper-faithful shards into an aggregate service whose capacity
grows with the number of groups while each group keeps exactly the
per-``g`` guarantees the paper proves.

The pieces:

- :mod:`repro.shard.routing` — a deterministic consistent-hash ring
  mapping client keys to group names (seeded placement, stable
  serialization);
- :mod:`repro.shard.router` — the client-facing front end: fans
  requests out to per-group backends with a bounded in-flight window
  per shard (backpressure: saturated shards queue, never drop) and
  queue-depth metrics via :mod:`repro.obs`;
- :mod:`repro.shard.lifecycle` — spawn/drain/retire shards with
  deterministic key-range handoff;
- :mod:`repro.shard.sim` — the DES substrate adapter: one
  :class:`~repro.apps.totalorder.TotalOrderBroadcast` per group, with
  continuous per-group :class:`~repro.core.monitor.OnlineVSMonitor`
  verification and a parallel open-loop mode for 100s-of-groups scale
  sweeps (E27);
- :mod:`repro.shard.live` — the live substrate adapter: the
  :class:`ShardEnvelope` wire type and group demultiplexer that let one
  ``repro.rt`` node process host many group runtimes over one
  transport (``python -m repro.rt.cluster --shards N``);
- :mod:`repro.shard.verify` — per-shard verdicts (VS monitor +
  TO-machine trace membership per group) plus the cross-shard
  invariant: every key's operation order is consistent with the owning
  shard's total order.

See ``docs/SHARDING.md`` for the architecture guide.
"""

from repro.shard.lifecycle import (
    Handoff,
    ShardDirectory,
    ShardState,
    plan_handoff,
)
from repro.shard.router import ShardBackend, ShardRouter
from repro.shard.routing import HashRing
from repro.shard.sim import ShardedSimService, SimShardGroup
from repro.shard.verify import (
    CrossShardReport,
    ShardVerdict,
    check_cross_shard_order,
)

__all__ = [
    "HashRing",
    "ShardBackend",
    "ShardRouter",
    "ShardDirectory",
    "ShardState",
    "Handoff",
    "plan_handoff",
    "ShardedSimService",
    "SimShardGroup",
    "ShardVerdict",
    "CrossShardReport",
    "check_cross_shard_order",
]
