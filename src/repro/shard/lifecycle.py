"""Shard lifecycle: spawn, drain and retire VS groups.

A shard moves through a small state machine::

    spawn(g)            activate(g)
    ---------> SPAWNING ----------> ACTIVE
                                      |
                                      | retire(g)
                                      v
                    RETIRED <----- DRAINING
                        finish_retire(g)

- **SPAWNING** — the group's runtime is being built (live: node
  processes arm the group's ring members); it owns no keys yet.
- **ACTIVE** — the group is on the routing ring and owns its arcs.
- **DRAINING** — the group left the ring (``retire``): new requests
  for its former keys route to their new owners, while requests it
  already accepted finish in place (the router's in-flight window is
  the drain set).
- **RETIRED** — the drain completed (router idle for the group); the
  runtime can be torn down.

Every transition swaps a whole :class:`~repro.shard.routing.HashRing`
(rings are immutable values), so the key remap induced by a transition
is itself a deterministic value: :func:`plan_handoff` computes exactly
which keys move and between which groups, and two planners given the
same rings and key universe produce identical plans — the property
``tests/shard/test_lifecycle.py`` pins.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any
from collections.abc import Iterable

from repro.shard.routing import HashRing

if TYPE_CHECKING:
    from repro.shard.router import ShardRouter


class ShardState(enum.Enum):
    """Lifecycle states of one shard (group)."""

    SPAWNING = "spawning"
    ACTIVE = "active"
    DRAINING = "draining"
    RETIRED = "retired"


@dataclass(frozen=True)
class Handoff:
    """The key movement a ring change induces over a key universe.

    ``moves`` maps each moved key to ``(source_group, target_group)``;
    ``arcs`` quotes the circle ranges that changed hands (descriptive —
    per-key routing is authoritative).
    """

    moves: dict[str, tuple[str, str]] = field(default_factory=dict)
    arcs: tuple[tuple[int, int], ...] = ()

    @property
    def keys_moved(self) -> int:
        return len(self.moves)

    def sources(self) -> tuple[str, ...]:
        return tuple(sorted({src for src, _ in self.moves.values()}))

    def targets(self) -> tuple[str, ...]:
        return tuple(sorted({dst for _, dst in self.moves.values()}))


def plan_handoff(
    old_ring: HashRing, new_ring: HashRing, keys: Iterable[str]
) -> Handoff:
    """The deterministic remap plan from ``old_ring`` to ``new_ring``
    over ``keys``: which keys change owner, and the arcs owned by the
    groups that appear in or leave the ring."""
    moves = old_ring.moved_keys(new_ring, keys)
    changed = set(new_ring.groups).symmetric_difference(old_ring.groups)
    arcs: list[tuple[int, int]] = []
    for group in sorted(changed):
        ring = new_ring if group in new_ring.groups else old_ring
        arcs.extend(ring.arcs_for(group))
    return Handoff(moves=dict(sorted(moves.items())), arcs=tuple(sorted(arcs)))


@dataclass(frozen=True)
class LifecycleEvent:
    """One audited transition (what, who, ring size after)."""

    action: str
    group: str
    groups_after: tuple[str, ...]


class ShardDirectory:
    """The authority on which shards exist, their states, and the
    current routing ring.

    Parameters
    ----------
    ring:
        The initial ring; every group on it starts ACTIVE.
    router:
        Optional :class:`~repro.shard.router.ShardRouter` to keep in
        sync: ring swaps propagate via ``router.set_ring`` (rerouting
        queued requests), and ``finish_retire`` refuses while the
        router still holds work for the group.
    """

    def __init__(
        self, ring: HashRing, router: ShardRouter | None = None
    ) -> None:
        self.ring = ring
        self.router = router
        self.states: dict[str, ShardState] = {
            g: ShardState.ACTIVE for g in ring.groups
        }
        self.events: list[LifecycleEvent] = []

    # ------------------------------------------------------------------
    def _log(self, action: str, group: str) -> None:
        self.events.append(
            LifecycleEvent(action, group, self.ring.groups)
        )

    def state(self, group: str) -> ShardState:
        return self.states[group]

    def active_groups(self) -> tuple[str, ...]:
        return tuple(
            g
            for g in sorted(self.states)
            if self.states[g] is ShardState.ACTIVE
        )

    def _expect(self, group: str, *allowed: ShardState) -> None:
        state = self.states.get(group)
        if state not in allowed:
            want = "/".join(s.value for s in allowed)
            have = "absent" if state is None else state.value
            raise ValueError(
                f"shard {group!r} must be {want} for this transition, is {have}"
            )

    def _swap_ring(self, ring: HashRing) -> int:
        self.ring = ring
        if self.router is not None:
            return self.router.set_ring(ring)
        return 0

    # ------------------------------------------------------------------
    def spawn(self, group: str) -> None:
        """Register a new shard; it owns no keys until :meth:`activate`."""
        if group in self.states and self.states[group] is not ShardState.RETIRED:
            raise ValueError(f"shard {group!r} already exists")
        self.states[group] = ShardState.SPAWNING
        self._log("spawn", group)

    def activate(
        self, group: str, keys: Iterable[str] = ()
    ) -> Handoff:
        """Put a SPAWNING shard on the ring.  Returns the handoff plan
        over ``keys`` (the keys that now route to the new shard)."""
        self._expect(group, ShardState.SPAWNING)
        old = self.ring
        new = old.with_group(group)
        plan = plan_handoff(old, new, keys)
        self.states[group] = ShardState.ACTIVE
        self._swap_ring(new)
        self._log("activate", group)
        return plan

    def retire(self, group: str, keys: Iterable[str] = ()) -> Handoff:
        """Take an ACTIVE shard off the ring (DRAINING).  New requests
        for its keys route to the survivors per the returned plan;
        accepted requests drain in place."""
        self._expect(group, ShardState.ACTIVE)
        old = self.ring
        new = old.without_group(group)
        plan = plan_handoff(old, new, keys)
        self.states[group] = ShardState.DRAINING
        self._swap_ring(new)
        self._log("retire", group)
        return plan

    def finish_retire(self, group: str) -> None:
        """Complete a drain: requires the router (when attached) to hold
        no in-flight or queued work for the group.  An empty group — one
        that never accepted a request — retires immediately."""
        self._expect(group, ShardState.DRAINING)
        if self.router is not None and not self.router.idle(group):
            raise ValueError(
                f"shard {group!r} still draining: "
                f"{self.router.pending(group)} requests pending"
            )
        self.states[group] = ShardState.RETIRED
        self._log("finish_retire", group)

    # ------------------------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        """Stable JSON shape: the ring plus every shard's state."""
        return {
            "ring": self.ring.to_dict(),
            "states": {
                g: self.states[g].value for g in sorted(self.states)
            },
        }
