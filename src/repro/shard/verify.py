"""Verification of a sharded run: per-shard specs plus the cross-shard
key-order invariant.

**Per shard** nothing new is needed — each group is one paper-faithful
VStoTO instance, so the existing checkers apply verbatim, once per
group: :class:`~repro.core.monitor.OnlineVSMonitor` (VS conformance,
online) and :func:`~repro.core.to_spec.check_to_trace` (TO-machine
trace membership, offline).  :class:`ShardVerdict` is one group's
combined verdict.

**Across shards** the service promises exactly one thing: every key
maps to one owning group, and the operations on a key are ordered by
that group's total order.  :func:`check_cross_shard_order` decides it
from three ingredients — the client's per-key submission sequences, the
per-group delivered orders, and the routing ring:

1. *placement* — every delivered operation on key ``k`` appears in (and
   only in) the group that owns ``k``;
2. *integrity* — the operations delivered for ``k`` are exactly a
   prefix-set of what the client submitted for ``k`` (nothing invented);
3. *order* — their relative order inside the owning group's total order
   equals the client's submission order for ``k``.

The order clause is sound because both substrates pin every key to one
*session location* (``SimShardGroup.origin_for`` in the DES, the
driver's per-key node affinity in the live cluster): all of a key's
operations share one TO sender, and the TO specification preserves
per-sender FIFO, so the owning shard's total order cannot reorder them
— not even across partitions.

There is deliberately **no** cross-key, cross-shard ordering claim:
two keys on different shards are causally independent, which is the
freedom that makes the aggregate scale (see docs/SHARDING.md).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Mapping, Sequence
from typing import Any

from repro.core.to_spec import check_to_trace
from repro.ioa.actions import Action
from repro.shard.routing import HashRing

#: The client operation shape both substrates broadcast: a tuple
#: ``(key, op_seq, payload)``.  ``op_seq`` is the client's global
#: submission counter — it makes every operation value unique (so TO
#: traces never alias) and encodes the per-key submission order.
ShardOp = tuple[str, int, Any]


def make_op(key: str, op_seq: int, payload: Any) -> ShardOp:
    """Build the canonical operation value (hashable, codec-friendly)."""
    return (key, op_seq, payload)


def op_key(value: Any) -> str | None:
    """The key of an operation value, or None for foreign traffic."""
    if (
        isinstance(value, tuple)
        and len(value) == 3
        and isinstance(value[0], str)
        and isinstance(value[1], int)
    ):
        return value[0]
    return None


@dataclass
class ShardVerdict:
    """One group's verification outcome."""

    group: str
    processors: tuple[Any, ...] = ()
    vs_events_checked: int = 0
    vs_violations: list[str] = field(default_factory=list)
    to_ok: bool = True
    to_reason: str = ""
    deliveries: int = 0

    @property
    def ok(self) -> bool:
        return not self.vs_violations and self.to_ok

    def to_dict(self) -> dict[str, Any]:
        return {
            "group": self.group,
            "processors": [str(p) for p in self.processors],
            "vs_events_checked": self.vs_events_checked,
            "vs_violations": list(self.vs_violations),
            "to_ok": self.to_ok,
            "to_reason": self.to_reason,
            "deliveries": self.deliveries,
            "ok": self.ok,
        }


def verdict_for_group(
    group: str,
    processors: Sequence[Any],
    to_actions: Sequence[Action],
    vs_violations: Sequence[str],
    vs_events_checked: int = 0,
) -> ShardVerdict:
    """Assemble one group's verdict: TO-machine membership of its
    ``bcast``/``brcv`` actions plus the VS monitor's findings."""
    report = check_to_trace(to_actions, processors)
    return ShardVerdict(
        group=group,
        processors=tuple(processors),
        vs_events_checked=vs_events_checked,
        vs_violations=list(vs_violations),
        to_ok=report.ok,
        to_reason=report.reason,
        deliveries=sum(1 for a in to_actions if a.name == "brcv"),
    )


@dataclass
class CrossShardReport:
    """Outcome of the cross-shard key-order check."""

    ok: bool = True
    reason: str = ""
    keys_checked: int = 0
    ops_checked: int = 0

    def to_dict(self) -> dict[str, Any]:
        return {
            "ok": self.ok,
            "reason": self.reason,
            "keys_checked": self.keys_checked,
            "ops_checked": self.ops_checked,
        }


def check_cross_shard_order(
    submitted: Mapping[str, Sequence[ShardOp]],
    group_orders: Mapping[str, Sequence[ShardOp]],
    ring: HashRing,
) -> CrossShardReport:
    """Decide the cross-shard invariant.

    Parameters
    ----------
    submitted:
        Per key, the client's operations in submission order.
    group_orders:
        Per group, the shard's delivered total order of operations (any
        single location's delivery sequence will do — per-shard TO
        conformance already proved all locations agree on a common
        prefix order).
    ring:
        The routing table in force (for placement).
    """
    report = CrossShardReport()
    # Placement + integrity: walk every group's order once.
    seen_per_key: dict[str, list[ShardOp]] = {}
    for group in sorted(group_orders):
        for op in group_orders[group]:
            key = op_key(op)
            if key is None:
                report.ok = False
                report.reason = (
                    f"group {group!r} delivered a non-operation value {op!r}"
                )
                return report
            owner = ring.owner_of(key)
            if owner != group:
                report.ok = False
                report.reason = (
                    f"operation on key {key!r} delivered in group {group!r} "
                    f"but the ring owns it to {owner!r}"
                )
                return report
            seen_per_key.setdefault(key, []).append(op)
            report.ops_checked += 1
    # Order: each key's delivered subsequence must equal a subsequence
    # of the client's submission sequence in the same relative order
    # (deliveries may trail submissions; they may never reorder them).
    for key in sorted(seen_per_key):
        delivered = seen_per_key[key]
        client = list(submitted.get(key, ()))
        cursor = 0
        for op in delivered:
            while cursor < len(client) and client[cursor] != op:
                cursor += 1
            if cursor == len(client):
                report.ok = False
                report.reason = (
                    f"key {key!r}: delivered order "
                    f"{[o[1] for o in delivered]} is not a subsequence of "
                    f"the submission order {[o[1] for o in client]}"
                )
                return report
            cursor += 1
        report.keys_checked += 1
    return report
