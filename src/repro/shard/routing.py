"""Consistent-hash routing of client keys onto VS groups.

The ring is the classic construction: every group owns ``vnodes``
points on a 64-bit circle, a key is owned by the first group point at
or clockwise-after the key's own point.  All hashing is SHA-256 — never
Python's ``hash()`` — so placement is identical across processes,
platforms and hash-randomisation seeds, and the whole ring is a pure
function of ``(groups, seed, vnodes)``: two rings built from the same
parameters agree point for point no matter the construction order.

Adding or removing one group moves only the keys on the arcs that
group's points cover (expected fraction ``1/n``) — the property that
makes shard spawn/retire (:mod:`repro.shard.lifecycle`) cheap.

Serialization is stable: :meth:`HashRing.to_dict` emits sorted groups
plus the placement parameters, and :meth:`HashRing.from_dict` rebuilds
an identical ring, so routing tables can ride config files, wire
frames and scenario artifacts byte-for-byte reproducibly.
"""

from __future__ import annotations

import bisect
import hashlib
from collections.abc import Iterable, Mapping, Sequence
from typing import Any

#: Size of the hash circle: points live in [0, 2**64).
RING_BITS = 64
_RING_MASK = (1 << RING_BITS) - 1


def _digest64(data: str) -> int:
    """First 8 bytes of SHA-256 as an unsigned int (process-stable)."""
    return int.from_bytes(
        hashlib.sha256(data.encode("utf-8")).digest()[:8], "big"
    )


def point_for_key(key: str) -> int:
    """The circle point of a client key (placement-seed independent:
    keys do not move when a ring is rebuilt under a different seed —
    only the group points do)."""
    return _digest64("key|" + key)


class HashRing:
    """A deterministic consistent-hash ring over group names.

    Parameters
    ----------
    groups:
        Group names (any iterable; order is irrelevant — the ring is a
        pure function of the *set*).
    seed:
        Placement seed: group points are ``sha256(seed|group|replica)``,
        so distinct seeds give independent placements while one seed is
        reproducible everywhere.
    vnodes:
        Points per group.  More points smooth the key distribution
        (relative load spread shrinks like ``1/sqrt(vnodes)``).
    """

    def __init__(
        self, groups: Iterable[str], seed: int = 0, vnodes: int = 64
    ) -> None:
        if vnodes < 1:
            raise ValueError(f"vnodes must be >= 1, got {vnodes}")
        names = sorted(set(groups))
        if not names:
            raise ValueError("a hash ring needs at least one group")
        for name in names:
            if not isinstance(name, str) or not name:
                raise ValueError(f"group names must be non-empty str, got {name!r}")
        self.seed = seed
        self.vnodes = vnodes
        self._groups: tuple[str, ...] = tuple(names)
        points: list[tuple[int, str]] = []
        for name in names:
            for replica in range(vnodes):
                point = _digest64(f"{seed}|group|{name}|{replica}")
                points.append((point & _RING_MASK, name))
        # Sort by (point, group): a 64-bit collision between two groups'
        # points resolves by name, deterministically.
        points.sort()
        self._points: list[int] = [p for p, _ in points]
        self._owners: list[str] = [g for _, g in points]

    # ------------------------------------------------------------------
    @property
    def groups(self) -> tuple[str, ...]:
        """The member groups, sorted."""
        return self._groups

    def __len__(self) -> int:
        return len(self._groups)

    def __contains__(self, group: object) -> bool:
        return group in self._groups

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, HashRing):
            return NotImplemented
        return (
            self.seed == other.seed
            and self.vnodes == other.vnodes
            and self._groups == other._groups
        )

    def __hash__(self) -> int:
        return hash((self.seed, self.vnodes, self._groups))

    def __repr__(self) -> str:
        return (
            f"HashRing(groups={list(self._groups)!r}, seed={self.seed}, "
            f"vnodes={self.vnodes})"
        )

    # ------------------------------------------------------------------
    def owner_of(self, key: str) -> str:
        """The group owning ``key``: first point clockwise from the
        key's point (wrapping past the top of the circle)."""
        index = bisect.bisect_left(self._points, point_for_key(key))
        if index == len(self._points):
            index = 0
        return self._owners[index]

    def assignment(self, keys: Iterable[str]) -> dict[str, str]:
        """``key -> owning group`` for every key (insertion order kept)."""
        return {key: self.owner_of(key) for key in keys}

    def load(self, keys: Iterable[str]) -> dict[str, int]:
        """How many of ``keys`` each group owns (all groups present)."""
        counts = {g: 0 for g in self._groups}
        for key in keys:
            counts[self.owner_of(key)] += 1
        return counts

    def moved_keys(
        self, other: HashRing, keys: Iterable[str]
    ) -> dict[str, tuple[str, str]]:
        """Keys whose owner differs between ``self`` and ``other``,
        mapped to ``(owner_here, owner_there)`` — the remap set a
        spawn/retire induces over a key universe."""
        moves: dict[str, tuple[str, str]] = {}
        for key in keys:
            mine, theirs = self.owner_of(key), other.owner_of(key)
            if mine != theirs:
                moves[key] = (mine, theirs)
        return moves

    # ------------------------------------------------------------------
    def with_group(self, group: str) -> HashRing:
        """A new ring with ``group`` added (same seed and vnodes)."""
        if group in self._groups:
            raise ValueError(f"group {group!r} already on the ring")
        return HashRing((*self._groups, group), self.seed, self.vnodes)

    def without_group(self, group: str) -> HashRing:
        """A new ring with ``group`` removed."""
        if group not in self._groups:
            raise KeyError(f"group {group!r} not on the ring")
        if len(self._groups) == 1:
            raise ValueError("cannot remove the last group from a ring")
        rest = tuple(g for g in self._groups if g != group)
        return HashRing(rest, self.seed, self.vnodes)

    # ------------------------------------------------------------------
    def arcs_for(self, group: str) -> list[tuple[int, int]]:
        """The half-open arcs ``(after, upto]`` of the circle that
        ``group`` owns, as point pairs; an arc with ``after > upto``
        wraps past the top.  Descriptive companion to per-key routing —
        handoff plans quote these ranges."""
        if group not in self._groups:
            raise KeyError(f"group {group!r} not on the ring")
        arcs: list[tuple[int, int]] = []
        n = len(self._points)
        for i, owner in enumerate(self._owners):
            if owner != group:
                continue
            prev = self._points[(i - 1) % n]
            arcs.append((prev, self._points[i]))
        return arcs

    # ------------------------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        """A stable JSON shape (groups sorted; parameters explicit)."""
        return {
            "kind": "hash-ring",
            "seed": self.seed,
            "vnodes": self.vnodes,
            "groups": list(self._groups),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> HashRing:
        if data.get("kind") != "hash-ring":
            raise ValueError(f"not a hash-ring dict: {data!r}")
        return cls(
            [str(g) for g in data["groups"]],
            seed=int(data["seed"]),
            vnodes=int(data["vnodes"]),
        )


def group_names(count: int) -> tuple[str, ...]:
    """The canonical shard names ``g0 .. g<count-1>`` used by both
    substrates' ``--shards N`` spellings."""
    if count < 1:
        raise ValueError(f"need at least one group, got {count}")
    return tuple(f"g{i}" for i in range(count))


def spread(loads: Sequence[int]) -> float:
    """Max/mean load ratio — the imbalance figure benchmarks report
    (1.0 is perfect balance)."""
    if not loads or sum(loads) == 0:
        return 1.0
    mean = sum(loads) / len(loads)
    return max(loads) / mean
