"""The client-facing shard router: key-routed fan-out with per-group
backpressure.

A request enters with a key; the :class:`~repro.shard.routing.HashRing`
names the owning group; the router hands the request to that group's
backend **unless the group already has a full in-flight window**, in
which case the request queues (FIFO, never dropped).  Completions —
signalled by the backend when the group delivers the request back to
its origin — free window slots and promote queued requests in order.

The window is the flow-control contract that makes many slow shards
compose into one responsive service: a shard stuck behind a partition
only ever holds its own window's worth of traffic plus its own queue;
the other shards' windows keep cycling (the isolation property
``tests/shard/test_sim_service.py`` asserts under a seeded one-shard
partition).

Queue depths, in-flight counts and routed/queued totals are published
per group through :mod:`repro.obs` when a hub is attached, in the same
pre-bound-child style the rest of the tree uses (no hub: one ``is
None`` branch per event).
"""

from __future__ import annotations

from collections import deque
from collections.abc import Mapping
from typing import Any, Protocol

from repro.shard.routing import HashRing


class ShardBackend(Protocol):
    """What the router needs from a per-group runtime."""

    @property
    def group(self) -> str:
        """The group name this backend serves."""
        ...

    def submit(self, key: str, value: Any) -> None:
        """Hand one client request to the group (must not block)."""
        ...


class _GroupChannel:
    """Window + queue state for one group."""

    __slots__ = ("inflight", "queue", "routed", "queued", "queue_peak")

    def __init__(self) -> None:
        self.inflight = 0
        self.queue: deque[tuple[str, Any]] = deque()
        self.routed = 0
        self.queued = 0
        self.queue_peak = 0


class ShardRouter:
    """Fan client requests out to per-group backends.

    Parameters
    ----------
    ring:
        The routing table (replaceable at runtime via :meth:`set_ring`
        — the lifecycle layer's handoff path).
    backends:
        ``group -> backend`` for every ring group.  Backends may be
        registered later (:meth:`add_backend`) but a request routed to
        a group with no backend is an error, never a silent drop.
    window:
        In-flight ceiling per group; ``None`` disables backpressure
        (requests always dispatch immediately).
    obs:
        Optional :class:`repro.obs.Observability` hub for the queue
        metrics.
    """

    def __init__(
        self,
        ring: HashRing,
        backends: Mapping[str, ShardBackend] | None = None,
        window: int | None = 32,
        obs: Any = None,
    ) -> None:
        if window is not None and window < 1:
            raise ValueError(f"window must be >= 1 or None, got {window}")
        self.ring = ring
        self.window = window
        self._backends: dict[str, ShardBackend] = {}
        self._channels: dict[str, _GroupChannel] = {}
        # Observability slots (bound by attach_obs; `is None` guarded).
        self._m_routed: Any = None
        self._m_queued: Any = None
        self._m_inflight: Any = None
        self._m_depth: Any = None
        if backends:
            for group, backend in backends.items():
                self.add_backend(group, backend)
        if obs is not None:
            self.attach_obs(obs)

    # ------------------------------------------------------------------
    def attach_obs(self, obs: Any) -> None:
        """Bind per-group routing metrics: requests routed/queued
        (counters) and the live in-flight/queue-depth gauges."""
        if obs is None or obs.metrics is None:
            return
        metrics = obs.metrics
        self._m_routed = metrics.counter(
            "shard_routed_total",
            "client requests dispatched to a group backend",
            labels=("group",),
        )
        self._m_queued = metrics.counter(
            "shard_queued_total",
            "client requests parked behind a full window",
            labels=("group",),
        )
        self._m_inflight = metrics.gauge(
            "shard_inflight",
            "requests dispatched and not yet completed, per group",
            labels=("group",),
        )
        self._m_depth = metrics.gauge(
            "shard_queue_depth",
            "requests waiting behind the window, per group",
            labels=("group",),
        )

    def _publish(self, group: str, channel: _GroupChannel) -> None:
        if self._m_inflight is not None:
            self._m_inflight.labels(group).set(channel.inflight)
            self._m_depth.labels(group).set(len(channel.queue))

    # ------------------------------------------------------------------
    def add_backend(self, group: str, backend: ShardBackend) -> None:
        if group in self._backends:
            raise ValueError(f"group {group!r} already has a backend")
        self._backends[group] = backend
        self._channels.setdefault(group, _GroupChannel())

    def remove_backend(self, group: str) -> ShardBackend:
        """Detach a retired group's backend (its channel must be idle)."""
        if not self.idle(group):
            raise ValueError(
                f"group {group!r} still has in-flight or queued requests"
            )
        backend = self._backends.pop(group)
        self._channels.pop(group, None)
        return backend

    @property
    def groups(self) -> tuple[str, ...]:
        return tuple(sorted(self._backends))

    # ------------------------------------------------------------------
    def submit(self, key: str, value: Any) -> str:
        """Route one request; returns the owning group.  Full window:
        the request queues (never dropped, never reordered within its
        group)."""
        group = self.ring.owner_of(key)
        channel = self._channels.get(group)
        if channel is None or group not in self._backends:
            raise KeyError(f"no backend for group {group!r} (key {key!r})")
        if self.window is not None and channel.inflight >= self.window:
            channel.queue.append((key, value))
            channel.queued += 1
            channel.queue_peak = max(channel.queue_peak, len(channel.queue))
            if self._m_queued is not None:
                self._m_queued.labels(group).inc()
            self._publish(group, channel)
        else:
            self._dispatch(group, channel, key, value)
        return group

    def _dispatch(
        self, group: str, channel: _GroupChannel, key: str, value: Any
    ) -> None:
        channel.inflight += 1
        channel.routed += 1
        if self._m_routed is not None:
            self._m_routed.labels(group).inc()
        self._publish(group, channel)
        self._backends[group].submit(key, value)

    def complete(self, group: str, n: int = 1) -> None:
        """A backend reports ``n`` requests finished: free window slots
        and promote queued requests in FIFO order."""
        channel = self._channels.get(group)
        if channel is None:
            raise KeyError(f"unknown group {group!r}")
        if n < 0 or n > channel.inflight:
            raise ValueError(
                f"complete({group!r}, {n}): only {channel.inflight} in flight"
            )
        channel.inflight -= n
        self._publish(group, channel)
        while channel.queue and (
            self.window is None or channel.inflight < self.window
        ):
            key, value = channel.queue.popleft()
            self._dispatch(group, channel, key, value)

    # ------------------------------------------------------------------
    def set_ring(self, ring: HashRing) -> int:
        """Swap the routing table; queued (not-yet-dispatched) requests
        whose owner changed are rerouted through the new table.  Returns
        how many requests moved.  In-flight requests stay where they
        are — they complete in the group that accepted them (the
        lifecycle drain contract)."""
        self.ring = ring
        moved = 0
        for group in sorted(self._channels):
            channel = self._channels[group]
            if not channel.queue:
                continue
            keep: deque[tuple[str, Any]] = deque()
            movers: list[tuple[str, Any]] = []
            for key, value in channel.queue:
                if ring.owner_of(key) != group:
                    movers.append((key, value))
                else:
                    keep.append((key, value))
            if not movers:
                continue
            channel.queue = keep
            self._publish(group, channel)
            for key, value in movers:
                moved += 1
                self.submit(key, value)
        return moved

    # ------------------------------------------------------------------
    def inflight(self, group: str) -> int:
        return self._channels[group].inflight

    def queue_depth(self, group: str) -> int:
        return len(self._channels[group].queue)

    def pending(self, group: str) -> int:
        """In-flight plus queued — zero iff the group is quiescent."""
        channel = self._channels[group]
        return channel.inflight + len(channel.queue)

    def idle(self, group: str) -> bool:
        channel = self._channels.get(group)
        return channel is None or (
            channel.inflight == 0 and not channel.queue
        )

    def stats(self) -> dict[str, Any]:
        """Per-group routing counters plus totals."""
        per_group = {
            group: {
                "routed": channel.routed,
                "queued": channel.queued,
                "inflight": channel.inflight,
                "queue_depth": len(channel.queue),
                "queue_peak": channel.queue_peak,
            }
            for group, channel in sorted(self._channels.items())
        }
        return {
            "window": self.window,
            "groups": per_group,
            "routed_total": sum(c.routed for c in self._channels.values()),
            "queued_total": sum(c.queued for c in self._channels.values()),
            "pending_total": sum(
                c.inflight + len(c.queue) for c in self._channels.values()
            ),
        }
