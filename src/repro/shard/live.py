"""The live substrate adapter: many VS groups over one ``repro.rt``
transport.

A live node process (:mod:`repro.rt.node`) owns exactly one
:class:`~repro.rt.transport.LiveNetwork` — one listen socket, one
outbound stream per peer.  To host ``--shards N`` group runtimes on
that single transport, every outbound protocol message is wrapped in a
:class:`ShardEnvelope` naming its group, and the transport's single
registered endpoint becomes a :class:`GroupDemux` that unwraps inbound
envelopes and hands the inner message to the right group's ring
member.  Each group sees a private :class:`GroupNet` — the full
``Network`` surface (send/broadcast/multicast, simulator, oracle) —
so :class:`~repro.membership.ring.RingMember` and the VStoTO runtime
run per group completely unmodified.

With ``shards == 1`` none of this is engaged: the node registers its
ring member directly and no envelope ever rides the wire, keeping the
single-group wire byte-identical to the pre-sharding runtime (the
codec-equivalence golden digests stay valid).

Client operations on the live wire are **strings** — ``key#seq#payload``
(:func:`encode_live_op`) — because broadcast values must stay hashable
after a JSON wire round trip; :func:`parse_live_op` recovers the
``(key, op_seq, payload)`` tuple the cross-shard checker consumes.

Verification is per group: each group's event logs are its own files
(``<node>@<group>.events.jsonl``), so :func:`verify_shard_logs` replays
one group's capture through the standard live checkers
(:func:`~repro.rt.trace.verify_events`) exactly as an unsharded run
would, and :func:`delivered_order_from_logs` recovers the group's total
order for the cross-shard invariant.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Any
from collections.abc import Iterable, Mapping

from repro.core.types import View
from repro.rt.framing import register_wire_type
from repro.rt.trace import VerifyReport, load_event_logs, verify_events
from repro.shard.verify import ShardOp

#: Separator inside a live operation string (keys must not contain it).
OP_SEP = "#"


@register_wire_type
@dataclass(frozen=True)
class ShardEnvelope:
    """One group's protocol message on the shared transport."""

    g: str
    msg: Any = None


class GroupNet:
    """The per-group ``Network`` facade over one shared live transport.

    Outbound messages are wrapped in a :class:`ShardEnvelope`;
    identity, processor set, clock and failure oracle delegate to the
    underlying :class:`~repro.rt.transport.LiveNetwork`, so one group's
    ring member cannot tell it shares the node with others.
    """

    def __init__(self, group: str, network: Any) -> None:
        self.group = group
        self.network = network
        self.proc_id: str = network.proc_id
        self.processors: tuple[str, ...] = network.processors
        self.simulator = network.simulator
        self.oracle = network.oracle

    def send(self, src: str, dst: str, message: Any) -> None:
        self.network.send(src, dst, ShardEnvelope(self.group, message))

    def broadcast(
        self, src: str, message: Any, include_self: bool = False
    ) -> None:
        self.network.broadcast(
            src, ShardEnvelope(self.group, message), include_self
        )

    def multicast(self, src: str, dests: Iterable[str], message: Any) -> None:
        for dst in dests:
            if dst != src:
                self.send(src, dst, message)


class GroupDemux:
    """The transport endpoint of a node hosting many groups.

    Unwraps inbound :class:`ShardEnvelope` frames and dispatches the
    inner message to the named group's handler.  Bare (non-envelope)
    protocol messages — a peer running unsharded — go to the default
    group; envelopes for groups this node does not host are counted and
    dropped (a config skew, not a protocol condition).
    """

    def __init__(
        self, proc_id: str, handlers: Mapping[str, Any], default: str
    ) -> None:
        if default not in handlers:
            raise ValueError(f"default group {default!r} has no handler")
        self.proc_id = proc_id
        self.handlers = dict(handlers)
        self.default = default
        self.unknown_group_drops = 0

    def on_message(self, src: str, message: Any) -> None:
        if isinstance(message, ShardEnvelope):
            handler = self.handlers.get(message.g)
            if handler is None:
                self.unknown_group_drops += 1
                return
            handler.on_message(src, message.msg)
        else:
            self.handlers[self.default].on_message(src, message)


# ----------------------------------------------------------------------
# Live operation values


def encode_live_op(key: str, op_seq: int, payload: str) -> str:
    """The wire spelling of one client operation: a plain string (it
    must survive a JSON wire round trip hashable)."""
    if OP_SEP in key:
        raise ValueError(f"keys must not contain {OP_SEP!r}: {key!r}")
    return f"{key}{OP_SEP}{op_seq}{OP_SEP}{payload}"


def parse_live_op(value: Any) -> ShardOp | None:
    """Recover ``(key, op_seq, payload)`` from a wire value, or None
    for traffic that is not a shard operation."""
    if not isinstance(value, str):
        return None
    parts = value.split(OP_SEP, 2)
    if len(parts) != 3 or not parts[1].isdigit():
        return None
    return (parts[0], int(parts[1]), parts[2])


# ----------------------------------------------------------------------
# Per-group capture verification


def shard_initial_view(processors: Iterable[str]) -> View:
    """Every group's initial view v0: whole node set, id ``(0, min)``
    — the same hybrid base case the unsharded node uses."""
    procs = tuple(sorted(processors))
    return View((0, min(procs)), frozenset(procs))


def shard_log_paths(log_dir: str | Path, group: str) -> list[Path]:
    """This group's event logs (one per node) under ``log_dir``."""
    return sorted(Path(log_dir).glob(f"*@{group}.events.jsonl"))


def verify_shard_logs(
    log_dir: str | Path,
    group: str,
    processors: Iterable[str],
    expect_at: Iterable[str] | None = None,
) -> VerifyReport:
    """Verify one group's capture with the standard live checkers —
    the group is a complete VS/TO instance, so nothing new is needed."""
    events = load_event_logs(shard_log_paths(log_dir, group))
    return verify_events(
        events, processors, shard_initial_view(processors), expect_at
    )


def delivered_order_from_logs(
    log_dir: str | Path, group: str
) -> list[ShardOp]:
    """The group's delivered total order of operations, recovered from
    its event logs: the longest single-node ``brcv`` sequence (per-group
    TO conformance proves all nodes agree on a common prefix)."""
    per_node: dict[str, list[ShardOp]] = {}
    for entry in load_event_logs(shard_log_paths(log_dir, group)):
        if entry["ev"] != "brcv":
            continue
        value, _origin, dst = entry["args"]
        op = parse_live_op(value)
        if op is not None:
            per_node.setdefault(str(dst), []).append(op)
    best: list[ShardOp] = []
    for node in sorted(per_node):
        if len(per_node[node]) > len(best):
            best = per_node[node]
    return best
