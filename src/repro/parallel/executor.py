"""The multiprocessing seed-sweep executor.

Guarantees, in order of importance:

1. **Determinism** — the merged output is a pure function of the seed
   list, independent of worker count or scheduling.  ``Pool.map``
   returns results in input order, each worker runs a self-contained
   seeded simulation, and :func:`run_seed_sweep` verifies the seed of
   every envelope against its slot.
2. **Equivalence** — ``workers=1`` runs the worker callable inline in
   this process (no pool, no pickling), so the parallel path can always
   be validated against the sequential one; :func:`canonical_digest`
   gives a dict-order-insensitive fingerprint for that comparison.
3. **Graceful degradation** — on a single-core host the executor still
   works (the pool just time-slices); callers that *assert* wall-clock
   speedups should gate on :func:`available_workers`.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import multiprocessing
import os
from dataclasses import dataclass, field
from collections.abc import Callable, Iterable, Sequence
from typing import Any, TypeVar

T = TypeVar("T")
R = TypeVar("R")


def available_workers() -> int:
    """CPU cores visible to this process (>= 1)."""
    return os.cpu_count() or 1


def _pool_context() -> multiprocessing.context.BaseContext:
    """Prefer fork (cheap, inherits the interpreter state and hash seed)
    and fall back to the platform default where fork is unavailable."""
    methods = multiprocessing.get_all_start_methods()
    if "fork" in methods:
        return multiprocessing.get_context("fork")
    return multiprocessing.get_context()


def shard_seeds(seeds: Sequence[int], shards: int) -> list[list[int]]:
    """Deterministic round-robin sharding: shard ``i`` gets
    ``seeds[i::shards]``.  Round-robin (rather than contiguous blocks)
    balances load when cost trends with seed index; the assignment is a
    pure function of (seeds, shards) so a distributed caller can
    reconstruct it anywhere."""
    if shards < 1:
        raise ValueError("shards must be >= 1")
    seeds = list(seeds)
    return [seeds[i::shards] for i in range(min(shards, max(len(seeds), 1)))]


def canonical_digest(value: Any) -> str:
    """A dict-order-insensitive sha256 fingerprint of a result object.

    Dataclasses are converted to dicts, mappings are serialised with
    sorted keys, and anything non-JSON falls back to ``repr`` — so two
    runs producing semantically identical results digest identically
    even across processes with different hash randomisation.
    """
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        value = dataclasses.asdict(value)
    payload = json.dumps(value, sort_keys=True, default=repr)
    return hashlib.sha256(payload.encode()).hexdigest()


@dataclass
class RunEnvelope:
    """One seeded run's result as shipped back from a worker."""

    seed: int
    #: the run's own success verdict (meaning defined by the caller)
    ok: bool
    #: canonical fingerprint of ``result`` — the byte-identical-merge
    #: comparison key
    digest: str
    #: summary counters from the run (picklable scalars only)
    stats: dict = field(default_factory=dict)
    #: conformance violations, verbatim
    violations: list = field(default_factory=list)
    #: protocol-state coverage counters from the run (JSON-able; merged
    #: across a sweep with :func:`merge_coverage_dicts`)
    coverage: dict = field(default_factory=dict)
    #: host wall-clock seconds this run took inside its worker
    wall_s: float = 0.0
    #: the full result object (must be picklable)
    result: Any = None


def make_envelope(
    seed: int,
    result: Any,
    *,
    ok: bool = True,
    stats: dict | None = None,
    violations: list | None = None,
    coverage: dict | None = None,
    wall_s: float = 0.0,
) -> RunEnvelope:
    """Wrap a run result, stamping its canonical digest."""
    return RunEnvelope(
        seed=seed,
        ok=ok,
        digest=canonical_digest(result),
        stats=dict(stats) if stats else {},
        violations=list(violations) if violations else [],
        coverage=dict(coverage) if coverage else {},
        wall_s=wall_s,
        result=result,
    )


def merge_coverage_dicts(dicts: Iterable[dict]) -> dict:
    """Merge JSON-shaped coverage dicts: numeric values sum, list values
    take the sorted set-union, everything else must agree.

    The merge is associative, commutative, and independent of input
    order up to the sorting — which is what makes a sweep's merged
    coverage a pure function of the seed set, identical at any worker
    count (the determinism contract of this package).
    """
    merged: dict = {}
    for d in dicts:
        for key, value in d.items():
            if key not in merged:
                merged[key] = (
                    sorted(set(value)) if isinstance(value, list) else value
                )
            elif isinstance(value, list):
                merged[key] = sorted(set(merged[key]) | set(value))
            elif isinstance(value, bool) or not isinstance(value, (int, float)):
                if merged[key] != value:
                    raise ValueError(
                        f"coverage key {key!r} has conflicting "
                        f"non-mergeable values: {merged[key]!r} vs {value!r}"
                    )
            else:
                merged[key] += value
    return merged


def parallel_map(
    fn: Callable[[T], R],
    items: Iterable[T],
    *,
    workers: int = 1,
    chunksize: int = 1,
) -> list[R]:
    """Map ``fn`` over ``items``, optionally across worker processes.

    Results are returned in input order regardless of worker count.
    ``workers <= 1`` (or fewer than two items) runs inline — no pool,
    no pickling — which is the reference semantics the parallel path
    must reproduce.  ``fn`` must be picklable (module-level, or a
    ``functools.partial`` of one) when ``workers > 1``.
    """
    items = list(items)
    if workers is None:
        workers = 1
    workers = min(workers, len(items))
    if workers <= 1:
        return [fn(item) for item in items]
    ctx = _pool_context()
    with ctx.Pool(processes=workers) as pool:
        return pool.map(fn, items, chunksize=chunksize)


def run_seed_sweep(
    worker: Callable[[int], RunEnvelope],
    seeds: Sequence[int],
    *,
    workers: int = 1,
) -> list[RunEnvelope]:
    """Run ``worker(seed)`` for every seed, merged in seed order.

    The worker must return a :class:`RunEnvelope` for the seed it was
    given; the sweep verifies each envelope landed in the slot of the
    seed that produced it, so a mis-wired worker fails loudly instead of
    silently permuting results.
    """
    seeds = list(seeds)
    envelopes = parallel_map(worker, seeds, workers=workers)
    for seed, env in zip(seeds, envelopes):
        if env.seed != seed:
            raise RuntimeError(
                f"seed sweep misalignment: slot for seed {seed} holds an "
                f"envelope for seed {env.seed}"
            )
    return envelopes
