"""Deterministic parallel multi-seed execution.

Seed sweeps (chaos soaks, stabilisation statistics, benchmark batteries)
are embarrassingly parallel: every seeded run is an isolated simulation
with its own RNG registry.  This package fans such runs out over worker
processes while keeping the *merged* result exactly what the sequential
loop produces — results come back in seed order, each wrapped in a
:class:`RunEnvelope` whose canonical digest lets callers assert
byte-identical equivalence between worker counts.

Workers are plain ``multiprocessing`` processes (fork when available);
worker callables must be module-level (picklable).  ``workers=1``
bypasses multiprocessing entirely, so the sequential path stays the
reference semantics.
"""

from repro.parallel.executor import (
    RunEnvelope,
    available_workers,
    canonical_digest,
    make_envelope,
    merge_coverage_dicts,
    parallel_map,
    run_seed_sweep,
    shard_seeds,
)

__all__ = [
    "RunEnvelope",
    "available_workers",
    "canonical_digest",
    "make_envelope",
    "merge_coverage_dicts",
    "parallel_map",
    "run_seed_sweep",
    "shard_seeds",
]
