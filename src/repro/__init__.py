"""repro — reproduction of *Specifying and Using a Partitionable Group
Communication Service* (Fekete, Lynch, Shvartsman; PODC 1997).

The package is organised as the paper is:

- :mod:`repro.ioa` — the I/O automaton framework (untimed and timed) in
  which every specification and algorithm in the paper is expressed.
- :mod:`repro.sim` — a discrete-event simulator providing the virtual
  time base for the timed model and for the network substrate.
- :mod:`repro.net` — point-to-point channels and processors with the
  paper's *good/bad/ugly* failure statuses, plus partition scenarios.
- :mod:`repro.core` — the paper's formal content: the TO specification
  (Section 3), the VS specification (Section 4), the VStoTO algorithm
  (Section 5), its invariants and forward simulation (Section 6), and the
  timed wrappers of Section 7.
- :mod:`repro.membership` — the Section 8 implementation of VS:
  Cristian–Schmuck membership plus a logical token ring, together with
  the closed-form performance bounds.
- :mod:`repro.apps` — applications built on TO, most importantly the
  sequentially consistent replicated memory of footnote 3.
- :mod:`repro.analysis` — measurement helpers used by the benchmark
  harness to compare measured behaviour against the paper's bounds.
"""

from repro.core.to_spec import TOMachine
from repro.core.vs_spec import VSMachine, WeakVSMachine
from repro.core.vstoto import VStoTOProcess, VStoTOSystem
from repro.core.quorums import (
    ExplicitQuorumSystem,
    MajorityQuorumSystem,
    WeightedQuorumSystem,
)
from repro.membership import TokenRingVS, VSBounds

__all__ = [
    "TOMachine",
    "VSMachine",
    "WeakVSMachine",
    "VStoTOProcess",
    "VStoTOSystem",
    "ExplicitQuorumSystem",
    "MajorityQuorumSystem",
    "WeightedQuorumSystem",
    "TokenRingVS",
    "VSBounds",
]

__version__ = "1.0.0"
