"""Host wall-clock attribution for simulator callbacks.

The simulator runs everything — channel deliveries, protocol timers,
workload arrivals — as scheduled callbacks, so attributing *host* CPU
time to callback owners tells us which layer to optimise next without
touching virtual time (the ROADMAP's "as fast as the hardware allows"
loop needs exactly this).

Attribution key: the callback's ``__qualname__``, which names the code
site that created it (``Channel.send.<locals>.<lambda>``,
``PeriodicTimer._fire`` …) — free to compute, stable across runs, and
precise enough to rank hot paths.  The profiler is opt-in
(``Observability(profiling=True)``): when off, the simulator's fire path
pays one ``is None`` branch; when on, two ``perf_counter`` calls per
event.
"""

from __future__ import annotations

from dataclasses import dataclass
from time import perf_counter
from collections.abc import Callable


@dataclass
class OwnerProfile:
    """Accumulated host time for one callback owner."""

    owner: str
    calls: int = 0
    seconds: float = 0.0

    @property
    def mean_us(self) -> float:
        return 1e6 * self.seconds / self.calls if self.calls else 0.0


def owner_of(callback: Callable) -> str:
    """The attribution key for a callback (its defining code site)."""
    name = getattr(callback, "__qualname__", None)
    if name is not None:
        return name
    # functools.partial, callable instances, …
    func = getattr(callback, "func", None)
    if func is not None:
        inner = getattr(func, "__qualname__", None)
        if inner is not None:
            return f"partial({inner})"
    return type(callback).__name__


class CallbackProfiler:
    """Accumulates host wall-clock per callback owner."""

    def __init__(self) -> None:
        self.profiles: dict[str, OwnerProfile] = {}
        self.total_seconds = 0.0

    def run(self, callback: Callable[[], None]) -> None:
        """Run ``callback``, charging its host time to its owner."""
        started = perf_counter()
        try:
            callback()
        finally:
            elapsed = perf_counter() - started
            key = owner_of(callback)
            profile = self.profiles.get(key)
            if profile is None:
                profile = OwnerProfile(key)
                self.profiles[key] = profile
            profile.calls += 1
            profile.seconds += elapsed
            self.total_seconds += elapsed

    # ------------------------------------------------------------------
    def top(self, n: int = 10) -> list[OwnerProfile]:
        """The ``n`` most expensive owners by accumulated host time."""
        return sorted(
            self.profiles.values(), key=lambda p: p.seconds, reverse=True
        )[:n]

    def as_dict(self) -> dict:
        return {
            "total_seconds": self.total_seconds,
            "owners": [
                {
                    "owner": p.owner,
                    "calls": p.calls,
                    "seconds": p.seconds,
                    "mean_us": p.mean_us,
                }
                for p in self.top(len(self.profiles))
            ],
        }

    def render_text(self, n: int = 10) -> str:
        lines = [f"{'calls':>8} {'total s':>10} {'mean µs':>9}  owner"]
        for p in self.top(n):
            lines.append(
                f"{p.calls:>8} {p.seconds:>10.4f} {p.mean_us:>9.1f}  {p.owner}"
            )
        return "\n".join(lines)
