"""Cluster-wide live observability (E24).

The live runtime (:mod:`repro.rt`) runs the protocol stack across real
OS processes; each node observes *itself* (a per-process
:class:`~repro.obs.Observability` hub, a per-node event log).  This
package assembles those per-node views into one cluster-wide picture:

- :mod:`repro.obs.live.snapshot` — typed metrics snapshot frames
  shipped over the driver control plane, and the
  :class:`~repro.obs.live.snapshot.ClusterTimeline` that aggregates the
  per-node series into ``metrics.jsonl``;
- :mod:`repro.obs.live.stitch` — the post-run stitcher: merges the
  per-node event logs and reconstructs *distributed* spans
  (bcast→gpsnd→per-node gprcv/safe→brcv message spans, view-formation
  spans) that cross OS-process boundaries, with firewall/SIGKILL
  windows annotated, reusing :mod:`repro.obs.tracing` span types so
  :mod:`repro.obs.export` renders whole-cluster Perfetto traces;
- :mod:`repro.obs.live.slo` — fixed-bucket latency distributions
  (p50/p99/p999), SLO evaluation, and the Section 8 bounds checker
  comparing measured safe-delivery latency against d = 2π + nδ;
- :mod:`repro.obs.live.report` — the run-report builder behind
  ``python -m repro.obs report <logdir>``.

Everything here is *passive and deterministic*: the package never reads
the host clock (timestamps come from the captured logs and control
frames) and the stitcher's output is byte-identical however the
per-node logs arrive (torn tails included) — the determinism tests
assert both.
"""

from __future__ import annotations

from repro.obs.live.report import RunReport, build_report, render_text
from repro.obs.live.snapshot import ClusterTimeline, MetricsSnapshot
from repro.obs.live.slo import (
    BoundsVerdict,
    LatencySummary,
    SLOSpec,
    SLOVerdict,
    check_bounds,
)
from repro.obs.live.stitch import (
    StitchedRun,
    stitch_events,
    stitch_log_dir,
    stitched_jsonl,
)

__all__ = [
    "BoundsVerdict",
    "ClusterTimeline",
    "LatencySummary",
    "MetricsSnapshot",
    "RunReport",
    "SLOSpec",
    "SLOVerdict",
    "StitchedRun",
    "build_report",
    "check_bounds",
    "render_text",
    "stitch_events",
    "stitch_log_dir",
    "stitched_jsonl",
]
