"""Latency SLOs and the Section 8 bounds checker for live runs.

Three layers, each consuming the one below:

1. **Samples** — latency sample extractors over a
   :class:`~repro.obs.live.stitch.StitchedRun`: per-message safe
   completion (``gpsnd`` → safe at every member, the paper's *d*
   quantity), per-message end-to-end delivery (``bcast`` → ``brcv`` at
   every member, the Theorem 7.2 quantity), per-message first hop
   (``gpsnd`` → earliest ``gprcv``, a measurable overestimate of the
   link bound δ) and per-view installation (proposal → installed at
   every member, the *b* quantity).  Extractors default to *clean*
   spans only — spans whose lifetime overlaps no annotated fault
   window are the only ones the paper's good-regime bounds speak
   about.

2. **Summaries and SLOs** — :class:`LatencySummary` renders a sample
   set as exact nearest-rank p50/p99/p999 plus a fixed-bucket
   histogram (same ladder for every run, so summaries diff cleanly
   across runs); :class:`SLOSpec` gates one summary statistic against
   a threshold, producing an :class:`SLOVerdict`.

3. **Bounds** — :func:`check_bounds` instantiates the paper's closed
   forms  b = 9δ + max{π + (n+3)δ, μ}  and  d = 2π + nδ
   (:class:`~repro.membership.bounds.VSBounds`) with the *measured*
   δ* (p99 of the first-hop samples) and checks the measured safe-p99
   and view-installation maxima against them.  δ* is deliberately an
   overestimate of δ (a first hop includes queueing and token wait,
   not just the wire), which makes the gate conservative: if the run
   violates  d(δ*)  it violates  d(δ)  for the true δ too.  On
   loopback the 2π term dominates d, so clean CI runs pass with wide
   headroom while a genuine stall (a span straddling an unannotated
   partition, a wedged token) still trips the gate.

Everything is pure arithmetic over the stitched run — no clocks, no
I/O — so verdicts are reproducible from the archived logs alone.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import inf
from typing import Any
from collections.abc import Sequence

from repro.membership.bounds import VSBounds
from repro.obs.live.stitch import StitchedRun
from repro.obs.metrics import bound_key

#: One fixed bucket ladder for every latency summary (seconds) — runs
#: are comparable because the ladder never adapts to the data.
DEFAULT_LATENCY_BUCKETS: tuple[float, ...] = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
    0.25, 0.5, 1.0, 2.5, 5.0, 10.0, inf,
)


def quantile(samples: Sequence[float], q: float) -> float:
    """Nearest-rank quantile (inclusive): the smallest sample such that
    at least ``q`` of the set is ≤ it.  Deterministic, no interpolation;
    0.0 on an empty set so summaries of idle runs stay well-formed."""
    if not samples:
        return 0.0
    if not 0.0 < q <= 1.0:
        raise ValueError(f"quantile must be in (0, 1]: {q}")
    ordered = sorted(samples)
    # ceil(q * n) without float rank arithmetic: q arrives as a short
    # decimal (0.5, 0.99, 0.999), so scale by 1000 exactly.
    rank = -(-(int(round(q * 1000)) * len(ordered)) // 1000)
    return ordered[max(rank, 1) - 1]


@dataclass(frozen=True)
class LatencySummary:
    """One sample set summarised: exact quantiles + fixed buckets."""

    name: str
    count: int
    mean: float
    p50: float
    p99: float
    p999: float
    max: float
    #: cumulative counts keyed like histogram snapshots ("0.05", "+Inf")
    buckets: dict[str, int]

    @classmethod
    def from_samples(
        cls,
        name: str,
        samples: Sequence[float],
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
    ) -> LatencySummary:
        counts = {
            bound_key(bound): sum(1 for s in samples if s <= bound)
            for bound in buckets
        }
        return cls(
            name=name,
            count=len(samples),
            mean=sum(samples) / len(samples) if samples else 0.0,
            p50=quantile(samples, 0.5),
            p99=quantile(samples, 0.99),
            p999=quantile(samples, 0.999),
            max=max(samples, default=0.0),
            buckets=counts,
        )

    def stat(self, which: str) -> float:
        """One named statistic ("p50" | "p99" | "p999" | "max" | "mean")."""
        value = getattr(self, which, None)
        if not isinstance(value, (int, float)):
            raise ValueError(f"unknown statistic {which!r}")
        return float(value)

    def to_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "count": self.count,
            "mean": self.mean,
            "p50": self.p50,
            "p99": self.p99,
            "p999": self.p999,
            "max": self.max,
            "buckets": self.buckets,
        }


@dataclass(frozen=True)
class SLOSpec:
    """One latency objective: ``summary.stat(statistic) <= threshold``.

    An empty sample set passes vacuously (``require_samples`` demands a
    minimum population instead, for gates that must not silently pass
    because nothing was measured)."""

    name: str
    summary: str       # which LatencySummary (by name)
    statistic: str     # "p50" | "p99" | "p999" | "max" | "mean"
    threshold: float   # seconds
    require_samples: int = 0

    def evaluate(self, summary: LatencySummary) -> SLOVerdict:
        observed = summary.stat(self.statistic)
        if summary.count < self.require_samples:
            return SLOVerdict(
                spec=self, observed=observed, samples=summary.count,
                ok=False,
                detail=(
                    f"{summary.count} samples < required "
                    f"{self.require_samples}"
                ),
            )
        ok = summary.count == 0 or observed <= self.threshold
        detail = "" if ok else (
            f"{self.summary}.{self.statistic} = {observed:.6g}s > "
            f"{self.threshold:.6g}s"
        )
        return SLOVerdict(
            spec=self, observed=observed, samples=summary.count,
            ok=ok, detail=detail,
        )


@dataclass(frozen=True)
class SLOVerdict:
    spec: SLOSpec
    observed: float
    samples: int
    ok: bool
    detail: str = ""

    def to_dict(self) -> dict[str, Any]:
        return {
            "name": self.spec.name,
            "summary": self.spec.summary,
            "statistic": self.spec.statistic,
            "threshold": self.spec.threshold,
            "observed": self.observed,
            "samples": self.samples,
            "ok": self.ok,
            "detail": self.detail,
        }


def default_slos(bounds: VSBounds, n: int) -> tuple[SLOSpec, ...]:
    """SLOs derived from the configured (not measured) bounds: the run
    promised these numbers when it chose its δ/π/μ, so exceeding them
    is a regression even when the measured-δ gate would still pass."""
    return (
        SLOSpec("safe-p99-under-d", "safe", "p99", bounds.d(n)),
        SLOSpec(
            "delivery-p99-under-b+d", "delivery", "p99", bounds.to_b(n)
        ),
        SLOSpec(
            "view-install-max-under-b+d",
            "view_install", "max", bounds.to_b(n),
        ),
    )


# ----------------------------------------------------------------------
# Sample extraction from stitched spans
# ----------------------------------------------------------------------
def fault_windows(run: StitchedRun) -> list[tuple[float, float]]:
    return [(f.start, f.stop) for f in run.tracer.faults]


def _overlaps(
    start: float, end: float, windows: Sequence[tuple[float, float]]
) -> bool:
    return any(start <= stop and end >= begin for begin, stop in windows)


def safe_samples(run: StitchedRun, clean_only: bool = True) -> list[float]:
    """Per-message gpsnd → safe-at-every-member latency (the *d*
    measurement), for messages whose view completed the safe round."""
    windows = fault_windows(run) if clean_only else ()
    samples = []
    for span in run.tracer.message_spans:
        if span.gpsnd_at is None:
            continue
        members = run.tracer.members_of(span.viewid)
        if members is None:
            continue
        completed = span.safe_complete_at(members)
        if completed is None:
            continue
        if clean_only and _overlaps(span.gpsnd_at, completed, windows):
            continue
        samples.append(completed - span.gpsnd_at)
    return samples


def delivery_samples(
    run: StitchedRun, clean_only: bool = True
) -> list[float]:
    """Per-message bcast → brcv-at-every-member latency (Theorem 7.2),
    against the membership of the sending view."""
    windows = fault_windows(run) if clean_only else ()
    samples = []
    for span in run.tracer.message_spans:
        if span.bcast_at is None:
            continue
        members = run.tracer.members_of(span.viewid)
        if members is None:
            continue
        completed = span.delivered_complete_at(members)
        if completed is None:
            continue
        if clean_only and _overlaps(span.bcast_at, completed, windows):
            continue
        samples.append(completed - span.bcast_at)
    return samples


def first_hop_samples(
    run: StitchedRun, clean_only: bool = True
) -> list[float]:
    """Per-message gpsnd → earliest gprcv latency: the measurable
    stand-in for the link bound δ (an overestimate — it includes token
    wait, so bounds built from its p99 are conservative)."""
    windows = fault_windows(run) if clean_only else ()
    samples = []
    for span in run.tracer.message_spans:
        if span.gpsnd_at is None or not span.gprcv_at:
            continue
        first = min(span.gprcv_at.values())
        if clean_only and _overlaps(span.gpsnd_at, first, windows):
            continue
        samples.append(first - span.gpsnd_at)
    return samples


def view_install_samples(
    run: StitchedRun, clean_only: bool = True
) -> list[float]:
    """Per-view proposal → installed-at-every-member latency (the *b*
    measurement), for views that did install everywhere."""
    windows = fault_windows(run) if clean_only else ()
    samples = []
    for span in run.tracer.view_spans.values():
        start = span.start_time()
        installed = span.installed_everywhere_at()
        if installed is None or start == inf:
            continue
        if clean_only and _overlaps(start, installed, windows):
            continue
        samples.append(installed - start)
    return samples


def latency_summaries(
    run: StitchedRun, clean_only: bool = True
) -> dict[str, LatencySummary]:
    """Every extractor summarised, keyed by the SLO ``summary`` names."""
    return {
        "safe": LatencySummary.from_samples(
            "safe", safe_samples(run, clean_only)
        ),
        "delivery": LatencySummary.from_samples(
            "delivery", delivery_samples(run, clean_only)
        ),
        "first_hop": LatencySummary.from_samples(
            "first_hop", first_hop_samples(run, clean_only)
        ),
        "view_install": LatencySummary.from_samples(
            "view_install", view_install_samples(run, clean_only)
        ),
    }


def evaluate_slos(
    summaries: dict[str, LatencySummary], specs: Sequence[SLOSpec]
) -> list[SLOVerdict]:
    verdicts = []
    for spec in specs:
        summary = summaries.get(spec.summary)
        if summary is None:
            summary = LatencySummary.from_samples(spec.summary, ())
        verdicts.append(spec.evaluate(summary))
    return verdicts


# ----------------------------------------------------------------------
# Section 8 bounds checker
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class BoundsVerdict:
    """Measured latencies vs the paper's closed forms at measured δ*."""

    n: int
    pi: float
    mu: float
    delta_config: float
    #: δ* — p99 of clean first-hop samples (δ_config when unmeasured)
    delta_measured: float
    #: d(δ*) = 2π + nδ*
    d_bound: float
    #: b(δ*) = 9δ* + max{π + (n+3)δ*, μ}
    b_bound: float
    safe_p99: float
    view_install_max: float
    safe_count: int
    view_count: int
    ok: bool
    violations: tuple[str, ...]

    def to_dict(self) -> dict[str, Any]:
        return {
            "n": self.n,
            "pi": self.pi,
            "mu": self.mu,
            "delta_config": self.delta_config,
            "delta_measured": self.delta_measured,
            "d_bound": self.d_bound,
            "b_bound": self.b_bound,
            "safe_p99": self.safe_p99,
            "view_install_max": self.view_install_max,
            "safe_count": self.safe_count,
            "view_count": self.view_count,
            "ok": self.ok,
            "violations": list(self.violations),
        }


def check_bounds(
    run: StitchedRun,
    bounds: VSBounds,
    n: int | None = None,
) -> BoundsVerdict:
    """Gate a stitched run against b and d instantiated at measured δ*.

    Only clean (fault-window-free) spans participate: the paper's
    bounds hold once the network is stable, and the fault annotations
    tell us exactly when it was not.  Empty sample sets pass — an idle
    run violates nothing (the report layer separately requires
    activity where activity is expected).
    """
    group_size = n if n is not None else len(run.processors)
    hops = first_hop_samples(run)
    delta_star = quantile(hops, 0.99) if hops else bounds.delta
    star = VSBounds(
        delta=max(delta_star, 1e-9), pi=bounds.pi, mu=bounds.mu
    )
    d_bound = star.d(group_size)
    b_bound = star.b(group_size)

    safe = safe_samples(run)
    installs = view_install_samples(run)
    safe_p99 = quantile(safe, 0.99)
    install_max = max(installs, default=0.0)

    violations = []
    if safe and safe_p99 > d_bound:
        violations.append(
            f"safe p99 {safe_p99:.6g}s exceeds d = 2π + nδ* = "
            f"{d_bound:.6g}s (n={group_size}, δ*={delta_star:.6g}s)"
        )
    if installs and install_max > b_bound + d_bound:
        violations.append(
            f"view install max {install_max:.6g}s exceeds b + d = "
            f"{b_bound + d_bound:.6g}s (n={group_size}, "
            f"δ*={delta_star:.6g}s)"
        )
    return BoundsVerdict(
        n=group_size,
        pi=bounds.pi,
        mu=bounds.mu,
        delta_config=bounds.delta,
        delta_measured=delta_star,
        d_bound=d_bound,
        b_bound=b_bound,
        safe_p99=safe_p99,
        view_install_max=install_max,
        safe_count=len(safe),
        view_count=len(installs),
        ok=not violations,
        violations=tuple(violations),
    )
