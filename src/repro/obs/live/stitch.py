"""Cross-node span stitching: distributed spans from per-node logs.

A live run leaves one JSONL event log per OS process (see
:mod:`repro.rt.trace`).  Each log sees only its own side of a message's
lifecycle — the origin logs ``bcast``/``gpsnd``, every member logs its
own ``gprcv``/``safe``/``brcv``.  The stitcher merges the logs on the
shared host clock and replays them through the *same*
:class:`~repro.obs.tracing.LifecycleTracer` the simulator uses, so one
:class:`~repro.obs.tracing.MessageSpan` ends up holding lifecycle
points recorded by several different processes — a genuinely
distributed span — and :mod:`repro.obs.export` renders the whole
cluster into one Perfetto trace without knowing it was live.

Fault context comes from the driver's timeline (``cluster.timeline.json``):
``partition``/``heal`` marks pair into firewall windows and ``kill``
marks become crash annotations, so the exported trace shows what the
driver was doing to the network while a view formed.

Determinism contract (asserted by the tests): stitched output is a
pure function of the *set* of log lines.  :func:`~repro.rt.trace.
load_event_logs` sorts the merged events by ``(ts, node, seq)`` and
skips torn tail lines, every derived structure is filled in that merged
order, and :func:`stitched_jsonl` serialises with sorted keys — so the
bytes are identical however the per-node files arrive.

Times are rebased to seconds from the run's first event (``t0``), which
keeps stitched live spans in the same "small floats from zero" shape as
simulated ones (and Perfetto scrubbing comfortable).
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Any
from collections.abc import Iterable, Sequence

from repro.core.types import View
from repro.ioa.actions import act
from repro.ioa.timed import TimedTrace
from repro.obs.export import jsonl_records
from repro.obs.tracing import LifecycleTracer
from repro.rt.trace import TO_EVENTS, VS_EVENTS, load_event_logs

#: Driver-timeline mark names that become trace annotations.
FAULT_MARKS = ("partition", "heal", "kill", "restart")


@dataclass
class StitchedRun:
    """One live run, stitched: spans, fault windows, provenance."""

    processors: tuple[str, ...]
    initial_view: View
    #: epoch time of the first event; every span time is relative to it
    t0: float
    #: merged events fed to the tracer
    events: int
    tracer: LifecycleTracer
    #: driver timeline marks, times rebased to t0
    timeline: tuple[dict[str, Any], ...] = ()

    @property
    def duration(self) -> float:
        """Seconds from t0 to the last recorded lifecycle point."""
        last = 0.0
        for span in self.tracer.message_spans:
            last = max(last, span.end_time(), span.start_time())
        for view_span in self.tracer.view_spans.values():
            last = max(last, view_span.end_time())
        return max(last, 0.0)

    def cross_node_spans(self) -> int:
        """Message spans whose lifecycle points came from more than one
        node — the stitching acceptance measure (a span recorded by the
        origin alone never left its process)."""
        count = 0
        for span in self.tracer.message_spans:
            nodes = {str(span.origin)}
            nodes.update(str(p) for p in span.gprcv_at)
            nodes.update(str(p) for p in span.safe_at)
            nodes.update(str(p) for p in span.brcv_at)
            if len(nodes) > 1:
                count += 1
        return count

    def viewids(self) -> tuple[Any, ...]:
        """Every view id with members known: v0 plus formed views."""
        ids: list[Any] = [self.initial_view.id]
        ids.extend(
            viewid
            for viewid in self.tracer.view_spans
            if viewid != self.initial_view.id
        )
        return tuple(ids)


def default_initial_view(processors: Sequence[str]) -> View:
    """The live stack's v0: whole group, id (0, min) — mirrors
    :func:`repro.rt.node.initial_view_for` without importing the node
    daemon module."""
    procs = tuple(sorted(processors))
    return View((0, min(procs)), frozenset(procs))


def stitch_events(
    events: Sequence[dict[str, Any]],
    processors: Sequence[str],
    initial_view: View | None = None,
    timeline: Sequence[dict[str, Any]] = (),
    t0: float | None = None,
) -> StitchedRun:
    """Stitch a merged event sequence (see
    :func:`~repro.rt.trace.load_event_logs`) into distributed spans.

    ``timeline`` takes the cluster driver's marks (``{"t": epoch,
    "event": name, ...}``); partition/heal pairs become firewall
    annotations, kills become crash annotations.  ``t0`` overrides the
    rebasing origin (default: the earliest event or mark).
    """
    procs = tuple(sorted(processors))
    view0 = initial_view if initial_view is not None else default_initial_view(procs)
    candidates = [e["ts"] for e in events]
    candidates.extend(m["t"] for m in timeline if "t" in m)
    origin = t0 if t0 is not None else min(candidates, default=0.0)

    tracer = LifecycleTracer()
    tracer.set_initial_view(view0)
    fed = 0
    for entry in events:
        name = entry["ev"]
        time = entry["ts"] - origin
        args = tuple(entry["args"])
        if name in VS_EVENTS:
            tracer.on_vs_event(time, name, args)
            fed += 1
        elif name in TO_EVENTS:
            tracer.on_to_event(time, name, args)
            fed += 1

    marks = _rebase_timeline(timeline, origin)
    end = max(
        [e["ts"] - origin for e in events] + [m["t"] for m in marks],
        default=0.0,
    )
    _annotate_faults(tracer, marks, end)
    return StitchedRun(
        processors=procs,
        initial_view=view0,
        t0=origin,
        events=fed,
        tracer=tracer,
        timeline=tuple(marks),
    )


def stitch_log_dir(
    log_dir: str | Path,
    processors: Sequence[str] | None = None,
    initial_view: View | None = None,
) -> StitchedRun:
    """Stitch every ``*.events.jsonl`` under ``log_dir``.

    Processors default to the log file names; the driver timeline is
    read from ``cluster.timeline.json`` when present.
    """
    root = Path(log_dir)
    paths = sorted(root.glob("*.events.jsonl"))
    if processors is None:
        processors = tuple(
            sorted(path.name[: -len(".events.jsonl")] for path in paths)
        )
    if not processors:
        raise FileNotFoundError(f"no *.events.jsonl under {root}")
    events = load_event_logs(paths)
    timeline: Sequence[dict[str, Any]] = ()
    timeline_path = root / "cluster.timeline.json"
    if timeline_path.exists():
        timeline = json.loads(timeline_path.read_text(encoding="utf-8"))
    return stitch_events(
        events, processors, initial_view=initial_view, timeline=timeline
    )


def _rebase_timeline(
    timeline: Sequence[dict[str, Any]], origin: float
) -> list[dict[str, Any]]:
    marks = []
    for mark in timeline:
        if "t" not in mark or "event" not in mark:
            continue
        rebased = dict(mark)
        rebased["t"] = float(mark["t"]) - origin
        marks.append(rebased)
    marks.sort(key=lambda m: (m["t"], str(m["event"])))
    return marks


def _groups_text(groups: Iterable[Iterable[str]]) -> str:
    return "|".join(
        ",".join(sorted(str(p) for p in group)) for group in groups
    )


def _annotate_faults(
    tracer: LifecycleTracer, marks: Sequence[dict[str, Any]], end: float
) -> None:
    """Pair driver marks into tracer fault windows.

    The live firewall holds one partition at a time (episodes are
    applied, held, healed sequentially — see the cluster driver), so
    pairing is first-open-first-close; a window still open at the end
    of the capture closes at ``end``.  SIGKILLs never heal: the crash
    window runs to ``end``.
    """
    open_at: float | None = None
    open_name = ""
    for mark in marks:
        kind = str(mark["event"])
        time = float(mark["t"])
        if kind == "partition":
            if open_at is None:
                open_at = time
                open_name = _groups_text(mark.get("groups", ())) or "partition"
        elif kind == "heal" and open_at is not None:
            tracer.on_fault_window(
                "partition", open_name, open_at, max(time, open_at)
            )
            open_at = None
        elif kind == "kill":
            node = str(mark.get("node", "?"))
            tracer.on_fault_window(
                "crash", f"SIGKILL {node}", time, max(end, time)
            )
        elif kind == "restart":
            node = str(mark.get("node", "?"))
            tracer.on_fault_window("restart", f"restart {node}", time, time)
    if open_at is not None:
        tracer.on_fault_window(
            "partition", open_name, open_at, max(end, open_at)
        )


# ----------------------------------------------------------------------
# Canonical serialisation (the determinism surface)
# ----------------------------------------------------------------------
def stitched_records(run: StitchedRun) -> list[dict[str, Any]]:
    """Structured records for one stitched run: a provenance header,
    then the tracer's span/fault records in export order."""
    header = {
        "type": "stitched_run",
        "processors": list(run.processors),
        "initial_view": str(run.initial_view.id),
        "events": run.events,
        "message_spans": len(run.tracer.message_spans),
        "view_spans": len(run.tracer.view_spans),
        "fault_windows": len(run.tracer.faults),
        "cross_node_spans": run.cross_node_spans(),
        "unmatched_events": run.tracer.unmatched_events,
    }
    return [header, *jsonl_records(tracer=run.tracer)]


def stitched_jsonl(run: StitchedRun) -> str:
    """Canonical JSONL rendering: sorted keys, compact separators.

    Byte-identical for any arrival order of the same per-node logs —
    the determinism tests diff this string.
    """
    return "".join(
        json.dumps(record, sort_keys=True, separators=(",", ":")) + "\n"
        for record in stitched_records(run)
    )


# ----------------------------------------------------------------------
# Timed-trace view (tracefmt rendering of live runs)
# ----------------------------------------------------------------------
def live_timed_trace(
    events: Sequence[dict[str, Any]],
    timeline: Sequence[dict[str, Any]] = (),
    t0: float | None = None,
) -> TimedTrace:
    """A :class:`TimedTrace` over the merged live events plus driver
    fault marks, rebased to ``t0`` — so
    :func:`repro.analysis.tracefmt.format_timeline` renders a live
    capture exactly like a simulated one (fault marks get their own
    action names: ``firewall_on``/``firewall_off`` per processor,
    ``sigkill``/``restart`` per node)."""
    candidates = [e["ts"] for e in events]
    candidates.extend(m["t"] for m in timeline if "t" in m)
    origin = t0 if t0 is not None else min(candidates, default=0.0)
    timed: list[tuple[float, Any]] = [
        (e["ts"] - origin, act(e["ev"], *e["args"])) for e in events
    ]
    for mark in _rebase_timeline(timeline, origin):
        kind = str(mark["event"])
        time = float(mark["t"])
        if kind == "partition":
            groups = [
                tuple(sorted(str(p) for p in group))
                for group in mark.get("groups", ())
            ]
            for group in groups:
                for p in group:
                    timed.append(
                        (time, act("firewall_on", p, _groups_text([group])))
                    )
        elif kind == "heal":
            nodes = sorted(str(p) for p in mark.get("nodes", ()))
            for p in nodes:
                timed.append((time, act("firewall_off", p)))
            if not nodes:
                timed.append((time, act("firewall_off")))
        elif kind == "kill":
            timed.append((time, act("sigkill", str(mark.get("node", "?")))))
        elif kind == "restart":
            timed.append((time, act("restart", str(mark.get("node", "?")))))
    timed.sort(key=lambda pair: pair[0])  # stable: ties keep merge order
    trace = TimedTrace()
    for time, action in timed:
        trace.append(time, action)
    return trace
