"""Run reports: everything one live run produced, judged in one place.

``python -m repro.obs report <logdir>`` points at a cluster run's log
directory — the per-node ``*.events.jsonl`` logs, the driver's
``cluster.timeline.json``, and (when the driver streamed metrics)
``metrics.jsonl`` — and produces one verdict:

- the stitcher's cross-node span counts (did the capture actually
  stitch into distributed spans?),
- the latency summaries over clean spans (p50/p99/p999 per quantity),
- every SLO verdict (thresholds derived from the run's configured
  δ/π/μ via the paper's closed forms),
- the Section 8 bounds verdict at measured δ*
  (:func:`~repro.obs.live.slo.check_bounds`).

Exit status is the contract: 0 iff every SLO holds and the bounds
checker is satisfied, 1 otherwise — so CI can gate on the report
directly and a human reading the text rendering sees exactly which
number went over which line.

Timing parameters come from the driver's ``config`` timeline mark when
present (the driver records the δ it launched the nodes with);
otherwise the :func:`~repro.rt.node.default_ring_config` scaling from
the default δ = 0.05 s is assumed.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Any

from repro.membership.bounds import VSBounds
from repro.obs.live.snapshot import ClusterTimeline
from repro.obs.live.slo import (
    BoundsVerdict,
    LatencySummary,
    SLOVerdict,
    check_bounds,
    default_slos,
    evaluate_slos,
    latency_summaries,
)
from repro.obs.live.stitch import StitchedRun, stitch_log_dir

#: The assumed one-hop bound when the run recorded no config (matches
#: the live node's default).
DEFAULT_DELTA = 0.05


#: The wire-metric families synced by the live transport (see
#: ``LiveNetwork._sync_wire_metrics``), mapped to summary keys.
_WIRE_FAMILIES = {
    "rt_wire_frames": "frames",
    "rt_wire_bytes": "bytes",
    "rt_wire_entries": "entries",
    "rt_wire_flushes": "flushes",
    "rt_wire_codec_seconds": "seconds",
}


def wire_summary(timeline: ClusterTimeline) -> dict[str, dict[str, float]]:
    """Cluster-wide wire totals per codec, from each node's latest
    snapshot.

    Keys look like ``"out/binary"`` (direction/codec) mapping to the
    summed frames/bytes/entries; codec time lands under
    ``"encode/binary"``/``"decode/json"``.  Empty when the run predates
    wire metrics — the report renders nothing rather than zeros.
    """
    totals: dict[str, dict[str, float]] = {}
    for node in timeline.nodes():
        snapshot = timeline.latest(node)
        if snapshot is None:
            continue
        for family_name, key in _WIRE_FAMILIES.items():
            family = snapshot.metrics.get(family_name)
            if family is None:
                continue
            for sample in family.get("samples", ()):
                labels = sample.get("labels", {})
                codec = labels.get("codec", "?")
                # Flushes carry no dir label; they are a tx-side count.
                axis = labels.get("dir") or labels.get("op") or "out"
                bucket = totals.setdefault(f"{axis}/{codec}", {})
                bucket[key] = bucket.get(key, 0.0) + float(
                    sample.get("value", 0.0)
                )
    return {k: totals[k] for k in sorted(totals)}


def bounds_for_delta(delta: float) -> VSBounds:
    """π and μ scaled from δ exactly as the live node scales them."""
    return VSBounds(delta=delta, pi=4 * delta, mu=20 * delta)


def bounds_from_timeline(
    marks: Any, default_delta: float = DEFAULT_DELTA
) -> VSBounds:
    """The run's timing parameters: the driver's ``config`` mark when
    recorded, the default scaling otherwise."""
    for mark in marks or ():
        if isinstance(mark, dict) and mark.get("event") == "config":
            delta = float(mark.get("delta", default_delta))
            return VSBounds(
                delta=delta,
                pi=float(mark.get("pi", 4 * delta)),
                mu=float(mark.get("mu", 20 * delta)),
            )
    return bounds_for_delta(default_delta)


@dataclass
class RunReport:
    """One run's stitched evidence plus every verdict over it."""

    log_dir: str
    run: StitchedRun
    bounds: VSBounds
    summaries: dict[str, LatencySummary]
    slos: list[SLOVerdict]
    bounds_verdict: BoundsVerdict
    metrics: ClusterTimeline | None

    @property
    def ok(self) -> bool:
        return all(v.ok for v in self.slos) and self.bounds_verdict.ok

    @property
    def exit_code(self) -> int:
        return 0 if self.ok else 1

    def to_dict(self) -> dict[str, Any]:
        metrics_summary: dict[str, Any] | None = None
        if self.metrics is not None:
            metrics_summary = {
                "snapshots": len(self.metrics),
                "nodes": list(self.metrics.nodes()),
                "last_seq": {
                    node: latest.seq
                    for node in self.metrics.nodes()
                    if (latest := self.metrics.latest(node)) is not None
                },
            }
        return {
            "type": "run_report",
            "log_dir": self.log_dir,
            "ok": self.ok,
            "processors": list(self.run.processors),
            "events": self.run.events,
            "message_spans": len(self.run.tracer.message_spans),
            "cross_node_spans": self.run.cross_node_spans(),
            "view_spans": len(self.run.tracer.view_spans),
            "fault_windows": len(self.run.tracer.faults),
            "unmatched_events": self.run.tracer.unmatched_events,
            "duration": self.run.duration,
            "config": {
                "delta": self.bounds.delta,
                "pi": self.bounds.pi,
                "mu": self.bounds.mu,
            },
            "latency": {
                name: summary.to_dict()
                for name, summary in sorted(self.summaries.items())
            },
            "slos": [v.to_dict() for v in self.slos],
            "bounds": self.bounds_verdict.to_dict(),
            "metrics": metrics_summary,
            "wire": (
                wire_summary(self.metrics)
                if self.metrics is not None
                else {}
            ),
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)


def build_report(
    log_dir: str | Path, delta: float | None = None
) -> RunReport:
    """Stitch ``log_dir`` and judge it (see module docstring)."""
    root = Path(log_dir)
    run = stitch_log_dir(root)
    if delta is not None:
        bounds = bounds_for_delta(delta)
    else:
        bounds = bounds_from_timeline(run.timeline)
    summaries = latency_summaries(run)
    slos = evaluate_slos(
        summaries, default_slos(bounds, len(run.processors))
    )
    verdict = check_bounds(run, bounds)
    metrics: ClusterTimeline | None = None
    metrics_path = root / "metrics.jsonl"
    if metrics_path.exists():
        metrics = ClusterTimeline.load_jsonl(metrics_path)
    return RunReport(
        log_dir=str(root),
        run=run,
        bounds=bounds,
        summaries=summaries,
        slos=slos,
        bounds_verdict=verdict,
        metrics=metrics,
    )


def render_text(report: RunReport) -> str:
    """The human rendering: one screen, every verdict attributable."""
    run = report.run
    verdict = report.bounds_verdict
    lines = [
        f"run report: {report.log_dir}",
        "  processors: {procs}   events: {events}   duration: {dur:.3f}s".format(
            procs=",".join(run.processors),
            events=run.events,
            dur=run.duration,
        ),
        "  spans: {msgs} messages ({cross} cross-node), {views} views, "
        "{faults} fault windows, {unmatched} unmatched events".format(
            msgs=len(run.tracer.message_spans),
            cross=run.cross_node_spans(),
            views=len(run.tracer.view_spans),
            faults=len(run.tracer.faults),
            unmatched=run.tracer.unmatched_events,
        ),
    ]
    for fault in run.tracer.faults:
        lines.append(
            f"    fault: {fault.kind} {fault.name} "
            f"[{fault.start:.3f}s, {fault.stop:.3f}s]"
        )
    if report.metrics is not None:
        lines.append(
            "  metrics: {count} snapshots from {nodes} node(s)".format(
                count=len(report.metrics),
                nodes=len(report.metrics.nodes()),
            )
        )
        wire = wire_summary(report.metrics)
        if wire:
            lines.append("  wire (cluster totals per direction/codec):")
            for key, bucket in wire.items():
                if "frames" not in bucket:
                    lines.append(
                        f"    {key:<15} codec_time="
                        f"{bucket.get('seconds', 0.0):.6g}s"
                    )
                    continue
                frames = bucket.get("frames", 0.0)
                entries = bucket.get("entries", 0.0)
                lines.append(
                    "    {key:<15} frames={frames:.0f} entries={entries:.0f} "
                    "bytes={bytes:.0f} entries/frame={epf:.2f}".format(
                        key=key,
                        frames=frames,
                        entries=entries,
                        bytes=bucket.get("bytes", 0.0),
                        epf=(entries / frames) if frames else 0.0,
                    )
                )
    lines.append("  latency over clean spans (seconds):")
    for name in sorted(report.summaries):
        summary = report.summaries[name]
        lines.append(
            "    {name:<13} n={n:<5} p50={p50:.6g} p99={p99:.6g} "
            "p999={p999:.6g} max={mx:.6g}".format(
                name=name, n=summary.count, p50=summary.p50,
                p99=summary.p99, p999=summary.p999, mx=summary.max,
            )
        )
    lines.append("  SLOs (thresholds from configured δ/π/μ):")
    for slo in report.slos:
        status = "ok  " if slo.ok else "FAIL"
        lines.append(
            "    {status} {name}: {summary}.{stat} = {obs:.6g}s "
            "<= {thr:.6g}s (n={n})".format(
                status=status, name=slo.spec.name,
                summary=slo.spec.summary, stat=slo.spec.statistic,
                obs=slo.observed, thr=slo.spec.threshold, n=slo.samples,
            )
        )
        if slo.detail:
            lines.append(f"         {slo.detail}")
    lines.append(
        "  Section 8 bounds at measured δ* = {dstar:.6g}s "
        "(config δ = {dcfg:.6g}s, π = {pi:.6g}s, μ = {mu:.6g}s, n = {n}):".format(
            dstar=verdict.delta_measured, dcfg=verdict.delta_config,
            pi=verdict.pi, mu=verdict.mu, n=verdict.n,
        )
    )
    lines.append(
        "    d = 2π + nδ* = {d:.6g}s   safe p99 = {p99:.6g}s "
        "over {count} sample(s)".format(
            d=verdict.d_bound, p99=verdict.safe_p99,
            count=verdict.safe_count,
        )
    )
    lines.append(
        "    b + d = {bd:.6g}s   view install max = {mx:.6g}s "
        "over {count} view(s)".format(
            bd=verdict.b_bound + verdict.d_bound,
            mx=verdict.view_install_max, count=verdict.view_count,
        )
    )
    for violation in verdict.violations:
        lines.append(f"    BOUND VIOLATION: {violation}")
    lines.append(f"  VERDICT: {'OK' if report.ok else 'FAIL'}")
    return "\n".join(lines) + "\n"
