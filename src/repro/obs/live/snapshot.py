"""Typed metrics snapshot frames and the cluster metrics timeline.

Each live node hosts its own :class:`~repro.obs.metrics.MetricsRegistry`
(transport frames, ring counters, firewall drops).  The cluster driver
polls the control plane; every ``stats`` reply carries one
:class:`MetricsSnapshot` — the node's registry rendered through
:meth:`~repro.obs.metrics.MetricsRegistry.to_dict`, stamped with the
node's wall clock and a per-node sequence number.  The driver feeds the
frames into a :class:`ClusterTimeline`, which keeps the per-node series
in arrival-independent order and writes the whole run out as
``metrics.jsonl`` (one snapshot per line, grep/jq-friendly).

This module is pure data: it never reads a clock (the *node* stamps
``ts``, over in the :mod:`repro.rt` wall-clock carve-out) and never
touches sockets, so it is importable and testable without a cluster.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Any
from collections.abc import Iterator, Sequence

from repro.obs.metrics import MetricsRegistry


@dataclass(frozen=True)
class MetricsSnapshot:
    """One node's metrics registry at one control-plane poll.

    ``ts`` is the node's wall clock (epoch seconds, same clock as its
    event log, so snapshots and stitched spans share a time base);
    ``uptime`` its scheduler clock (seconds since node start); ``seq``
    a per-node monotonic counter, so reordered or duplicated frames are
    detectable.
    """

    node: str
    seq: int
    ts: float
    uptime: float
    metrics: dict[str, Any]

    def to_dict(self) -> dict[str, Any]:
        return {
            "node": self.node,
            "seq": self.seq,
            "ts": self.ts,
            "uptime": self.uptime,
            "metrics": self.metrics,
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> MetricsSnapshot:
        return cls(
            node=str(data["node"]),
            seq=int(data["seq"]),
            ts=float(data["ts"]),
            uptime=float(data["uptime"]),
            metrics=dict(data["metrics"]),
        )

    def registry(self) -> MetricsRegistry:
        """The snapshot's registry, reconstructed (exact round-trip)."""
        return MetricsRegistry.from_dict(self.metrics)

    def value(self, name: str, *label_values: object) -> float:
        """One counter/gauge child's value inside this snapshot (0.0
        when the family or child is absent) — the polling-side analogue
        of :meth:`MetricsRegistry.value`, without reconstruction cost."""
        family = self.metrics.get(name)
        if family is None:
            return 0.0
        wanted = [str(v) for v in label_values]
        names = list(family.get("labels", ()))
        for sample in family["samples"]:
            if [sample["labels"].get(k, "") for k in names] == wanted:
                return float(sample.get("value", 0.0))
        return 0.0


class ClusterTimeline:
    """Per-node metrics series, merged cluster-wide.

    Snapshots are kept sorted by ``(node, seq)`` so the timeline's
    contents — and the ``metrics.jsonl`` it writes — are independent of
    poll interleaving and arrival order.  Duplicate ``(node, seq)``
    frames (a retried poll) collapse to the first-seen frame.
    """

    def __init__(self) -> None:
        self._by_key: dict[tuple[str, int], MetricsSnapshot] = {}

    def add(self, snapshot: MetricsSnapshot) -> None:
        self._by_key.setdefault((snapshot.node, snapshot.seq), snapshot)

    def __len__(self) -> int:
        return len(self._by_key)

    def snapshots(self) -> Iterator[MetricsSnapshot]:
        """All snapshots, ordered by ``(node, seq)``."""
        for key in sorted(self._by_key):
            yield self._by_key[key]

    def nodes(self) -> tuple[str, ...]:
        return tuple(sorted({node for node, _seq in self._by_key}))

    def latest(self, node: str) -> MetricsSnapshot | None:
        """The highest-seq snapshot of one node (None if never seen)."""
        best: MetricsSnapshot | None = None
        for (n, _seq), snapshot in self._by_key.items():
            if n == node and (best is None or snapshot.seq > best.seq):
                best = snapshot
        return best

    def series(
        self, node: str, name: str, *label_values: object
    ) -> list[tuple[float, float]]:
        """One node's ``(ts, value)`` series for one metric child."""
        return [
            (snapshot.ts, snapshot.value(name, *label_values))
            for snapshot in self.snapshots()
            if snapshot.node == node
        ]

    def cluster_total(self, name: str, *label_values: object) -> float:
        """Sum of the latest value of one metric child across nodes."""
        total = 0.0
        for node in self.nodes():
            latest = self.latest(node)
            if latest is not None:
                total += latest.value(name, *label_values)
        return total

    # ------------------------------------------------------------------
    def write_jsonl(self, path: str | Path) -> int:
        """Write every snapshot as one JSON line; returns the count."""
        count = 0
        with open(path, "w", encoding="utf-8") as handle:
            for snapshot in self.snapshots():
                handle.write(
                    json.dumps(
                        snapshot.to_dict(), sort_keys=True,
                        separators=(",", ":"),
                    )
                    + "\n"
                )
                count += 1
        return count

    @classmethod
    def load_jsonl(cls, path: str | Path) -> ClusterTimeline:
        """Read a ``metrics.jsonl`` back (torn tail lines skipped, like
        the event-log loader)."""
        timeline = cls()
        with open(path, encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    entry = json.loads(line)
                except json.JSONDecodeError:
                    continue
                timeline.add(MetricsSnapshot.from_dict(entry))
        return timeline

    @classmethod
    def from_snapshots(
        cls, snapshots: Sequence[MetricsSnapshot]
    ) -> ClusterTimeline:
        timeline = cls()
        for snapshot in snapshots:
            timeline.add(snapshot)
        return timeline


__all__ = ["MetricsSnapshot", "ClusterTimeline"]
