"""Trace export: JSONL structured events and Chrome trace-event JSON.

Two output formats for one execution:

- **JSONL** — one JSON object per line (spans, fault annotations,
  metric samples); grep/jq-friendly, the post-mortem artifact CI
  uploads for failed tests;
- **Chrome trace-event format** — the ``{"traceEvents": [...]}`` JSON
  consumed by ``chrome://tracing`` and by Perfetto's legacy importer
  (ui.perfetto.dev → open trace file), so a whole partitioned execution
  can be scrubbed visually: one row per processor, async span arcs per
  message and per view, and a nemesis row showing fault windows.

Timestamps: the trace-event format wants microseconds; virtual time is
unitless, so we export 1 virtual time unit = 1 ms (``ts = 1000 * t``),
which makes typical δ/π/μ executions comfortably scrubbably sized.
"""

from __future__ import annotations

import json
from collections.abc import Hashable, Iterable
from typing import TYPE_CHECKING, Any, TextIO

from repro.obs.tracing import LifecycleTracer

if TYPE_CHECKING:
    from repro.ioa.timed import TimedTrace
    from repro.obs.metrics import MetricsRegistry
    from repro.obs.profile import CallbackProfiler

ProcId = Hashable

#: virtual time unit -> trace-event microseconds
TS_SCALE = 1000.0

_PID_SERVICE = 1
_PID_FAULTS = 2


def _ts(time: float) -> float:
    return TS_SCALE * time


def _tid(proc: ProcId, tids: dict) -> int:
    tid = tids.get(proc)
    if tid is None:
        tid = len(tids) + 1
        tids[proc] = tid
    return tid


def chrome_trace_events(tracer: LifecycleTracer) -> list[dict]:
    """Flatten a tracer into Chrome trace-event dicts."""
    events: list[dict] = []
    tids: dict = {}
    next_id = iter(range(1, 1 << 30))

    def meta(pid: int, tid: int, name: str) -> None:
        events.append(
            {
                "ph": "M",
                "pid": pid,
                "tid": tid,
                "name": "thread_name",
                "args": {"name": name},
            }
        )

    events.append(
        {
            "ph": "M",
            "pid": _PID_SERVICE,
            "tid": 0,
            "name": "process_name",
            "args": {"name": "group-communication-service"},
        }
    )
    events.append(
        {
            "ph": "M",
            "pid": _PID_FAULTS,
            "tid": 0,
            "name": "process_name",
            "args": {"name": "nemesis"},
        }
    )

    # Message lifecycles: one async arc per message, instants per point.
    for span in tracer.message_spans:
        start = span.start_time()
        end = span.end_time()
        if start > end:
            continue  # sent but never progressed; nothing to draw
        span_id = next(next_id)
        name = f"msg {span.payload!r}"[:64]
        origin_tid = _tid(span.origin, tids)
        common = {
            "cat": "message",
            "name": name,
            "id": span_id,
            "pid": _PID_SERVICE,
        }
        events.append(
            {**common, "ph": "b", "tid": origin_tid, "ts": _ts(start),
             "args": {"origin": str(span.origin), "view": str(span.viewid),
                      "seq": span.seq}}
        )
        for kind, points in (
            ("gprcv", span.gprcv_at),
            ("safe", span.safe_at),
            ("brcv", span.brcv_at),
        ):
            for member, time in sorted(points.items(), key=lambda kv: kv[1]):
                events.append(
                    {
                        "ph": "n",
                        "cat": "message",
                        "name": kind,
                        "id": span_id,
                        "pid": _PID_SERVICE,
                        "tid": _tid(member, tids),
                        "ts": _ts(time),
                        "args": {"member": str(member)},
                    }
                )
        if span.bcast_at is not None:
            events.append(
                {
                    "ph": "n",
                    "cat": "message",
                    "name": "bcast",
                    "id": span_id,
                    "pid": _PID_SERVICE,
                    "tid": origin_tid,
                    "ts": _ts(span.bcast_at),
                    "args": {},
                }
            )
        events.append(
            {**common, "ph": "e", "tid": origin_tid, "ts": _ts(end),
             "args": {}}
        )

    # View lifecycles.
    for span in tracer.view_spans.values():
        start = span.start_time()
        end = span.end_time()
        if start > end:
            continue
        span_id = next(next_id)
        anchor = span.initiator
        if anchor is None and span.newview_at:
            anchor = min(span.newview_at, key=lambda p: span.newview_at[p])
        tid = _tid(anchor, tids) if anchor is not None else 0
        members = (
            sorted(str(m) for m in span.members) if span.members else []
        )
        common = {
            "cat": "view",
            "name": f"view {span.viewid}",
            "id": span_id,
            "pid": _PID_SERVICE,
        }
        events.append(
            {**common, "ph": "b", "tid": tid, "ts": _ts(start),
             "args": {"members": members,
                      "initiator": str(span.initiator)}}
        )
        for kind, points in (
            ("newview", span.newview_at),
            ("established", span.established_at),
        ):
            for member, time in sorted(points.items(), key=lambda kv: kv[1]):
                events.append(
                    {
                        "ph": "n",
                        "cat": "view",
                        "name": kind,
                        "id": span_id,
                        "pid": _PID_SERVICE,
                        "tid": _tid(member, tids),
                        "ts": _ts(time),
                        "args": {"member": str(member)},
                    }
                )
        events.append(
            {**common, "ph": "e", "tid": tid, "ts": _ts(end), "args": {}}
        )

    # Fault windows as complete slices on the nemesis track.
    fault_tids: dict = {}
    for annotation in tracer.faults:
        tid = fault_tids.setdefault(annotation.kind, len(fault_tids) + 1)
        events.append(
            {
                "ph": "X",
                "cat": "fault",
                "name": annotation.name,
                "pid": _PID_FAULTS,
                "tid": tid,
                "ts": _ts(annotation.start),
                "dur": _ts(annotation.stop - annotation.start),
                "args": {"kind": annotation.kind},
            }
        )
    for kind, tid in fault_tids.items():
        meta(_PID_FAULTS, tid, kind)
    for proc, tid in tids.items():
        meta(_PID_SERVICE, tid, f"proc {proc}")
    return events


def chrome_trace(tracer: LifecycleTracer) -> dict:
    """The complete Chrome trace-event JSON object."""
    return {
        "traceEvents": chrome_trace_events(tracer),
        "displayTimeUnit": "ms",
        "otherData": {"producer": "repro.obs", "ts_scale": TS_SCALE},
    }


def write_chrome_trace(tracer: LifecycleTracer, path: str) -> None:
    with open(path, "w") as handle:
        json.dump(chrome_trace(tracer), handle)


def timed_trace_chrome(trace: TimedTrace, label: str = "events") -> dict:
    """A Chrome trace built from a plain :class:`TimedTrace` — the
    post-hoc fallback when no tracer was attached (CI failure
    artifacts).  Every event becomes an instant on one track."""
    events: list[dict] = [
        {
            "ph": "M",
            "pid": _PID_SERVICE,
            "tid": 1,
            "name": "thread_name",
            "args": {"name": label},
        }
    ]
    for event in trace.events:
        events.append(
            {
                "ph": "i",
                "s": "t",
                "cat": "event",
                "name": event.action.name,
                "pid": _PID_SERVICE,
                "tid": 1,
                "ts": _ts(event.time),
                "args": {"action": str(event.action)},
            }
        )
    return {"traceEvents": events, "displayTimeUnit": "ms"}


# ----------------------------------------------------------------------
# JSONL
# ----------------------------------------------------------------------
def jsonl_records(
    tracer: LifecycleTracer | None = None,
    metrics: MetricsRegistry | None = None,
    profiler: CallbackProfiler | None = None,
    timed_trace: TimedTrace | None = None,
) -> Iterable[dict]:
    """Structured-event records for JSONL export, in a stable order:
    spans, fault annotations, raw events, metric families, profile."""
    if tracer is not None:
        for span in tracer.message_spans:
            yield {
                "type": "message_span",
                "payload": repr(span.payload),
                "origin": str(span.origin),
                "view": str(span.viewid),
                "seq": span.seq,
                "bcast_at": span.bcast_at,
                "gpsnd_at": span.gpsnd_at,
                "gprcv_at": {str(k): v for k, v in span.gprcv_at.items()},
                "safe_at": {str(k): v for k, v in span.safe_at.items()},
                "brcv_at": {str(k): v for k, v in span.brcv_at.items()},
            }
        for span in tracer.view_spans.values():
            yield {
                "type": "view_span",
                "view": str(span.viewid),
                "members": sorted(str(m) for m in span.members or ()),
                "initiator": (
                    None if span.initiator is None else str(span.initiator)
                ),
                "proposed_at": span.proposed_at,
                "announced_at": span.announced_at,
                "newview_at": {str(k): v for k, v in span.newview_at.items()},
                "established_at": {
                    str(k): v for k, v in span.established_at.items()
                },
            }
        for annotation in tracer.faults:
            yield {
                "type": "fault_window",
                "kind": annotation.kind,
                "name": annotation.name,
                "start": annotation.start,
                "stop": annotation.stop,
            }
    if timed_trace is not None:
        for event in timed_trace.events:
            yield {
                "type": "event",
                "time": event.time,
                "name": event.action.name,
                "action": str(event.action),
            }
    if metrics is not None:
        for name, family in metrics.as_dict().items():
            yield {"type": "metric", "name": name, **family}
    if profiler is not None:
        yield {"type": "profile", **profiler.as_dict()}


def write_jsonl(path_or_handle: str | TextIO, **kwargs: Any) -> int:
    """Write :func:`jsonl_records` as JSON lines; returns the count."""
    if isinstance(path_or_handle, str):
        with open(path_or_handle, "w") as handle:
            return write_jsonl(handle, **kwargs)
    handle: TextIO = path_or_handle
    count = 0
    for record in jsonl_records(**kwargs):
        handle.write(json.dumps(record) + "\n")
        count += 1
    return count
