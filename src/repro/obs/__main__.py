"""Observability CLI: ``python -m repro.obs report <logdir>``.

The ``report`` subcommand judges one live cluster run from its archived
log directory (see :mod:`repro.obs.live.report`): it stitches the
per-node event logs into distributed spans, summarises clean-span
latencies, evaluates the SLOs derived from the run's configured δ/π/μ,
and checks the Section 8 closed forms at measured δ*.  Exit status 0
iff everything holds — the CI gate runs exactly this command.
"""

from __future__ import annotations

import argparse
from pathlib import Path

from repro.obs.live.report import build_report, render_text


def build_arg_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="Observability tooling over archived run artifacts.",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    report = sub.add_parser(
        "report",
        help="stitch + judge one live run's log directory",
        description=(
            "Stitch a live run's per-node event logs into distributed "
            "spans, summarise latencies, evaluate SLOs and the Section "
            "8 bounds.  Exits 0 iff every gate holds."
        ),
    )
    report.add_argument(
        "log_dir", help="the run's log directory (*.events.jsonl etc.)"
    )
    report.add_argument(
        "--json",
        action="store_true",
        help="emit the report as JSON instead of text",
    )
    report.add_argument(
        "--out",
        default=None,
        help="also write the JSON report to this path",
    )
    report.add_argument(
        "--delta",
        type=float,
        default=None,
        help="override the configured one-hop bound δ in seconds "
        "(default: the run's recorded config, else 0.05)",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_arg_parser().parse_args(argv)
    if args.command == "report":
        try:
            report = build_report(args.log_dir, delta=args.delta)
        except FileNotFoundError as exc:
            # Exit 2 (usage-class failure), distinct from 1 (the run
            # was judged and found in violation).
            print(f"error: {exc}")
            return 2
        if args.out:
            Path(args.out).write_text(
                report.to_json() + "\n", encoding="utf-8"
            )
        if args.json:
            print(report.to_json())
        else:
            print(render_text(report), end="")
        return report.exit_code
    raise AssertionError(f"unhandled command {args.command!r}")


if __name__ == "__main__":
    raise SystemExit(main())
