"""Unified observability: metrics, lifecycle tracing and profiling.

One :class:`Observability` hub bundles the three concerns and is
attached to a running stack in one call::

    from repro.obs import Observability

    obs = Observability(profiling=True)
    vs = TokenRingVS(processors, config, seed=0, obs=obs)
    ...
    print(obs.metrics.render_text())
    write_chrome_trace(obs.tracer, "run.trace.json")

Design contract (asserted by ``benchmarks/bench_observability.py``):

- **Zero perturbation.**  The hub never draws randomness, schedules
  simulator events or mutates protocol state; an execution with
  observability attached is event-for-event identical (same RNG stream
  positions, same event order) to the same seed without it.
- **Near-zero cost when absent.**  Instrumented hot paths guard on a
  single pre-bound ``is None`` slot; with no hub attached they pay one
  branch.

Layers instrument themselves when the hub reaches them:
:class:`~repro.sim.engine.Simulator` (event counts, queue depth, host
wall-clock per callback owner), :class:`~repro.net.channel.Channel`
(per-link sends/drops/in-flight), :class:`~repro.membership.ring.RingMember`
(tokens, rounds, dedup, retransmissions, formations), and
:class:`~repro.core.vstoto.runtime.VStoTORuntime` (pending queues, views
installed, primary residency).
"""

from __future__ import annotations


from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.profile import CallbackProfiler
from repro.obs.tracing import (
    FaultAnnotation,
    LifecycleTracer,
    MessageSpan,
    ViewSpan,
)

__all__ = [
    "Observability",
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "LifecycleTracer",
    "MessageSpan",
    "ViewSpan",
    "FaultAnnotation",
    "CallbackProfiler",
]


class Observability:
    """The per-execution observability hub.

    Parameters
    ----------
    metrics, tracing:
        Enable the metrics registry / lifecycle tracer (default on —
        constructing a hub means you want to observe).
    profiling:
        Enable host wall-clock attribution per simulator callback owner
        (default off: it adds two ``perf_counter`` calls per event).
    """

    def __init__(
        self,
        metrics: bool = True,
        tracing: bool = True,
        profiling: bool = False,
    ) -> None:
        self.metrics: MetricsRegistry | None = (
            MetricsRegistry() if metrics else None
        )
        self.tracer: LifecycleTracer | None = (
            LifecycleTracer() if tracing else None
        )
        self.profiler: CallbackProfiler | None = (
            CallbackProfiler() if profiling else None
        )
