"""Post-mortem capture: export traces of services from a failed test.

When the environment variable ``REPRO_OBS_CAPTURE`` is set (CI sets it
for the tier-1 job), every :class:`~repro.membership.service.TokenRingVS`
registers itself here at construction.  The pytest hook in
``tests/conftest.py`` calls :func:`export_failed` when a test fails,
writing each live service's merged trace as JSONL plus a Chrome
trace-event file under ``REPRO_TRACE_DIR`` (default
``trace-artifacts/``); CI uploads that directory as a workflow artifact
so a red run can be debugged in a trace viewer without re-running it.

The registry holds weak references and is cleared between tests, so
capture changes neither object lifetimes nor execution (registration is
environment-gated and records construction order only — no RNG, no
simulator interaction).
"""

from __future__ import annotations

import json
import os
import re
import weakref

from repro.obs.export import jsonl_records, timed_trace_chrome

#: set REPRO_OBS_CAPTURE=1 to enable registration (CI does)
CAPTURE_ENV = "REPRO_OBS_CAPTURE"
#: where export_failed writes artifacts
DIR_ENV = "REPRO_TRACE_DIR"
DEFAULT_DIR = "trace-artifacts"

_services: list[weakref.ReferenceType] = []


def capture_enabled() -> bool:
    return bool(os.environ.get(CAPTURE_ENV))


def register(service: object) -> None:
    """Remember ``service`` for post-mortem export (no-op unless the
    capture environment variable is set)."""
    if capture_enabled():
        _services.append(weakref.ref(service))


def clear() -> None:
    _services.clear()


def live_services() -> list:
    return [svc for ref in _services if (svc := ref()) is not None]


def _slug(text: str) -> str:
    return re.sub(r"[^A-Za-z0-9._-]+", "_", text).strip("_")[:120]


def export_failed(label: str) -> list[str]:
    """Export every registered service's trace for failed test
    ``label``; returns the paths written."""
    services = live_services()
    if not services:
        return []
    directory = os.environ.get(DIR_ENV, DEFAULT_DIR)
    os.makedirs(directory, exist_ok=True)
    written: list[str] = []
    for index, service in enumerate(services):
        try:
            trace = service.merged_trace()
        except Exception:  # half-built service: capture must never raise
            continue
        obs = getattr(service, "obs", None)
        tracer = getattr(obs, "tracer", None) if obs is not None else None
        metrics = getattr(obs, "metrics", None) if obs is not None else None
        base = os.path.join(directory, f"{_slug(label)}.{index}")
        jsonl_path = base + ".jsonl"
        with open(jsonl_path, "w") as handle:
            for record in jsonl_records(
                tracer=tracer, metrics=metrics, timed_trace=trace
            ):
                handle.write(json.dumps(record) + "\n")
        written.append(jsonl_path)
        chrome_path = base + ".trace.json"
        with open(chrome_path, "w") as handle:
            if tracer is not None:
                from repro.obs.export import chrome_trace

                json.dump(chrome_trace(tracer), handle)
            else:
                json.dump(timed_trace_chrome(trace), handle)
        written.append(chrome_path)
    return written
