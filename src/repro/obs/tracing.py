"""Lifecycle tracing: spans for messages, views and fault windows.

The paper's measured quantities are latency decompositions over message
and view lifecycles; this module records those lifecycles *as they
happen* instead of scraping them out of timed traces afterwards
(:mod:`repro.analysis.measure` remains the after-the-fact cross-check —
the E19 bench asserts both derivations agree on the same execution).

Two span kinds:

- :class:`MessageSpan` — one VS-level message: ``gpsnd`` at the origin,
  ``gprcv`` per member, ``safe`` per member, plus (when the VStoTO
  runtime is on top) the TO-level ``bcast`` and per-member ``brcv``
  bracketing it.  Matching uses per-sender sequence positions within a
  view, exact because VS guarantees per-sender FIFO within a view (the
  same matching rule :func:`repro.analysis.measure` uses).
- :class:`ViewSpan` — one view id: formation proposal (the first
  ``NewGroup``/one-round announcement for the id), membership
  announcement, per-member ``newview`` installation, and per-member
  state-exchange completion (the VStoTO establishment point).

Fault-schedule windows from :mod:`repro.faults` are attached as
annotations (:class:`FaultAnnotation`), so an exported trace shows what
the nemesis was doing while a view was forming.

The tracer is *passive*: it never draws randomness, schedules events or
mutates protocol state, so attaching it cannot perturb an execution.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from math import inf
from collections.abc import Hashable, Iterable
from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:
    from repro.core.types import View

ProcId = Hashable


@dataclass
class MessageSpan:
    """Lifecycle of one VS-level message."""

    payload: Any
    origin: ProcId
    viewid: Any
    #: position among the origin's sends in this view (0-based)
    seq: int
    bcast_at: float | None = None
    gpsnd_at: float | None = None
    gprcv_at: dict = field(default_factory=dict)   # member -> time
    safe_at: dict = field(default_factory=dict)    # member -> time
    brcv_at: dict = field(default_factory=dict)    # member -> time

    def start_time(self) -> float:
        if self.bcast_at is not None:
            return self.bcast_at
        return self.gpsnd_at if self.gpsnd_at is not None else inf

    def end_time(self) -> float:
        """Latest recorded lifecycle point (-inf when only sent)."""
        times = [
            *self.gprcv_at.values(),
            *self.safe_at.values(),
            *self.brcv_at.values(),
        ]
        return max(times, default=-inf)

    def safe_complete_at(self, members: Iterable[ProcId]) -> float | None:
        """When the message became safe at every member (None if not)."""
        times = [self.safe_at.get(m) for m in members]
        if any(t is None for t in times):
            return None
        return max(times)  # type: ignore[type-var]

    def delivered_complete_at(
        self, members: Iterable[ProcId]
    ) -> float | None:
        """When the TO-level delivery completed at every member."""
        times = [self.brcv_at.get(m) for m in members]
        if any(t is None for t in times):
            return None
        return max(times)  # type: ignore[type-var]


@dataclass
class ViewSpan:
    """Lifecycle of one view id."""

    viewid: Any
    members: frozenset | None = None
    initiator: ProcId | None = None
    #: first formation attempt (NewGroup broadcast / one-round announce)
    proposed_at: float | None = None
    #: membership fixed and Join announced (the createview point)
    announced_at: float | None = None
    newview_at: dict = field(default_factory=dict)      # member -> time
    established_at: dict = field(default_factory=dict)  # member -> time

    def start_time(self) -> float:
        for t in (self.proposed_at, self.announced_at):
            if t is not None:
                return t
        return min(self.newview_at.values(), default=inf)

    def end_time(self) -> float:
        times = [*self.newview_at.values(), *self.established_at.values()]
        return max(times, default=-inf)

    def installed_everywhere_at(self) -> float | None:
        """When every member had installed the view (None if some never
        did — e.g. the view was superseded mid-formation)."""
        if self.members is None or not self.members:
            return None
        times = [self.newview_at.get(m) for m in self.members]
        if any(t is None for t in times):
            return None
        return max(times)  # type: ignore[type-var]


@dataclass(frozen=True)
class FaultAnnotation:
    """One nemesis activation window, for trace annotation."""

    kind: str
    name: str
    start: float
    stop: float


@dataclass(frozen=True)
class StatusEdge:
    """One VStoTO status transition (Fig. 9), for trace annotation and
    the scenario engine's protocol-state coverage."""

    time: float
    proc: ProcId
    old: str
    new: str


class LifecycleTracer:
    """Incremental span recorder for one execution.

    Feed points (all optional — the tracer degrades gracefully when a
    layer is absent, e.g. a bare :class:`TokenRingVS` without VStoTO):

    - :meth:`on_vs_event` from the VS service's event recorder;
    - :meth:`on_to_event` from the VStoTO runtime's recorder;
    - :meth:`on_formation` / :meth:`on_createview` from ring members;
    - :meth:`on_established` from the VStoTO runtime;
    - :meth:`on_fault_window` from an installing fault schedule.
    """

    def __init__(self) -> None:
        self.message_spans: list[MessageSpan] = []
        self.view_spans: dict[Any, ViewSpan] = {}
        self.faults: list[FaultAnnotation] = []
        self.status_edges: list[StatusEdge] = []
        #: events that could not be matched to a span (conformant
        #: executions leave this at zero; chaos debugging reads it)
        self.unmatched_events = 0
        self._current_view: dict[ProcId, Any] = {}   # proc -> View
        self._view_members: dict[Any, frozenset] = {}
        # (viewid, origin) -> spans in send order
        self._sends: dict[tuple, list[MessageSpan]] = {}
        # (viewid, origin, dst) -> next expected position, per event kind
        self._recv_pos: dict[tuple, int] = {}
        self._safe_pos: dict[tuple, int] = {}
        self._brcv_pos: dict[tuple, int] = {}
        # TO-level sends not yet matched to a gpsnd: (value, origin) ->
        # [times]; VStoTO labels each value exactly once at its origin.
        self._pending_bcast: dict[tuple, list[float]] = {}
        # (value, origin) -> spans carrying that value, in send order
        self._value_spans: dict[tuple, list[MessageSpan]] = {}

    # ------------------------------------------------------------------
    # Configuration
    # ------------------------------------------------------------------
    def set_initial_view(self, view: View) -> None:
        """Seed per-processor current views from the service's v0."""
        self._view_members.setdefault(view.id, view.set)
        for p in view.set:
            self._current_view.setdefault(p, view)

    # ------------------------------------------------------------------
    # VS-level feed
    # ------------------------------------------------------------------
    def on_vs_event(self, time: float, name: str, args: tuple) -> None:
        if name == "gpsnd":
            payload, p = args
            self._on_gpsnd(time, payload, p)
        elif name == "gprcv":
            payload, src, dst = args
            self._on_lifecycle_point(time, payload, src, dst, "gprcv")
        elif name == "safe":
            payload, src, dst = args
            self._on_lifecycle_point(time, payload, src, dst, "safe")
        elif name == "newview":
            view, p = args
            self._on_newview(time, view, p)

    def _on_gpsnd(self, time: float, payload: Any, p: ProcId) -> None:
        view = self._current_view.get(p)
        if view is None:
            return  # sends with no view are ignored by the service
        key = (view.id, p)
        spans = self._sends.setdefault(key, [])
        span = MessageSpan(
            payload=payload,
            origin=p,
            viewid=view.id,
            seq=len(spans),
            gpsnd_at=time,
        )
        # Link the TO-level bcast that produced this send, if any: the
        # VStoTO payload is (label, value) with label.origin == p.
        value = _to_value(payload)
        if value is not _NO_VALUE:
            pending = self._pending_bcast.get((value, p))
            if pending:
                span.bcast_at = pending.pop(0)
            self._value_spans.setdefault((value, p), []).append(span)
        spans.append(span)
        self.message_spans.append(span)

    def _on_lifecycle_point(
        self, time: float, payload: Any, src: ProcId, dst: ProcId, kind: str
    ) -> None:
        view = self._current_view.get(dst)
        if view is None:
            self.unmatched_events += 1
            return
        positions = self._recv_pos if kind == "gprcv" else self._safe_pos
        key = (view.id, src, dst)
        index = positions.get(key, 0)
        spans = self._sends.get((view.id, src), ())
        if index >= len(spans):
            self.unmatched_events += 1
            return
        positions[key] = index + 1
        span = spans[index]
        target = span.gprcv_at if kind == "gprcv" else span.safe_at
        target.setdefault(dst, time)

    def _on_newview(self, time: float, view: View, p: ProcId) -> None:
        self._current_view[p] = view
        self._view_members.setdefault(view.id, view.set)
        span = self._view_span(view.id)
        if span.members is None:
            span.members = view.set
        span.newview_at.setdefault(p, time)

    # ------------------------------------------------------------------
    # TO-level feed (VStoTO runtime)
    # ------------------------------------------------------------------
    def on_to_event(self, time: float, name: str, args: tuple) -> None:
        if name == "bcast":
            value, p = args
            self._pending_bcast.setdefault((value, p), []).append(time)
        elif name == "brcv":
            value, origin, dst = args
            self._on_brcv(time, value, origin, dst)

    def _on_brcv(
        self, time: float, value: Any, origin: ProcId, dst: ProcId
    ) -> None:
        # The TO order is a single cross-view sequence; match the k-th
        # brcv of (value, origin) at dst to the k-th span carrying that
        # value from that origin, across views in send order.
        key = (value, origin, dst)
        index = self._brcv_pos.get(key, 0)
        matches = self._value_spans.get((value, origin), ())
        if index >= len(matches):
            self.unmatched_events += 1
            return
        self._brcv_pos[key] = index + 1
        matches[index].brcv_at.setdefault(dst, time)

    # ------------------------------------------------------------------
    # Protocol-internal feeds
    # ------------------------------------------------------------------
    def on_formation(
        self, time: float, viewid: Any, initiator: ProcId
    ) -> None:
        """A formation round started for ``viewid`` (first attempt wins)."""
        span = self._view_span(viewid)
        if span.proposed_at is None:
            span.proposed_at = time
            span.initiator = initiator

    def on_createview(
        self, time: float, viewid: Any, members: frozenset
    ) -> None:
        """Membership fixed; the Join announcement is going out."""
        span = self._view_span(viewid)
        if span.announced_at is None:
            span.announced_at = time
        span.members = frozenset(members)

    def on_established(self, time: float, viewid: Any, p: ProcId) -> None:
        """State exchange completed at ``p`` for ``viewid``."""
        self._view_span(viewid).established_at.setdefault(p, time)

    def on_fault_window(
        self, kind: str, name: str, start: float, stop: float
    ) -> None:
        self.faults.append(FaultAnnotation(kind, name, start, stop))

    def on_status_edge(
        self, time: float, proc: ProcId, old: str, new: str
    ) -> None:
        """A VStoTO status transition at ``proc`` (fed by
        :class:`~repro.core.vstoto.runtime.VStoTORuntime`)."""
        self.status_edges.append(StatusEdge(time, proc, old, new))

    def members_of(self, viewid: Any) -> frozenset | None:
        """Membership of ``viewid`` as observed so far (None if the
        view was never seen) — the lookup the latency derivations use,
        public so post-hoc consumers (the live stitcher's SLO layer)
        need not reach into tracer internals."""
        return self._view_members.get(viewid)

    def _view_span(self, viewid: Any) -> ViewSpan:
        span = self.view_spans.get(viewid)
        if span is None:
            span = ViewSpan(viewid=viewid)
            self.view_spans[viewid] = span
        return span

    # ------------------------------------------------------------------
    # Span-derived decompositions (the paper's b and d quantities)
    # ------------------------------------------------------------------
    def safe_latencies(self, viewid: Any) -> list[tuple[float, float]]:
        """(sent_at, all-members-safe_at) per message of ``viewid`` —
        the span-side derivation of the d = 2π + nδ measurement."""
        members = self._view_members.get(viewid)
        if members is None:
            return []
        samples = []
        for span in self.message_spans:
            if span.viewid != viewid or span.gpsnd_at is None:
                continue
            completed = span.safe_complete_at(members)
            if completed is not None:
                samples.append((span.gpsnd_at, completed))
        return samples

    def delivery_latencies(
        self, group: Iterable[ProcId], after: float = 0.0
    ) -> list[tuple[float, float]]:
        """(bcast_at, delivered-at-all_at) per TO message — the span-side
        derivation of the Theorem 7.2 end-to-end measurement."""
        group = tuple(group)
        samples = []
        for span in self.message_spans:
            if span.bcast_at is None or span.bcast_at < after:
                continue
            completed = span.delivered_complete_at(group)
            if completed is not None:
                samples.append((span.bcast_at, completed))
        return samples

    def stabilization_point(
        self, group: Iterable[ProcId], stable_at: float
    ) -> float:
        """Last ``newview`` at any member of ``group`` after
        ``stable_at`` — the span-side l' derivation (relative to
        ``stable_at``; 0.0 when no reconfiguration followed)."""
        group = frozenset(group)
        last = stable_at
        for span in self.view_spans.values():
            for p, t in span.newview_at.items():
                if p in group and t > stable_at:
                    last = max(last, t)
        return last - stable_at

    def final_view_of(self, group: Iterable[ProcId]) -> Any:
        """The common latest view id of ``group`` (None if divergent)."""
        group = tuple(group)
        ids: set[Any] = set()
        for p in group:
            view = self._current_view.get(p)
            ids.add(None if view is None else view.id)
        if len(ids) == 1:
            return ids.pop()
        return None


_NO_VALUE = object()


def _to_value(payload: Any) -> Any:
    """The TO-level value inside a VS payload, when it has the VStoTO
    ``(label, value)`` shape (labels have an ``origin`` attribute);
    ``_NO_VALUE`` otherwise (summaries, raw payloads)."""
    if (
        isinstance(payload, tuple)
        and len(payload) == 2
        and hasattr(payload[0], "origin")
    ):
        return payload[1]
    return _NO_VALUE
