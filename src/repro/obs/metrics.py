"""The metrics registry: labelled counters, gauges and histograms.

Prometheus-style metric families, sized for a discrete-event simulator
hot path: a family is created once (``registry.counter(...)``) and its
labelled children are bound once (``family.labels(...)``), so the
per-event cost of an increment is one attribute add — no dict lookups,
no string formatting.  Instrumented layers bind their children at
*attach* time and keep them in slots; with no observability attached
the instrumentation is a single ``is None`` branch.

Metrics carry no randomness and never touch the simulator, so enabling
them cannot perturb an execution (the bench asserts this).

Conventions
-----------

- counters end in ``_total`` and only go up;
- gauges are instantaneous levels (queue depth, in-flight packets);
- histograms have fixed, family-wide bucket upper bounds (virtual-time
  units unless the name says otherwise) plus count and sum.

:meth:`MetricsRegistry.render_text` emits a Prometheus-compatible text
exposition; :meth:`MetricsRegistry.to_dict` a plain nested-dict snapshot
for programmatic assertions, the JSONL exporter and the live runtime's
metrics streaming (:mod:`repro.obs.live`).  :meth:`MetricsRegistry.
from_dict` reconstructs a registry from such a snapshot, and the pair
round-trips exactly: ``from_dict(json.loads(json.dumps(r.to_dict())))``
renders byte-identically to ``r``.  Snapshot bucket keys are therefore
*lossless* (``repr`` of the bound, ``"+Inf"`` for the overflow bucket —
matching the text exposition's ``le`` label instead of the old
``str()``/``"inf"`` spelling, whose ``%g``-vs-``str`` asymmetry made
round-tripped boundaries drift).
"""

from __future__ import annotations

from bisect import bisect_left
from collections.abc import Iterator, Sequence
from typing import Any, Generic, TypeVar, cast

#: Default histogram bucket upper bounds (virtual-time units); chosen to
#: resolve both sub-δ link delays and multi-π round durations.
DEFAULT_BUCKETS = (
    0.5, 1.0, 2.5, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0, 500.0, float("inf")
)


class Counter:
    """A monotonically increasing count (one labelled child)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        self.value += amount


class Gauge:
    """An instantaneous level (one labelled child)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount


class Histogram:
    """Fixed-bucket distribution (one labelled child).

    ``buckets`` holds cumulative counts per upper bound (the last bound
    is always +inf, so ``count == buckets[-1]``).
    """

    __slots__ = ("bounds", "buckets", "count", "sum")

    def __init__(self, bounds: Sequence[float]) -> None:
        self.bounds = tuple(bounds)
        self.buckets = [0] * len(self.bounds)
        self.count = 0
        self.sum = 0.0

    def observe(self, value: float) -> None:
        for index in range(
            bisect_left(self.bounds, value), len(self.bounds)
        ):
            self.buckets[index] += 1
        self.count += 1
        self.sum += value

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0


#: The labelled-child type of a family (Counter, Gauge or Histogram).
ChildT = TypeVar("ChildT")

#: A concrete family subclass, as returned by ``MetricsRegistry._family``.
FamilyT = TypeVar("FamilyT", bound="MetricFamily[Any]")


class MetricFamily(Generic[ChildT]):
    """A named metric plus its labelled children."""

    KIND = "untyped"

    def __init__(
        self, name: str, help: str, label_names: tuple[str, ...]
    ) -> None:
        self.name = name
        self.help = help
        self.label_names = label_names
        self._children: dict[tuple[str, ...], ChildT] = {}

    def _new_child(self) -> ChildT:
        raise NotImplementedError

    def labels(self, *values: object) -> ChildT:
        """The child for the given label values (created on first use).

        Values are stringified so processor ids of any hashable type are
        usable directly."""
        if len(values) != len(self.label_names):
            raise ValueError(
                f"{self.name}: expected labels {self.label_names}, "
                f"got {len(values)} values"
            )
        key = tuple(str(v) for v in values)
        child = self._children.get(key)
        if child is None:
            child = self._new_child()
            self._children[key] = child
        return child

    def samples(self) -> Iterator[tuple[tuple[str, ...], ChildT]]:
        yield from self._children.items()


class CounterFamily(MetricFamily[Counter]):
    KIND = "counter"

    def _new_child(self) -> Counter:
        return Counter()


class GaugeFamily(MetricFamily[Gauge]):
    KIND = "gauge"

    def _new_child(self) -> Gauge:
        return Gauge()


class HistogramFamily(MetricFamily[Histogram]):
    KIND = "histogram"

    def __init__(
        self,
        name: str,
        help: str,
        label_names: tuple[str, ...],
        buckets: Sequence[float],
    ) -> None:
        super().__init__(name, help, label_names)
        bounds = tuple(buckets)
        if not bounds or bounds[-1] != float("inf"):
            bounds = bounds + (float("inf"),)
        if list(bounds) != sorted(bounds):
            raise ValueError("histogram buckets must be sorted")
        self.buckets = bounds

    def _new_child(self) -> Histogram:
        return Histogram(self.buckets)


class MetricsRegistry:
    """A namespace of metric families.

    Re-requesting a family with the same name returns the existing one
    (so independently attached layers can share families); re-requesting
    with a different kind or label set is an error.
    """

    def __init__(self) -> None:
        self._families: dict[str, MetricFamily[Any]] = {}

    # ------------------------------------------------------------------
    def counter(
        self, name: str, help: str = "", labels: Sequence[str] = ()
    ) -> CounterFamily:
        return self._family(CounterFamily, name, help, tuple(labels))

    def gauge(
        self, name: str, help: str = "", labels: Sequence[str] = ()
    ) -> GaugeFamily:
        return self._family(GaugeFamily, name, help, tuple(labels))

    def histogram(
        self,
        name: str,
        help: str = "",
        labels: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> HistogramFamily:
        family = self._families.get(name)
        if family is None:
            family = HistogramFamily(name, help, tuple(labels), buckets)
            self._families[name] = family
            return family
        self._check(family, HistogramFamily, name, tuple(labels))
        return cast(HistogramFamily, family)

    def _family(
        self,
        cls: type[FamilyT],
        name: str,
        help: str,
        label_names: tuple[str, ...],
    ) -> FamilyT:
        family = self._families.get(name)
        if family is None:
            family = cls(name, help, label_names)
            self._families[name] = family
            return family
        self._check(family, cls, name, label_names)
        return cast(FamilyT, family)

    @staticmethod
    def _check(
        family: MetricFamily[Any],
        cls: type[MetricFamily[Any]],
        name: str,
        label_names: tuple[str, ...],
    ) -> None:
        if type(family) is not cls:
            raise TypeError(
                f"metric {name!r} already registered as {family.KIND}"
            )
        if family.label_names != label_names:
            raise ValueError(
                f"metric {name!r} already registered with labels "
                f"{family.label_names}, not {label_names}"
            )

    def get(self, name: str) -> MetricFamily[Any] | None:
        return self._families.get(name)

    def families(self) -> Iterator[MetricFamily[Any]]:
        yield from self._families.values()

    # ------------------------------------------------------------------
    # Aggregation / export
    # ------------------------------------------------------------------
    def value(self, name: str, *label_values: object) -> float:
        """The value of one counter/gauge child (0.0 when absent)."""
        family = self._families.get(name)
        if family is None:
            return 0.0
        key = tuple(str(v) for v in label_values)
        child = family._children.get(key)
        if child is None:
            return 0.0
        return float(child.value)

    def total(self, name: str) -> float:
        """Sum of a counter/gauge family across all label sets."""
        family = self._families.get(name)
        if family is None:
            return 0.0
        return sum(child.value for _labels, child in family.samples())

    def to_dict(self) -> dict[str, Any]:
        """Plain-data snapshot: name -> {kind, help, labels, samples}.

        Histogram families additionally carry their ``buckets`` (bound
        keys, see :func:`bound_key`), so an empty family survives the
        round-trip through :meth:`from_dict` with its bounds intact.
        """
        out: dict[str, Any] = {}
        for family in self._families.values():
            samples: list[dict[str, Any]] = []
            for label_values, child in family.samples():
                labels = dict(zip(family.label_names, label_values))
                if isinstance(child, Histogram):
                    samples.append(
                        {
                            "labels": labels,
                            "count": child.count,
                            "sum": child.sum,
                            "buckets": dict(
                                zip(
                                    (bound_key(b) for b in child.bounds),
                                    child.buckets,
                                )
                            ),
                        }
                    )
                else:
                    samples.append({"labels": labels, "value": child.value})
            entry: dict[str, Any] = {
                "kind": family.KIND,
                "help": family.help,
                "labels": list(family.label_names),
                "samples": samples,
            }
            if isinstance(family, HistogramFamily):
                entry["buckets"] = [bound_key(b) for b in family.buckets]
            out[family.name] = entry
        return out

    #: Backwards-compatible alias (pre-round-trip name).
    as_dict = to_dict

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> MetricsRegistry:
        """Reconstruct a registry from a :meth:`to_dict` snapshot.

        The inverse is exact: every family, labelled child, bucket
        boundary and accumulated value is restored, so re-exporting the
        reconstructed registry (text or dict) matches the original.
        """
        registry = cls()
        for name, entry in data.items():
            kind = entry["kind"]
            label_names = tuple(entry.get("labels", ()))
            if kind == "histogram":
                bounds = tuple(
                    parse_bound(b) for b in entry.get("buckets", ())
                )
                family = registry.histogram(
                    name, entry.get("help", ""), label_names,
                    buckets=bounds or DEFAULT_BUCKETS,
                )
                for sample in entry["samples"]:
                    child = family.labels(
                        *(sample["labels"].get(k, "") for k in label_names)
                    )
                    child.count = int(sample["count"])
                    child.sum = float(sample["sum"])
                    child.buckets = [
                        int(sample["buckets"][bound_key(b)])
                        for b in child.bounds
                    ]
                continue
            scalar_family: CounterFamily | GaugeFamily
            if kind == "counter":
                scalar_family = registry.counter(
                    name, entry.get("help", ""), label_names
                )
            elif kind == "gauge":
                scalar_family = registry.gauge(
                    name, entry.get("help", ""), label_names
                )
            else:
                raise ValueError(f"unknown metric kind {kind!r} for {name!r}")
            for sample in entry["samples"]:
                scalar_child = scalar_family.labels(
                    *(sample["labels"].get(k, "") for k in label_names)
                )
                scalar_child.value = float(sample["value"])
        return registry

    def render_text(self) -> str:
        """Prometheus-style text exposition."""
        lines: list[str] = []
        for family in sorted(self._families.values(), key=lambda f: f.name):
            if family.help:
                lines.append(f"# HELP {family.name} {family.help}")
            lines.append(f"# TYPE {family.name} {family.KIND}")
            for label_values, child in sorted(family.samples()):
                label_text = _format_labels(family.label_names, label_values)
                if isinstance(child, Histogram):
                    for bound, cumulative in zip(child.bounds, child.buckets):
                        le = _format_labels(
                            family.label_names + ("le",),
                            label_values + (_bound_text(bound),),
                        )
                        lines.append(
                            f"{family.name}_bucket{le} {cumulative}"
                        )
                    lines.append(
                        f"{family.name}_count{label_text} {child.count}"
                    )
                    lines.append(f"{family.name}_sum{label_text} {child.sum}")
                else:
                    lines.append(
                        f"{family.name}{label_text} {_num(child.value)}"
                    )
        return "\n".join(lines) + ("\n" if lines else "")


def _format_labels(
    names: tuple[str, ...], values: tuple[str, ...]
) -> str:
    if not names:
        return ""
    body = ",".join(
        f'{name}="{value}"' for name, value in zip(names, values)
    )
    return "{" + body + "}"


def _bound_text(bound: float) -> str:
    return "+Inf" if bound == float("inf") else f"{bound:g}"


def bound_key(bound: float) -> str:
    """Lossless snapshot key for one bucket upper bound.

    ``repr`` round-trips every finite float exactly (``%g`` does not —
    it truncates to six significant digits, the asymmetry that used to
    corrupt fine-grained boundaries across a snapshot round-trip); the
    overflow bucket is spelled ``"+Inf"``, matching the ``le`` label of
    the text exposition rather than the old ``str()`` form ``"inf"``.
    """
    return "+Inf" if bound == float("inf") else repr(bound)


def parse_bound(key: str) -> float:
    """Inverse of :func:`bound_key` (accepts legacy ``"inf"`` too)."""
    return float(key)


def _num(value: float) -> str:
    return f"{value:g}"
