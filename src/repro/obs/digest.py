"""Stable digests of an execution, for perturbation-freedom checks.

The zero-perturbation contract ("attaching observability changes
nothing") is asserted two ways:

- **In-process**: run the same seed with and without a hub and compare
  :func:`trace_full_digest` — the full ``repr`` of every timed event.
  This is the strongest check, but full reprs are *not* stable across
  interpreter processes (frozensets of labels render in
  ``PYTHONHASHSEED``-dependent order), so full digests cannot be pinned
  as golden values.
- **Cross-process**: pin :func:`trace_shape_digest` (time, action name,
  arity per event — hash-order independent) and :func:`rng_digest`
  (exact Mersenne-Twister stream positions) as goldens.  Any change to
  event order, event count, timing or RNG consumption moves at least
  one of them.
"""

from __future__ import annotations

from hashlib import sha256
from typing import TYPE_CHECKING

if TYPE_CHECKING:
    from repro.ioa.timed import TimedTrace
    from repro.sim.rng import RngRegistry


def trace_full_digest(trace: TimedTrace) -> str:
    """sha256 over the full repr of every event.  Same-process
    comparisons only (reprs of hash-ordered containers are not stable
    across interpreters)."""
    hasher = sha256()
    for event in trace.events:
        hasher.update(f"{event.time!r}|{event.action!r}\n".encode())
    return hasher.hexdigest()


def trace_shape_digest(trace: TimedTrace) -> str:
    """sha256 over (time, action name, arity) per event — stable across
    processes and interpreter hash seeds, suitable for golden values."""
    hasher = sha256()
    for event in trace.events:
        hasher.update(
            f"{event.time!r}|{event.action.name}|{len(event.action.args)}\n"
            .encode()
        )
    return hasher.hexdigest()


def rng_digest(rngs: RngRegistry) -> str:
    """sha256 over every stream's name and exact generator state.
    ``Random.getstate()`` is a tuple of ints — its repr is stable — so
    this digest is golden-able and catches any extra or missing draw."""
    hasher = sha256()
    for name in sorted(rngs._streams):
        state = rngs._streams[name].getstate()
        hasher.update(f"{name}|{state!r}\n".encode())
    return hasher.hexdigest()
