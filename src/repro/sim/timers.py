"""Timer helpers built on the simulator.

The Section 8 implementation needs two timer shapes:

- a *periodic* timer (the ring leader launches a token every ``pi`` time
  units; merge probes fire every ``mu``);
- a *watchdog* timer (each member expects the token back within a
  computed deadline and triggers a view change when it does not arrive).
"""

from __future__ import annotations

from collections.abc import Callable

from repro.sim.engine import EventHandle, Simulator


class PeriodicTimer:
    """Fires ``callback`` every ``period`` units until stopped."""

    def __init__(
        self,
        simulator: Simulator,
        period: float,
        callback: Callable[[], None],
        start_immediately: bool = False,
    ) -> None:
        if period <= 0:
            raise ValueError(f"period must be positive, got {period}")
        self._sim = simulator
        self.period = period
        self._callback = callback
        self._handle: EventHandle | None = None
        self._running = False
        self._start_immediately = start_immediately

    def start(self) -> None:
        if self._running:
            return
        self._running = True
        delay = 0.0 if self._start_immediately else self.period
        self._handle = self._sim.schedule(delay, self._fire)

    def stop(self) -> None:
        self._running = False
        if self._handle is not None:
            self._handle.cancel()
            self._handle = None

    @property
    def running(self) -> bool:
        return self._running

    def _fire(self) -> None:
        if not self._running:
            return
        self._handle = self._sim.schedule(self.period, self._fire)
        self._callback()


class WatchdogTimer:
    """A resettable one-shot deadline timer.

    ``arm(timeout)`` (re)starts the countdown; if it expires before the
    next ``arm``/``disarm``, ``on_expire`` runs.  This is exactly the
    token-loss detector of the Section 8 ring protocol.
    """

    def __init__(self, simulator: Simulator, on_expire: Callable[[], None]) -> None:
        self._sim = simulator
        self._on_expire = on_expire
        self._handle: EventHandle | None = None

    def arm(self, timeout: float) -> None:
        self.disarm()
        self._handle = self._sim.schedule(timeout, self._expire)

    def disarm(self) -> None:
        if self._handle is not None:
            self._handle.cancel()
            self._handle = None

    @property
    def armed(self) -> bool:
        return self._handle is not None and not self._handle.cancelled

    def _expire(self) -> None:
        self._handle = None
        self._on_expire()
