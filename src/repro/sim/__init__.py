"""Discrete-event simulation engine.

Provides the virtual time base for the timed model of Section 7 and for
the network substrate: an event queue ordered by (time, sequence number),
cancellable event handles, periodic timers, and named seeded RNG streams
so every simulated run is reproducible.
"""

from repro.sim.engine import EventHandle, Simulator
from repro.sim.rng import RngRegistry
from repro.sim.timers import PeriodicTimer, WatchdogTimer

__all__ = [
    "Simulator",
    "EventHandle",
    "RngRegistry",
    "PeriodicTimer",
    "WatchdogTimer",
]
