"""The discrete-event simulator core.

Events are callbacks scheduled at virtual times.  Ties are broken by a
monotonically increasing sequence number, so scheduling order is
deterministic — together with seeded RNGs this makes whole simulated
executions reproducible from a seed, which the test and benchmark suites
rely on.

The simulator deliberately has no notion of processes or channels; those
live in :mod:`repro.net`.  It corresponds to the time-passage structure
of the timed automaton model: between two consecutive event times the
system takes a ``nu(t)`` step, and at an event time it takes discrete
steps.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from math import inf
from collections.abc import Callable
from typing import Any


@dataclass(order=True)
class _QueuedEvent:
    time: float
    seq: int
    callback: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)
    #: True once the event left the queue (fired or discarded); a cancel
    #: after this point must not touch the simulator's live counters.
    done: bool = field(default=False, compare=False)


class EventHandle:
    """Handle returned by :meth:`Simulator.schedule`; supports cancel."""

    __slots__ = ("_event", "_sim")

    def __init__(self, event: _QueuedEvent, sim: Simulator) -> None:
        self._event = event
        self._sim = sim

    def cancel(self) -> None:
        """Cancel the event if it has not fired yet (idempotent: the
        live-event counter is decremented exactly once)."""
        event = self._event
        if event.cancelled or event.done:
            return
        event.cancelled = True
        self._sim._on_cancel()

    @property
    def cancelled(self) -> bool:
        return self._event.cancelled

    @property
    def time(self) -> float:
        return self._event.time


class Simulator:
    """A minimal, deterministic discrete-event simulator."""

    def __init__(self) -> None:
        self._now: float = 0.0
        self._queue: list[_QueuedEvent] = []
        self._seq = itertools.count()
        self._events_processed = 0
        # Live (not-cancelled) queue entries, maintained on schedule /
        # cancel / pop so :attr:`pending` is O(1) instead of a queue scan.
        self._pending = 0
        # Cancelled entries still sitting in the heap (lazy deletion);
        # when they outnumber the live ones the heap is compacted so
        # heavy timer churn (ring watchdogs) cannot leak memory.
        self._cancelled_in_queue = 0
        self._compactions = 0
        self._trace_hook: Callable[[float], None] | None = None
        # Observability slots, pre-bound by attach_obs; with no hub
        # attached each instrumented path pays one `is None` branch.
        self._m_scheduled = None
        self._m_fired = None
        self._m_cancelled = None
        self._m_queue_depth = None
        self._profiler = None

    # ------------------------------------------------------------------
    def attach_obs(self, obs: Any) -> None:
        """Bind an :class:`~repro.obs.Observability` hub: event-flow
        counters, a queue-depth gauge, and (when the hub enables it)
        host wall-clock attribution per callback owner.  Purely
        additive — no RNG draws, no event scheduling, virtual time
        untouched."""
        if obs is None:
            return
        if obs.metrics is not None:
            metrics = obs.metrics
            self._m_scheduled = metrics.counter(
                "sim_events_scheduled_total", "events entered the queue"
            ).labels()
            self._m_fired = metrics.counter(
                "sim_events_fired_total", "events whose callback ran"
            ).labels()
            self._m_cancelled = metrics.counter(
                "sim_events_cancelled_total",
                "cancelled events discarded at pop time",
            ).labels()
            self._m_queue_depth = metrics.gauge(
                "sim_queue_depth", "queued events after the last fire"
            ).labels()
        self._profiler = obs.profiler

    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current virtual time."""
        return self._now

    @property
    def events_processed(self) -> int:
        return self._events_processed

    @property
    def pending(self) -> int:
        """Number of not-yet-cancelled queued events (O(1))."""
        return self._pending

    def stats(self) -> dict[str, int]:
        """Queue bookkeeping counters (diagnostics for benchmarks)."""
        return {
            "events_processed": self._events_processed,
            "pending": self._pending,
            "cancelled_in_queue": self._cancelled_in_queue,
            "queue_len": len(self._queue),
            "compactions": self._compactions,
        }

    # ------------------------------------------------------------------
    def _on_cancel(self) -> None:
        """Called by :meth:`EventHandle.cancel` exactly once per event."""
        self._pending -= 1
        self._cancelled_in_queue += 1
        # Compact when cancelled entries outnumber live ones: the pop
        # order is the total order (time, seq), so dropping dead entries
        # and re-heapifying cannot change which event fires next.
        if self._cancelled_in_queue > len(self._queue) // 2 and len(self._queue) > 8:
            self._compact()

    def _compact(self) -> None:
        for event in self._queue:
            if event.cancelled:
                event.done = True
        self._queue = [e for e in self._queue if not e.cancelled]
        heapq.heapify(self._queue)
        if self._m_cancelled is not None:
            self._m_cancelled.inc(self._cancelled_in_queue)
        self._cancelled_in_queue = 0
        self._compactions += 1

    # ------------------------------------------------------------------
    def schedule(
        self, delay: float, callback: Callable[[], None]
    ) -> EventHandle:
        """Schedule ``callback`` to run ``delay`` time units from now."""
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        return self.schedule_at(self._now + delay, callback)

    def schedule_at(
        self, time: float, callback: Callable[[], None]
    ) -> EventHandle:
        """Schedule ``callback`` at absolute virtual time ``time``."""
        if time < self._now:
            raise ValueError(f"cannot schedule in the past: {time} < {self._now}")
        event = _QueuedEvent(time=time, seq=next(self._seq), callback=callback)
        heapq.heappush(self._queue, event)
        self._pending += 1
        if self._m_scheduled is not None:
            self._m_scheduled.inc()
        return EventHandle(event, self)

    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Process the next event; returns False when the queue is empty."""
        while self._queue:
            event = heapq.heappop(self._queue)
            event.done = True
            if event.cancelled:
                self._cancelled_in_queue -= 1
                if self._m_cancelled is not None:
                    self._m_cancelled.inc()
                continue
            self._pending -= 1
            if event.time > self._now and self._trace_hook is not None:
                self._trace_hook(event.time - self._now)
            self._now = max(self._now, event.time)
            if self._profiler is not None:
                self._profiler.run(event.callback)
            else:
                event.callback()
            self._events_processed += 1
            if self._m_fired is not None:
                self._m_fired.inc()
                self._m_queue_depth.set(len(self._queue))
            return True
        return False

    def run_until(self, time: float) -> None:
        """Process events with time <= ``time``; advance the clock to it."""
        while self._queue:
            head = self._queue[0]
            if head.cancelled:
                heapq.heappop(self._queue)
                head.done = True
                self._cancelled_in_queue -= 1
                if self._m_cancelled is not None:
                    self._m_cancelled.inc()
                continue
            if head.time > time:
                break
            self.step()
        if time > self._now:
            if self._trace_hook is not None:
                self._trace_hook(time - self._now)
            self._now = time

    def run(self, max_events: int = 10_000_000, until: float = inf) -> None:
        """Drain the queue, bounded by ``max_events`` and ``until``."""
        processed = 0
        while processed < max_events and self._queue:
            head = self._queue[0]
            if head.cancelled:
                heapq.heappop(self._queue)
                head.done = True
                self._cancelled_in_queue -= 1
                if self._m_cancelled is not None:
                    self._m_cancelled.inc()
                continue
            if head.time > until:
                break
            self.step()
            processed += 1
        if until is not inf and until > self._now:
            self.run_until(until)

    # ------------------------------------------------------------------
    def on_time_passage(self, hook: Callable[[float], None] | None) -> None:
        """Install a hook invoked with each positive time advance (the
        ``nu(t)`` steps of the timed model); pass None to remove."""
        self._trace_hook = hook

    def call_soon(self, callback: Callable[[], None]) -> EventHandle:
        """Schedule at the current time (after already-queued same-time
        events, by sequence-number tie-breaking)."""
        return self.schedule(0.0, callback)

    def clear(self) -> None:
        """Drop all pending events (used between benchmark iterations)."""
        for event in self._queue:
            event.done = True
        self._queue.clear()
        self._pending = 0
        self._cancelled_in_queue = 0
