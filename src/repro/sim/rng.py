"""Named seeded RNG streams.

Different stochastic concerns (channel delays, scheduler choices,
workload inter-arrival times) draw from independent streams derived from
one master seed, so changing how often one component draws randomness
does not perturb the others — a standard DES variance-reduction practice
that also keeps regression tests stable.
"""

from __future__ import annotations

import hashlib
import random


def derive_seed(master_seed: int, name: str) -> int:
    """Derive a 64-bit stream seed from a master seed and a stream name."""
    digest = hashlib.sha256(f"{master_seed}:{name}".encode()).digest()
    return int.from_bytes(digest[:8], "big")


class RngRegistry:
    """A registry of named, independently seeded ``random.Random`` streams."""

    def __init__(self, master_seed: int = 0) -> None:
        self.master_seed = master_seed
        self._streams: dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """Get (creating if needed) the stream for ``name``."""
        if name not in self._streams:
            self._streams[name] = random.Random(derive_seed(self.master_seed, name))
        return self._streams[name]

    def reset(self) -> None:
        """Re-seed every existing stream from the master seed."""
        for name in list(self._streams):
            self._streams[name] = random.Random(derive_seed(self.master_seed, name))
