"""Human-readable rendering of timed traces.

Debugging a partitionable group service means reading interleaved
per-processor event streams.  :func:`format_timeline` renders a timed
trace as one aligned column per processor, with view changes and
failure events called out — the textual equivalent of the paper's
Figure 12 style timeline diagrams.
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable, Sequence
from typing import TYPE_CHECKING, Any

from repro.ioa.timed import TimedTrace

if TYPE_CHECKING:
    from repro.core.types import View
    from repro.ioa.actions import Action

ProcId = Hashable

#: action name -> (glyph, index of the location argument)
_LOCATION_OF = {
    "bcast": ("B", 1),
    "brcv": ("R", 2),
    "gpsnd": ("s", 1),
    "gprcv": ("r", 2),
    "safe": ("✓", 2),
    "newview": ("V", 1),
    "good": ("g", 0),
    "bad": ("x", 0),
    "ugly": ("u", 0),
    # Nemesis actions (fault-annotated traces from repro.faults/repro.obs).
    "crash": ("✗", 0),
    "restart": ("↻", 0),
    "fault": ("!", 0),
    "skew": ("~", 0),
    # Live-cluster driver actions (repro.obs.live.stitch.live_timed_trace):
    # per-node firewall edges and process kills from the run timeline.
    "sigkill": ("✗", 0),
    "firewall_on": ("⊘", 0),
    "firewall_off": ("○", 0),
}


def describe_event(action: Action) -> str:
    """One-line description of a single action.

    Tolerant of unexpected arities (hand-built or fault-annotated traces
    do not always follow the VS/TO signatures): any shape mismatch falls
    back to the action's own repr instead of raising.
    """
    name = action.name
    args = action.args
    if name == "newview" and len(args) == 2:
        view, p = args
        return f"newview {view} at {p}"
    if name in ("good", "bad", "ugly", "crash", "restart", "fault", "skew"):
        if len(args) == 1:
            return f"{name}({args[0]})"
        if len(args) == 2:
            return f"{name}({args[0]}→{args[1]})"
        return str(action)
    if name == "sigkill" and len(args) == 1:
        return f"SIGKILL {args[0]}"
    if name == "firewall_on":
        if len(args) == 2:
            return f"firewall up at {args[0]} (component {args[1]})"
        if len(args) == 1:
            return f"firewall up at {args[0]}"
        return str(action)
    if name == "firewall_off":
        if len(args) == 1:
            return f"firewall down at {args[0]}"
        return "firewall down (cluster healed)"
    if name in ("gprcv", "safe", "brcv") and len(args) == 3:
        payload, src, dst = args
        return f"{name} {payload!r} {src}→{dst}"
    if name in ("gpsnd", "bcast") and len(args) == 2:
        payload, p = args
        return f"{name} {payload!r} at {p}"
    return str(action)


def format_timeline(
    trace: TimedTrace,
    processors: Sequence[ProcId],
    names: Iterable[str] | None = None,
    limit: int = 200,
) -> str:
    """Render the trace as a per-processor event grid.

    Each row is one event: its time, a glyph in the column of the
    processor it occurred at, and a description.  ``names`` restricts
    the action names shown; ``limit`` caps the number of rows (a
    truncation marker is appended when exceeded).
    """
    keep = frozenset(names) if names is not None else None
    columns = {p: index for index, p in enumerate(processors)}
    width = 3
    header = "time".rjust(9) + " " + "".join(
        str(p)[:width].center(width) for p in processors
    ) + "  event"
    lines = [header, "-" * len(header)]
    shown = 0
    for event in trace.events:
        name = event.action.name
        if keep is not None and name not in keep:
            continue
        if shown >= limit:
            lines.append(f"... truncated at {limit} rows ...")
            break
        glyph_spec = _LOCATION_OF.get(name)
        cells = [" " * width] * len(processors)
        if glyph_spec is not None:
            glyph, arg_index = glyph_spec
            if arg_index < len(event.action.args):
                location = event.action.args[arg_index]
                if location in columns:
                    cells[columns[location]] = glyph.center(width)
        lines.append(
            f"{event.time:9.2f} "
            + "".join(cells)
            + "  "
            + describe_event(event.action)
        )
        shown += 1
    return "\n".join(lines)


def summarize_trace(trace: TimedTrace) -> dict[str, int]:
    """Event counts per action name."""
    counts: dict[str, int] = {}
    for event in trace.events:
        counts[event.action.name] = counts.get(event.action.name, 0) + 1
    return counts


def format_view_history(
    trace: TimedTrace,
    processors: Sequence[ProcId],
    initial_view: View | None = None,
) -> str:
    """Render each processor's sequence of views as intervals.

    One line per processor: ``p: [0.0..47.2) ⟨(0,1),{...}⟩ | [47.2..) …``
    — a textual Gantt of the membership history, built from ``newview``
    events (plus the optional initial view)."""
    history: dict[ProcId, list[tuple[float, Any]]] = {
        p: [] for p in processors
    }
    if initial_view is not None:
        for p in processors:
            if p in initial_view.set:
                history[p].append((0.0, initial_view))
    for event in trace.events:
        if event.action.name != "newview":
            continue
        view, p = event.action.args
        if p in history:
            history[p].append((event.time, view))
    lines = []
    for p in processors:
        intervals = history[p]
        parts = []
        for index, (start, view) in enumerate(intervals):
            end = (
                f"{intervals[index + 1][0]:.4g}"
                if index + 1 < len(intervals)
                else "∞"
            )
            members = ",".join(str(m) for m in sorted(view.set, key=str))
            parts.append(f"[{start:.4g}..{end}) id={view.id} {{{members}}}")
        lines.append(f"{p}: " + (" | ".join(parts) if parts else "(no view)"))
    return "\n".join(lines)
