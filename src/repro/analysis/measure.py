"""Extract the paper's measured quantities from timed traces.

Three measurements back the benchmark tables:

- ``stabilization_interval``: the l' of VS-property clause 2 — how long
  after the failure pattern stabilises until the last ``newview`` at the
  target group (compare against b = 9δ + max{π+(n+3)δ, μ});
- ``safe_latencies_in_final_view``: per-message send→all-members-safe
  latency within the stable view (compare against d = 2π + nδ);
- ``all_members_delivery_latencies``: TO-level bcast→delivered-at-all
  latency (compare against Theorem 7.2's b + d / d).
"""

from __future__ import annotations

from dataclasses import dataclass
from math import inf
from collections.abc import Hashable, Iterable, Sequence

from repro.core.types import View
from repro.ioa.timed import TimedTrace

ProcId = Hashable


@dataclass(frozen=True)
class StabilizationResult:
    """Outcome of a stabilisation measurement."""

    stabilized: bool
    #: time of the final failure-status change (the premise point l)
    l: float
    #: measured l' — last newview at the group after l, minus l
    l_prime: float
    #: the common final view, when stabilised
    final_view: View | None


def stabilization_interval(
    trace: TimedTrace,
    group: Iterable[ProcId],
    scenario_stable_at: float,
    initial_view: View | None = None,
) -> StabilizationResult:
    """Measure l' for ``group`` given that the failure pattern is known
    (from the scenario) to be stable from ``scenario_stable_at`` on."""
    group = frozenset(group)
    latest_view: dict[ProcId, View | None] = {
        p: (initial_view if initial_view and p in initial_view.set else None)
        for p in group
    }
    last_newview = scenario_stable_at
    for event in trace.events:
        if event.action.name != "newview":
            continue
        view, p = event.action.args
        if p in group:
            latest_view[p] = view
            if event.time > scenario_stable_at:
                last_newview = max(last_newview, event.time)
    views = set(latest_view.values())
    if len(views) != 1:
        return StabilizationResult(False, scenario_stable_at, inf, None)
    final = views.pop()
    if final is None or final.set != group:
        return StabilizationResult(False, scenario_stable_at, inf, final)
    return StabilizationResult(
        True, scenario_stable_at, last_newview - scenario_stable_at, final
    )


@dataclass(frozen=True)
class LatencySample:
    """One message's latency measurement."""

    sent_at: float
    completed_at: float

    @property
    def latency(self) -> float:
        return self.completed_at - self.sent_at


def safe_latencies_in_final_view(
    trace: TimedTrace,
    group: Sequence[ProcId],
    final_view: View,
    initial_view: View | None = None,
) -> list[LatencySample]:
    """Per-message latency from ``gpsnd`` (while in the final view) to
    the last corresponding ``safe`` event across the group.

    Matching uses per-sender sequence positions within the view, which
    is exact because VS guarantees per-sender FIFO within a view.
    """
    current: dict[ProcId, View | None] = {}
    send_times: dict[ProcId, list[float]] = {}
    safe_times: dict[tuple[ProcId, ProcId], list[float]] = {}
    for event in trace.events:
        name = event.action.name
        if name == "newview":
            view, p = event.action.args
            current[p] = view
        elif name == "gpsnd":
            payload, p = event.action.args
            view = current.get(p, initial_view)
            if view is not None and view.id == final_view.id:
                send_times.setdefault(p, []).append(event.time)
        elif name == "safe":
            payload, src, dst = event.action.args
            view = current.get(dst, initial_view)
            if view is not None and view.id == final_view.id:
                safe_times.setdefault((src, dst), []).append(event.time)
    samples: list[LatencySample] = []
    for p, times in send_times.items():
        for j, sent_at in enumerate(times):
            completion = -inf
            complete = True
            for q in group:
                q_safes = safe_times.get((p, q), [])
                if len(q_safes) <= j:
                    complete = False
                    break
                completion = max(completion, q_safes[j])
            if complete:
                samples.append(LatencySample(sent_at, completion))
    return samples


def all_members_delivery_latencies(
    trace: TimedTrace,
    group: Sequence[ProcId],
    after: float = 0.0,
) -> list[LatencySample]:
    """TO-level latency from ``bcast`` (at or after ``after``) to the
    value's delivery at every group member.

    Matching is by (value, origin) occurrence count, as in the
    TO-property checker.
    """
    sends: list[tuple[float, object, ProcId, int]] = []
    sends_seen: dict[tuple[object, ProcId], int] = {}
    deliveries: dict[tuple[object, ProcId, int, ProcId], float] = {}
    recv_seen: dict[tuple[object, ProcId, ProcId], int] = {}
    for event in trace.events:
        name = event.action.name
        if name == "bcast":
            value, p = event.action.args
            occurrence = sends_seen.get((value, p), 0)
            sends_seen[(value, p)] = occurrence + 1
            if event.time >= after:
                sends.append((event.time, value, p, occurrence))
        elif name == "brcv":
            value, p, q = event.action.args
            occurrence = recv_seen.get((value, p, q), 0)
            recv_seen[(value, p, q)] = occurrence + 1
            deliveries.setdefault((value, p, occurrence, q), event.time)
    samples: list[LatencySample] = []
    for sent_at, value, p, occurrence in sends:
        completion = -inf
        complete = True
        for q in group:
            t = deliveries.get((value, p, occurrence, q))
            if t is None:
                complete = False
                break
            completion = max(completion, t)
        if complete:
            samples.append(LatencySample(sent_at, completion))
    return samples
