"""Reusable experiment sweeps — the measured content behind
EXPERIMENTS.md, callable outside pytest (see :mod:`repro.report`).

Each function returns ``(headers, rows)`` ready for
:func:`repro.analysis.stats.format_table`.  The pytest benches under
``benchmarks/`` run richer versions of the same sweeps with assertions;
these are the compact, user-runnable forms.

The seeded sweeps accept ``workers=N`` to fan individual runs out over
worker processes via :mod:`repro.parallel`; rows come back in the same
deterministic order as the sequential loop regardless of worker count.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.parallel import parallel_map

from repro.analysis.measure import (
    all_members_delivery_latencies,
    safe_latencies_in_final_view,
    stabilization_interval,
)
from repro.analysis.stats import summarize
from repro.analysis.timeline import decompose_timeline
from repro.apps.baselines import StableStorageBroadcast
from repro.apps.totalorder import TotalOrderBroadcast
from repro.core.quorums import MajorityQuorumSystem
from repro.core.vstoto.process import is_summary
from repro.core.vstoto.runtime import VStoTORuntime
from repro.membership.bounds import VSBounds
from repro.membership.ring import RingConfig
from repro.membership.service import TokenRingVS
from repro.net.scenarios import PartitionScenario

Row = Sequence[object]
Table = tuple[Sequence[str], list[Row]]


_STABILIZATION_CONFIGS = (
    (2, 1.0, 10.0, 30.0),
    (3, 1.0, 10.0, 30.0),
    (5, 1.0, 10.0, 30.0),
    (3, 1.0, 20.0, 30.0),
)


def _stabilization_cell(item: tuple) -> float:
    """One (config, seed) split-stabilisation measurement (module-level
    so it pickles into worker processes)."""
    n, delta, pi, mu, seed = item
    processors = tuple(range(1, n + 3))
    group = processors[:n]
    vs = TokenRingVS(
        processors, RingConfig(delta=delta, pi=pi, mu=mu), seed=seed
    )
    vs.install_scenario(
        PartitionScenario().add(60.0, [list(group), list(processors[n:])])
    )
    vs.run_until(60.0 + 30 * max(pi, mu))
    result = stabilization_interval(
        vs.merged_trace(), group, 60.0, vs.initial_view
    )
    return result.l_prime if result.stabilized else 0.0


def stabilization_table(
    seeds: Sequence[int] = (0, 1, 2), workers: int = 1
) -> Table:
    """E5: split stabilisation l' vs b across (n, δ, π, μ)."""
    headers = ["n", "delta", "pi", "mu", "b(paper)", "measured", "ratio"]
    cells = [
        (n, delta, pi, mu, seed)
        for n, delta, pi, mu in _STABILIZATION_CONFIGS
        for seed in seeds
    ]
    measured = parallel_map(_stabilization_cell, cells, workers=workers)
    rows: list[Row] = []
    for index, (n, delta, pi, mu) in enumerate(_STABILIZATION_CONFIGS):
        bound = VSBounds(delta, pi, mu).b(n)
        worst = max(
            measured[index * len(seeds) : (index + 1) * len(seeds)],
            default=0.0,
        )
        rows.append([n, delta, pi, mu, bound, worst, worst / bound])
    return headers, rows


def latency_table(work_conserving: bool = False) -> Table:
    """E6: safe latency vs d = 2π + nδ."""
    headers = ["n", "delta", "pi", "d(paper)", "d(impl)", "mean", "max"]
    rows: list[Row] = []
    for n, delta, pi in (
        (3, 1.0, 10.0),
        (5, 1.0, 10.0),
        (5, 1.0, 20.0),
        (8, 1.0, 10.0),
    ):
        processors = tuple(range(1, n + 1))
        vs = TokenRingVS(
            processors,
            RingConfig(
                delta=delta, pi=pi, mu=1000.0, work_conserving=work_conserving
            ),
            seed=0,
        )
        spacing = (2 * pi + n * delta) / 3.0
        sends = 20
        for i in range(sends):
            vs.schedule_send(5.0 + spacing * i, processors[i % n], f"m{i}")
        vs.run_until(5.0 + spacing * sends + 20 * pi)
        samples = safe_latencies_in_final_view(
            vs.merged_trace(), processors, vs.initial_view, vs.initial_view
        )
        summary = summarize(s.latency for s in samples)
        bounds = VSBounds(delta, pi, 1000.0)
        rows.append(
            [
                n,
                delta,
                pi,
                bounds.d(n),
                bounds.d_impl(n, work_conserving),
                summary.mean,
                summary.max,
            ]
        )
    return headers, rows


def _full_stack(
    n: int, seed: int
) -> tuple[tuple[int, ...], TokenRingVS, VStoTORuntime]:
    processors = tuple(range(1, n + 1))
    service = TokenRingVS(
        processors,
        RingConfig(delta=1.0, pi=10.0, mu=30.0, work_conserving=True),
        seed=seed,
    )
    runtime = VStoTORuntime(service, MajorityQuorumSystem(processors))
    return processors, service, runtime


def _end_to_end_row(item: tuple) -> Row:
    n, seed = item
    processors, service, runtime = _full_stack(n, seed)
    for i in range(15):
        runtime.schedule_broadcast(20.0 + 18.0 * i, processors[i % n], f"e{i}")
    runtime.start()
    runtime.run_until(600.0)
    samples = all_members_delivery_latencies(runtime.merged_trace(), processors)
    summary = summarize(s.latency for s in samples)
    return [n, seed, summary.mean, summary.p95, summary.max]


def end_to_end_table(seeds: Sequence[int] = (0, 1), workers: int = 1) -> Table:
    """E7: steady-state bcast→all-delivered latency on the full stack."""
    headers = ["n", "seed", "mean", "p95", "max"]
    cells = [(n, seed) for n in (3, 5) for seed in seeds]
    rows: list[Row] = parallel_map(_end_to_end_row, cells, workers=workers)
    return headers, rows


def baseline_table(sigmas: Sequence[float] = (2.0, 5.0, 10.0)) -> Table:
    """E8: VStoTO vs the stable-storage-first baseline."""
    headers = ["sigma", "vstoto mean", "baseline mean", "gap"]
    processors = (1, 2, 3, 4, 5)
    config = RingConfig(delta=1.0, pi=10.0, mu=30.0, work_conserving=True)

    tob = TotalOrderBroadcast(processors, config=config, seed=3)
    for i in range(12):
        tob.schedule_broadcast(10.0 + 15 * i, processors[i % 5], f"v{i}")
    tob.run_until(600.0)
    plain = summarize(
        s.latency
        for s in all_members_delivery_latencies(tob.to_trace(), processors)
    )

    rows: list[Row] = []
    for sigma in sigmas:
        ssb = StableStorageBroadcast(
            processors, storage_latency=sigma, config=config, seed=3
        )
        submit = {}
        for i in range(12):
            submit[f"v{i}"] = 10.0 + 15 * i
            ssb.schedule_broadcast(submit[f"v{i}"], processors[i % 5], f"v{i}")
        ssb.run_until(800.0)
        per_value: dict = {}
        for delivery in ssb.logged_deliveries:
            per_value.setdefault(delivery.value, []).append(delivery.time)
        latencies = [
            max(times) - submit[value] for value, times in per_value.items()
        ]
        logged = summarize(latencies)
        rows.append([sigma, plain.mean, logged.mean, logged.mean - plain.mean])
    return headers, rows


def _timeline_row(seed: int) -> Row:
    bounds = VSBounds(1.0, 10.0, 30.0)
    processors, service, runtime = _full_stack(5, seed)
    service.install_scenario(
        PartitionScenario()
        .add(40.0, [[1, 2, 3], [4, 5]])
        .add(300.0, [[1, 2, 3, 4, 5]])
    )
    for i in range(10):
        runtime.schedule_broadcast(10.0 + 23.0 * i, processors[i % 5], i)
    runtime.start()
    runtime.run_until(800.0)
    timeline = decompose_timeline(
        service.merged_trace(),
        processors,
        300.0,
        is_summary,
        service.initial_view,
    )
    return [
        seed,
        timeline.alpha1_length,
        bounds.b(5),
        timeline.alpha3_length,
        timeline.total_stabilization,
        bounds.b(5) + bounds.d_impl(5, True),
    ]


def timeline_table(seeds: Sequence[int] = (0, 1, 2), workers: int = 1) -> Table:
    """E12: the Figure 12 decomposition."""
    headers = ["seed", "alpha1", "b", "alpha3", "total", "b+d"]
    rows: list[Row] = parallel_map(_timeline_row, list(seeds), workers=workers)
    return headers, rows


def observability_table(seeds: Sequence[int] = (0, 1, 2)) -> Table:
    """E19: live span-derived decompositions vs after-the-fact trace
    measurement on the same execution (they must agree exactly)."""
    from repro.obs import Observability

    headers = [
        "seed",
        "msg spans",
        "views",
        "unmatched",
        "l'(span)",
        "l'(measure)",
        "deliv mean(span)",
        "deliv mean(measure)",
    ]
    rows: list[Row] = []
    for seed in seeds:
        obs = Observability()
        processors = (1, 2, 3, 4, 5)
        service = TokenRingVS(
            processors,
            RingConfig(delta=1.0, pi=10.0, mu=30.0, work_conserving=True),
            seed=seed,
            obs=obs,
        )
        runtime = VStoTORuntime(service, MajorityQuorumSystem(processors))
        service.install_scenario(
            PartitionScenario()
            .add(40.0, [[1, 2, 3], [4, 5]])
            .add(300.0, [[1, 2, 3, 4, 5]])
        )
        for i in range(10):
            runtime.schedule_broadcast(10.0 + 23.0 * i, processors[i % 5], i)
        runtime.start()
        runtime.run_until(800.0)
        tracer = obs.tracer
        span_l = tracer.stabilization_point(processors, 300.0)
        measured = stabilization_interval(
            service.merged_trace(), processors, 300.0, service.initial_view
        )
        span_samples = tracer.delivery_latencies(processors)
        span_mean = summarize(c - b for b, c in span_samples).mean
        meas_mean = summarize(
            s.latency
            for s in all_members_delivery_latencies(
                runtime.merged_trace(), processors
            )
        ).mean
        rows.append(
            [
                seed,
                len(tracer.message_spans),
                len(tracer.view_spans),
                tracer.unmatched_events,
                round(span_l, 4),
                round(measured.l_prime, 4),
                round(span_mean, 4),
                round(meas_mean, 4),
            ]
        )
    return headers, rows


def chaos_table(seeds: Sequence[int] = (0, 1, 2, 3), workers: int = 1) -> Table:
    """E18: compact chaos soak — composed nemesis, safety verdicts and
    structured drop accounting (full sweep: ``bench_chaos_soak.py``)."""
    from repro.faults import run_chaos_many

    headers = [
        "seed",
        "kinds",
        "safe",
        "recovered",
        "bad@send",
        "ugly",
        "in-flight",
        "injected",
        "drops(total)",
        "restarts",
        "dups",
        "retransmits",
        "recovery",
    ]
    rows: list[Row] = []
    reports = run_chaos_many(
        (1, 2, 3, 4, 5),
        list(seeds),
        workers=workers,
        horizon=300.0,
        intensity=0.7,
        sends=12,
        settle=700.0,
    )
    for seed, report in zip(seeds, reports):
        rows.append(
            [
                seed,
                len(report.fault_kinds),
                "yes" if report.safety_ok else "NO",
                "yes" if report.delivered_complete else "NO",
                report.drops["bad_at_send"],
                report.drops["ugly_loss"],
                report.drops["bad_in_flight"],
                report.drops["injected"],
                report.drops_total,
                report.stats["restarts"],
                report.stats["duplicates_suppressed"],
                report.stats["retransmissions"],
                round(report.recovery_time, 1),
            ]
        )
    return headers, rows
