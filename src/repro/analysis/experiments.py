"""Reusable experiment sweeps — the measured content behind
EXPERIMENTS.md, callable outside pytest (see :mod:`repro.report`).

Each function returns ``(headers, rows)`` ready for
:func:`repro.analysis.stats.format_table`.  The pytest benches under
``benchmarks/`` run richer versions of the same sweeps with assertions;
these are the compact, user-runnable forms.
"""

from __future__ import annotations

from typing import Sequence

from repro.analysis.measure import (
    all_members_delivery_latencies,
    safe_latencies_in_final_view,
    stabilization_interval,
)
from repro.analysis.stats import summarize
from repro.analysis.timeline import decompose_timeline
from repro.apps.baselines import StableStorageBroadcast
from repro.apps.totalorder import TotalOrderBroadcast
from repro.core.quorums import MajorityQuorumSystem
from repro.core.vstoto.process import is_summary
from repro.core.vstoto.runtime import VStoTORuntime
from repro.membership.bounds import VSBounds
from repro.membership.ring import RingConfig
from repro.membership.service import TokenRingVS
from repro.net.scenarios import PartitionScenario

Row = Sequence[object]
Table = tuple[Sequence[str], list[Row]]


def stabilization_table(seeds: Sequence[int] = (0, 1, 2)) -> Table:
    """E5: split stabilisation l' vs b across (n, δ, π, μ)."""
    headers = ["n", "delta", "pi", "mu", "b(paper)", "measured", "ratio"]
    rows: list[Row] = []
    for n, delta, pi, mu in (
        (2, 1.0, 10.0, 30.0),
        (3, 1.0, 10.0, 30.0),
        (5, 1.0, 10.0, 30.0),
        (3, 1.0, 20.0, 30.0),
    ):
        bound = VSBounds(delta, pi, mu).b(n)
        worst = 0.0
        for seed in seeds:
            processors = tuple(range(1, n + 3))
            group = processors[:n]
            vs = TokenRingVS(
                processors, RingConfig(delta=delta, pi=pi, mu=mu), seed=seed
            )
            vs.install_scenario(
                PartitionScenario().add(
                    60.0, [list(group), list(processors[n:])]
                )
            )
            vs.run_until(60.0 + 30 * max(pi, mu))
            result = stabilization_interval(
                vs.merged_trace(), group, 60.0, vs.initial_view
            )
            if result.stabilized:
                worst = max(worst, result.l_prime)
        rows.append([n, delta, pi, mu, bound, worst, worst / bound])
    return headers, rows


def latency_table(work_conserving: bool = False) -> Table:
    """E6: safe latency vs d = 2π + nδ."""
    headers = ["n", "delta", "pi", "d(paper)", "d(impl)", "mean", "max"]
    rows: list[Row] = []
    for n, delta, pi in (
        (3, 1.0, 10.0),
        (5, 1.0, 10.0),
        (5, 1.0, 20.0),
        (8, 1.0, 10.0),
    ):
        processors = tuple(range(1, n + 1))
        vs = TokenRingVS(
            processors,
            RingConfig(
                delta=delta, pi=pi, mu=1000.0, work_conserving=work_conserving
            ),
            seed=0,
        )
        spacing = (2 * pi + n * delta) / 3.0
        sends = 20
        for i in range(sends):
            vs.schedule_send(5.0 + spacing * i, processors[i % n], f"m{i}")
        vs.run_until(5.0 + spacing * sends + 20 * pi)
        samples = safe_latencies_in_final_view(
            vs.merged_trace(), processors, vs.initial_view, vs.initial_view
        )
        summary = summarize(s.latency for s in samples)
        bounds = VSBounds(delta, pi, 1000.0)
        rows.append(
            [
                n,
                delta,
                pi,
                bounds.d(n),
                bounds.d_impl(n, work_conserving),
                summary.mean,
                summary.max,
            ]
        )
    return headers, rows


def _full_stack(n: int, seed: int):
    processors = tuple(range(1, n + 1))
    service = TokenRingVS(
        processors,
        RingConfig(delta=1.0, pi=10.0, mu=30.0, work_conserving=True),
        seed=seed,
    )
    runtime = VStoTORuntime(service, MajorityQuorumSystem(processors))
    return processors, service, runtime


def end_to_end_table(seeds: Sequence[int] = (0, 1)) -> Table:
    """E7: steady-state bcast→all-delivered latency on the full stack."""
    headers = ["n", "seed", "mean", "p95", "max"]
    rows: list[Row] = []
    for n in (3, 5):
        for seed in seeds:
            processors, service, runtime = _full_stack(n, seed)
            for i in range(15):
                runtime.schedule_broadcast(
                    20.0 + 18.0 * i, processors[i % n], f"e{i}"
                )
            runtime.start()
            runtime.run_until(600.0)
            samples = all_members_delivery_latencies(
                runtime.merged_trace(), processors
            )
            summary = summarize(s.latency for s in samples)
            rows.append([n, seed, summary.mean, summary.p95, summary.max])
    return headers, rows


def baseline_table(sigmas: Sequence[float] = (2.0, 5.0, 10.0)) -> Table:
    """E8: VStoTO vs the stable-storage-first baseline."""
    headers = ["sigma", "vstoto mean", "baseline mean", "gap"]
    processors = (1, 2, 3, 4, 5)
    config = RingConfig(delta=1.0, pi=10.0, mu=30.0, work_conserving=True)

    tob = TotalOrderBroadcast(processors, config=config, seed=3)
    for i in range(12):
        tob.schedule_broadcast(10.0 + 15 * i, processors[i % 5], f"v{i}")
    tob.run_until(600.0)
    plain = summarize(
        s.latency
        for s in all_members_delivery_latencies(tob.to_trace(), processors)
    )

    rows: list[Row] = []
    for sigma in sigmas:
        ssb = StableStorageBroadcast(
            processors, storage_latency=sigma, config=config, seed=3
        )
        submit = {}
        for i in range(12):
            submit[f"v{i}"] = 10.0 + 15 * i
            ssb.schedule_broadcast(submit[f"v{i}"], processors[i % 5], f"v{i}")
        ssb.run_until(800.0)
        per_value: dict = {}
        for delivery in ssb.logged_deliveries:
            per_value.setdefault(delivery.value, []).append(delivery.time)
        latencies = [
            max(times) - submit[value] for value, times in per_value.items()
        ]
        logged = summarize(latencies)
        rows.append([sigma, plain.mean, logged.mean, logged.mean - plain.mean])
    return headers, rows


def timeline_table(seeds: Sequence[int] = (0, 1, 2)) -> Table:
    """E12: the Figure 12 decomposition."""
    headers = ["seed", "alpha1", "b", "alpha3", "total", "b+d"]
    bounds = VSBounds(1.0, 10.0, 30.0)
    rows: list[Row] = []
    for seed in seeds:
        processors, service, runtime = _full_stack(5, seed)
        service.install_scenario(
            PartitionScenario()
            .add(40.0, [[1, 2, 3], [4, 5]])
            .add(300.0, [[1, 2, 3, 4, 5]])
        )
        for i in range(10):
            runtime.schedule_broadcast(10.0 + 23.0 * i, processors[i % 5], i)
        runtime.start()
        runtime.run_until(800.0)
        timeline = decompose_timeline(
            service.merged_trace(),
            processors,
            300.0,
            is_summary,
            service.initial_view,
        )
        rows.append(
            [
                seed,
                timeline.alpha1_length,
                bounds.b(5),
                timeline.alpha3_length,
                timeline.total_stabilization,
                bounds.b(5) + bounds.d_impl(5, True),
            ]
        )
    return headers, rows


def observability_table(seeds: Sequence[int] = (0, 1, 2)) -> Table:
    """E19: live span-derived decompositions vs after-the-fact trace
    measurement on the same execution (they must agree exactly)."""
    from repro.obs import Observability

    headers = [
        "seed",
        "msg spans",
        "views",
        "unmatched",
        "l'(span)",
        "l'(measure)",
        "deliv mean(span)",
        "deliv mean(measure)",
    ]
    rows: list[Row] = []
    for seed in seeds:
        obs = Observability()
        processors = (1, 2, 3, 4, 5)
        service = TokenRingVS(
            processors,
            RingConfig(delta=1.0, pi=10.0, mu=30.0, work_conserving=True),
            seed=seed,
            obs=obs,
        )
        runtime = VStoTORuntime(service, MajorityQuorumSystem(processors))
        service.install_scenario(
            PartitionScenario()
            .add(40.0, [[1, 2, 3], [4, 5]])
            .add(300.0, [[1, 2, 3, 4, 5]])
        )
        for i in range(10):
            runtime.schedule_broadcast(10.0 + 23.0 * i, processors[i % 5], i)
        runtime.start()
        runtime.run_until(800.0)
        tracer = obs.tracer
        span_l = tracer.stabilization_point(processors, 300.0)
        measured = stabilization_interval(
            service.merged_trace(), processors, 300.0, service.initial_view
        )
        span_samples = tracer.delivery_latencies(processors)
        span_mean = summarize(c - b for b, c in span_samples).mean
        meas_mean = summarize(
            s.latency
            for s in all_members_delivery_latencies(
                runtime.merged_trace(), processors
            )
        ).mean
        rows.append(
            [
                seed,
                len(tracer.message_spans),
                len(tracer.view_spans),
                tracer.unmatched_events,
                round(span_l, 4),
                round(measured.l_prime, 4),
                round(span_mean, 4),
                round(meas_mean, 4),
            ]
        )
    return headers, rows


def chaos_table(seeds: Sequence[int] = (0, 1, 2, 3)) -> Table:
    """E18: compact chaos soak — composed nemesis, safety verdicts and
    structured drop accounting (full sweep: ``bench_chaos_soak.py``)."""
    from repro.faults import run_chaos

    headers = [
        "seed",
        "kinds",
        "safe",
        "recovered",
        "bad@send",
        "ugly",
        "in-flight",
        "injected",
        "drops(total)",
        "restarts",
        "dups",
        "retransmits",
        "recovery",
    ]
    rows: list[Row] = []
    for seed in seeds:
        report = run_chaos(
            (1, 2, 3, 4, 5),
            seed=seed,
            horizon=300.0,
            intensity=0.7,
            sends=12,
            settle=700.0,
        )
        rows.append(
            [
                seed,
                len(report.fault_kinds),
                "yes" if report.safety_ok else "NO",
                "yes" if report.delivered_complete else "NO",
                report.drops["bad_at_send"],
                report.drops["ugly_loss"],
                report.drops["bad_in_flight"],
                report.drops["injected"],
                report.drops_total,
                report.stats["restarts"],
                report.stats["duplicates_suppressed"],
                report.stats["retransmissions"],
                round(report.recovery_time, 1),
            ]
        )
    return headers, rows
