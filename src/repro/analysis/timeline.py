"""The Figure 12 performance-argument decomposition.

Theorem 7.1's proof splits a stabilising execution α into
α₀ α₁ α₃ α₄:

- α₀ ends at the premise point l (failure pattern stabilises);
- α₁ ends when the VS layer has settled — the last ``newview`` at the
  group (length ≤ b by VS-property);
- α₃ ends when every state-exchange message of the final view is safe
  at every member (length ≤ d by the VStoTO-property argument);
- α₄ is the steady state in which every remaining delivery obligation is
  met within d.

:func:`decompose_timeline` reconstructs these boundaries from a merged
timed trace, which ``benchmarks/bench_timeline.py`` prints against the
bound decomposition b + d.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import inf
from collections.abc import Callable, Hashable, Iterable
from typing import Any

from repro.core.types import View
from repro.ioa.timed import TimedTrace

ProcId = Hashable


@dataclass(frozen=True)
class Timeline:
    """Boundary times of the Figure 12 decomposition (absolute virtual
    times; ``inf`` when the phase never completed)."""

    #: end of α₀: failure pattern stabilises (premise point l)
    l: float
    #: end of α₁: last newview at the group (VS settled)
    vs_settled_at: float
    #: end of α₃: all state-exchange summaries of the final view safe
    exchange_safe_at: float
    final_view: View | None

    @property
    def alpha1_length(self) -> float:
        """Measured l' — compare against b."""
        return self.vs_settled_at - self.l

    @property
    def alpha3_length(self) -> float:
        """Measured exchange-completion interval — compare against d."""
        return self.exchange_safe_at - self.vs_settled_at

    @property
    def total_stabilization(self) -> float:
        """Measured l' + exchange interval — compare against b + d."""
        return self.exchange_safe_at - self.l


def decompose_timeline(
    trace: TimedTrace,
    group: Iterable[ProcId],
    scenario_stable_at: float,
    summary_predicate: Callable[[Any], bool],
    initial_view: View | None = None,
) -> Timeline:
    """Reconstruct the Figure 12 boundaries.

    ``summary_predicate(payload)`` distinguishes state-exchange payloads
    from ordinary messages at the VS interface (the full stack passes
    :func:`repro.core.vstoto.process.is_summary`).
    """
    group = frozenset(group)
    latest_view: dict[ProcId, View | None] = {
        p: (initial_view if initial_view and p in initial_view.set else None)
        for p in group
    }
    vs_settled_at = scenario_stable_at
    for event in trace.events:
        if event.action.name != "newview":
            continue
        view, p = event.action.args
        if p in group:
            latest_view[p] = view
            if event.time > scenario_stable_at:
                vs_settled_at = max(vs_settled_at, event.time)
    views = set(latest_view.values())
    final_view = views.pop() if len(views) == 1 else None
    if final_view is None or final_view.set != group:
        return Timeline(scenario_stable_at, inf, inf, final_view)

    # α₃: every member must see a safe event for every member's summary
    # in the final view.
    needed = {(src, dst) for src in group for dst in group}
    exchange_safe_at = -inf
    current: dict[ProcId, View | None] = {}
    for event in trace.events:
        name = event.action.name
        if name == "newview":
            view, p = event.action.args
            current[p] = view
        elif name == "safe" and needed:
            payload, src, dst = event.action.args
            view = current.get(dst, initial_view)
            if (
                view is not None
                and view.id == final_view.id
                and summary_predicate(payload)
                and (src, dst) in needed
            ):
                needed.discard((src, dst))
                exchange_safe_at = max(exchange_safe_at, event.time)
    if needed:
        return Timeline(scenario_stable_at, vs_settled_at, inf, final_view)
    return Timeline(
        scenario_stable_at,
        vs_settled_at,
        max(exchange_safe_at, vs_settled_at),
        final_view,
    )
