"""Summary statistics and plain-text tables for the bench harness."""

from __future__ import annotations

import math
from dataclasses import dataclass
from collections.abc import Iterable, Sequence


@dataclass(frozen=True)
class Summary:
    """Five-number-ish summary of a latency sample set."""

    count: int
    mean: float
    p50: float
    p95: float
    max: float

    def __str__(self) -> str:
        return (
            f"n={self.count} mean={self.mean:.3g} p50={self.p50:.3g} "
            f"p95={self.p95:.3g} max={self.max:.3g}"
        )


def _percentile(sorted_values: Sequence[float], fraction: float) -> float:
    if not sorted_values:
        return math.nan
    if len(sorted_values) == 1:
        return sorted_values[0]
    rank = fraction * (len(sorted_values) - 1)
    low = int(math.floor(rank))
    high = int(math.ceil(rank))
    if low == high:
        return sorted_values[low]
    weight = rank - low
    return sorted_values[low] * (1 - weight) + sorted_values[high] * weight


def summarize(values: Iterable[float]) -> Summary:
    """Build a :class:`Summary` (NaNs for an empty sample)."""
    data = sorted(values)
    if not data:
        return Summary(0, math.nan, math.nan, math.nan, math.nan)
    return Summary(
        count=len(data),
        mean=sum(data) / len(data),
        p50=_percentile(data, 0.50),
        p95=_percentile(data, 0.95),
        max=data[-1],
    )


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Render an aligned plain-text table (the benches print these as the
    paper-style result rows)."""
    cells = [[str(h) for h in headers]] + [
        [f"{c:.4g}" if isinstance(c, float) else str(c) for c in row]
        for row in rows
    ]
    widths = [max(len(row[i]) for row in cells) for i in range(len(headers))]
    lines = []
    for index, row in enumerate(cells):
        lines.append("  ".join(cell.rjust(width) for cell, width in zip(row, widths)))
        if index == 0:
            lines.append("  ".join("-" * width for width in widths))
    return "\n".join(lines)
