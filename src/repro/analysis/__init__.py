"""Measurement and analysis helpers for the benchmark harness.

- :mod:`repro.analysis.measure` — extract stabilisation intervals,
  safe-delivery latencies, and end-to-end TO latencies from timed
  traces;
- :mod:`repro.analysis.stats` — summary statistics and plain-text table
  rendering (the benches print paper-style rows);
- :mod:`repro.analysis.timeline` — the Figure 12 performance-argument
  decomposition of a stabilising execution.
"""

from repro.analysis.measure import (
    all_members_delivery_latencies,
    safe_latencies_in_final_view,
    stabilization_interval,
)
from repro.analysis.stats import Summary, format_table, summarize
from repro.analysis.timeline import Timeline, decompose_timeline
from repro.analysis.tracefmt import (
    describe_event,
    format_timeline,
    summarize_trace,
)

__all__ = [
    "stabilization_interval",
    "safe_latencies_in_final_view",
    "all_members_delivery_latencies",
    "Summary",
    "summarize",
    "format_table",
    "Timeline",
    "decompose_timeline",
    "describe_event",
    "format_timeline",
    "summarize_trace",
]
