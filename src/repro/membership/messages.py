"""Wire-format records for the membership/token protocol.

View identifiers are ``(epoch, initiator)`` pairs, ordered
lexicographically; epochs only grow, and an initiator never reuses an
epoch, so identifiers are globally unique — exactly what the paper's
Section 8 sketch requires ("viewids have a procid as low-order part and
an epoch as high-order part").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Hashable
from typing import Any

ProcId = Hashable
RingViewId = tuple[int, Any]  # (epoch, initiator); compared lexicographically


@dataclass(frozen=True)
class NewGroup:
    """Round 1: a call-for-participation in a new view."""

    viewid: RingViewId
    initiator: ProcId


@dataclass(frozen=True)
class Accept:
    """Round 2: a reply agreeing to join the proposed view."""

    viewid: RingViewId
    member: ProcId


@dataclass(frozen=True)
class Join:
    """Round 3: the initiator announces the final membership."""

    viewid: RingViewId
    members: tuple[ProcId, ...]


@dataclass
class Token:
    """The circulating token that holds a view together and carries the
    view's total message order.

    - ``members``: the view membership (lets a processor that missed the
      Join install the view from the token, tolerating reordering);
    - ``order``: a *window* of the view's message sequence, entries are
      (payload, origin) pairs — this is ``queue[g]`` made concrete.  The
      window covers logical positions ``base .. base + len(order)``;
      with delta encoding a forwarder trims it to what its successor has
      not yet acknowledged, so a steady-state hop carries O(new entries)
      instead of the whole history.  ``base == 0`` (the default) makes
      ``order`` the full sequence — the legacy full-copy encoding;
    - ``delivered``: per-member count of order entries that member had
      passed to its client when the token last left it (the basis for
      the safe indication).  All counts (``delivered``/``safed``/
      ``seen``) are absolute positions in the logical sequence, never
      window-relative, so trimming does not disturb them;
    - ``hop``: position in the circulation (diagnostics).
    """

    viewid: RingViewId
    members: tuple[ProcId, ...] = ()
    #: logical position of ``order[0]`` in the view's full sequence
    base: int = 0
    order: list = field(default_factory=list)
    delivered: dict = field(default_factory=dict)
    safed: dict = field(default_factory=dict)
    seen: dict = field(default_factory=dict)
    #: members visited since the leader last launched the token — fresh
    #: liveness evidence for the one-round connectivity estimate
    trail: list = field(default_factory=list)
    hop: int = 0

    @property
    def total(self) -> int:
        """Length of the view's full logical sequence as this token
        knows it (the position just past the window's last entry)."""
        return self.base + len(self.order)

    def copy(self) -> Token:
        """Per-hop copy so in-flight tokens never alias member state."""
        return Token(
            viewid=self.viewid,
            members=self.members,
            base=self.base,
            order=list(self.order),
            delivered=dict(self.delivered),
            safed=dict(self.safed),
            seen=dict(self.seen),
            trail=list(self.trail),
            hop=self.hop,
        )

    def seen_prefix_length(self, members: tuple[ProcId, ...]) -> int:
        """Entries every member has *seen* (had on its token pass) —
        the Totem-style gating condition for safe-before-deliver."""
        if not members:
            return 0
        return min(self.seen.get(m, 0) for m in members)

    def safe_prefix_length(self, members: tuple[ProcId, ...]) -> int:
        """Entries delivered at *every* member per the token's counts."""
        if not members:
            return 0
        return min(self.delivered.get(m, 0) for m in members)


@dataclass(frozen=True)
class Probe:
    """A merge probe sent to processors outside the current view."""

    sender: ProcId
    viewid: RingViewId


@dataclass(frozen=True)
class Sequenced:
    """A protocol message stamped with a per-sender packet sequence
    number.

    The model's channels may duplicate nothing, but the nemesis layer
    (and real networks) can: the receiver suppresses packets whose
    (sender, seq) it has already processed.  Retransmissions of the same
    logical message are *new* packets with fresh sequence numbers — they
    are filtered by the handlers' idempotence, not by this layer.

    Sequence numbers are strictly increasing per sender across the whole
    run (they survive a crash-restart, like the epoch: a single durable
    counter), so a receiver can also bound its memory by refusing
    anything at or below a pruned floor.
    """

    seq: int
    body: Any
