"""The Section 8 implementation of VS: Cristian–Schmuck membership with
a logical token ring.

- :mod:`repro.membership.bounds` — the paper's closed-form performance
  bounds b = 9δ + max{π + (n+3)δ, μ} and d = 2π + nδ;
- :mod:`repro.membership.messages` — wire-format records;
- :mod:`repro.membership.ring` — the per-processor protocol state
  machine (view formation, token circulation, merge probing);
- :mod:`repro.membership.service` — :class:`TokenRingVS`, the façade
  that wires ring members to a simulated network and exposes the VS
  interface (gpsnd in; gprcv/safe/newview callbacks out) together with a
  timed trace for conformance checking.
"""

from repro.membership.bounds import VSBounds
from repro.membership.messages import (
    Accept,
    Join,
    NewGroup,
    Probe,
    Token,
)
from repro.membership.ring import RingConfig, RingMember
from repro.membership.service import TokenRingVS
from repro.membership.shadow import WeakVSShadow

__all__ = [
    "WeakVSShadow",
    "VSBounds",
    "NewGroup",
    "Accept",
    "Join",
    "Token",
    "Probe",
    "RingConfig",
    "RingMember",
    "TokenRingVS",
]
