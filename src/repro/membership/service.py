""":class:`TokenRingVS` — the VS service façade over the simulated
network.

Wires one :class:`~repro.membership.ring.RingMember` per processor to a
:class:`~repro.net.network.Network`, exposes the VS interface
(``gpsnd`` in; ``gprcv``/``safe``/``newview`` callbacks out), records a
:class:`~repro.ioa.timed.TimedTrace` of every VS external event, and can
merge in the failure-status history for the property checkers.

This is the implementation whose traces are checked against VS-machine
(safety) and against VS-property with the Section 8 bounds
(performance): experiments E2, E5, E6.
"""

from __future__ import annotations

from collections.abc import Callable, Hashable, Iterable
from typing import TYPE_CHECKING, Any

from repro.core.types import View
from repro.ioa.actions import act
from repro.ioa.timed import IncrementalStatusMerger, TimedTrace
from repro.membership.ring import RingConfig, RingMember
from repro.net.channel import ChannelConfig
from repro.obs import capture
from repro.net.network import Network
from repro.net.scenarios import PartitionScenario
from repro.sim.engine import Simulator
from repro.sim.rng import RngRegistry

if TYPE_CHECKING:
    from repro.obs import Observability
    from repro.obs.tracing import LifecycleTracer

ProcId = Hashable

#: callback signatures: (payload, src, dst) for gprcv/safe; (view, p)
#: for newview.
DeliveryCallback = Callable[[Any, ProcId, ProcId], None]
ViewCallback = Callable[[View, ProcId], None]
#: passive observer of every recorded VS event: (time, name, args).
VSEventListener = Callable[[float, str, tuple[Any, ...]], None]


class TokenRingVS:
    """A runnable VS service instance.

    Parameters
    ----------
    processors:
        The processor set P.
    config:
        Protocol timing parameters (δ, π, μ).
    seed:
        Master seed for all randomness (channel delays etc.).
    initial_members:
        P0 for the hybrid initial view; defaults to all processors.
        Processors outside P0 start with no view and join via probes.
    obs:
        Optional :class:`repro.obs.Observability` hub; when given, every
        layer (simulator, channels, ring members, and — via
        :class:`~repro.core.vstoto.runtime.VStoTORuntime` — the VS-to-TO
        automata) instruments itself against it.  Attaching a hub never
        perturbs the execution (no RNG draws, no scheduled events).
    """

    def __init__(
        self,
        processors: Iterable[ProcId],
        config: RingConfig | None = None,
        seed: int = 0,
        initial_members: Iterable[ProcId] | None = None,
        obs: Observability | None = None,
    ) -> None:
        self.processors: tuple[ProcId, ...] = tuple(processors)
        self.config = config if config is not None else RingConfig()
        self.simulator = Simulator()
        self.rngs = RngRegistry(seed)
        self.network = Network(
            self.processors,
            self.simulator,
            rngs=self.rngs,
            config=ChannelConfig(delta=self.config.delta),
        )
        members = (
            frozenset(initial_members)
            if initial_members is not None
            else frozenset(self.processors)
        )
        g0 = (0, min(members)) if members else (0, min(self.processors))
        self.initial_view = View(g0, members)
        self.members: dict[ProcId, RingMember] = {}
        for p in self.processors:
            member = RingMember(
                p,
                self,
                self.config,
                self.initial_view if p in members else None,
            )
            self.members[p] = member
            self.network.register(member)
        self.trace = TimedTrace()
        self._merger = IncrementalStatusMerger(
            self.trace, lambda: self.network.oracle.history
        )
        self.on_gprcv: DeliveryCallback | None = None
        self.on_safe: DeliveryCallback | None = None
        self.on_newview: ViewCallback | None = None
        self._started = False
        self._vs_listeners: list[VSEventListener] = []
        self.obs: Observability | None = None
        self._tracer: LifecycleTracer | None = None
        if obs is not None:
            self.attach_obs(obs)
        capture.register(self)

    # ------------------------------------------------------------------
    def attach_obs(self, obs: Observability | None) -> None:
        """Thread an observability hub through every layer this service
        owns.  Call before :meth:`start` to catch the whole execution."""
        if obs is None:
            return
        self.obs = obs
        self.simulator.attach_obs(obs)
        self.network.attach_obs(obs)
        for member in self.members.values():
            member.attach_obs(obs)
        self._tracer = obs.tracer
        if self._tracer is not None:
            self._tracer.set_initial_view(self.initial_view)

    # ------------------------------------------------------------------
    def start(self) -> None:
        """Arm every member's timers (idempotent)."""
        if self._started:
            return
        self._started = True
        for member in self.members.values():
            member.start()

    def run_until(self, time: float) -> None:
        self.start()
        self.simulator.run_until(time)

    def install_scenario(self, scenario: PartitionScenario) -> None:
        scenario.install(self.network)

    def restart_processor(self, p: ProcId) -> None:
        """Crash-restart the ring member at ``p`` (fresh volatile state;
        see :meth:`repro.membership.ring.RingMember.restart`).  The
        caller is responsible for the surrounding failure-status story —
        typically mark p bad for the outage, call this, then mark p good
        again (what :class:`repro.faults.CrashRestartInjector` does)."""
        self.members[p].restart()

    # ------------------------------------------------------------------
    # VS client interface
    # ------------------------------------------------------------------
    def gpsnd(self, p: ProcId, payload: Any) -> None:
        """Client at p sends payload (associated with p's current view)."""
        self._record("gpsnd", payload, p)
        self.members[p].gpsnd(payload)

    def current_view(self, p: ProcId) -> View | None:
        return self.members[p].view

    def schedule_send(self, time: float, p: ProcId, payload: Any) -> None:
        """Schedule a client send at an absolute virtual time."""
        self.simulator.schedule_at(time, lambda: self.gpsnd(p, payload))

    # ------------------------------------------------------------------
    # Emission (called by ring members)
    # ------------------------------------------------------------------
    def emit_newview(self, view: View, p: ProcId) -> None:
        self._record("newview", view, p)
        if self.on_newview is not None:
            self.on_newview(view, p)

    def emit_gprcv(self, payload: Any, src: ProcId, dst: ProcId) -> None:
        self._record("gprcv", payload, src, dst)
        if self.on_gprcv is not None:
            self.on_gprcv(payload, src, dst)

    def emit_safe(self, payload: Any, src: ProcId, dst: ProcId) -> None:
        self._record("safe", payload, src, dst)
        if self.on_safe is not None:
            self.on_safe(payload, src, dst)

    def add_vs_listener(self, fn: VSEventListener) -> None:
        """Subscribe a passive observer to every recorded VS event
        (``gpsnd``/``gprcv``/``safe``/``newview``).  Listeners must not
        schedule events or draw randomness — they ride the recorder the
        same way the lifecycle tracer does.  The protocol-event hub of
        :mod:`repro.faults.triggers` is the main customer."""
        self._vs_listeners.append(fn)

    def _record(self, name: str, *args: Any) -> None:
        self.trace.append(self.simulator.now, act(name, *args))
        if self._tracer is not None:
            self._tracer.on_vs_event(self.simulator.now, name, args)
        for fn in self._vs_listeners:
            fn(self.simulator.now, name, args)

    # ------------------------------------------------------------------
    # Trace assembly for the checkers
    # ------------------------------------------------------------------
    def merged_trace(self) -> TimedTrace:
        """The VS event trace merged with failure-status events from the
        oracle history, in time order — the shape both property checkers
        consume.  Incremental: only events recorded since the previous
        call are merged in (O(new) amortised instead of an O(n log n)
        re-sort), which keeps periodic conformance sweeps cheap on long
        runs."""
        return self._merger.merged()

    def stats(self) -> dict[str, Any]:
        """Aggregate protocol statistics (diagnostics for benchmarks)."""
        return {
            "messages_sent": self.network.messages_sent,
            "messages_delivered": self.network.messages_delivered,
            "formations": sum(
                m.formations_initiated for m in self.members.values()
            ),
            "tokens_processed": sum(
                m.tokens_processed for m in self.members.values()
            ),
            "duplicates_suppressed": sum(
                m.duplicates_suppressed for m in self.members.values()
            ),
            "retransmissions": sum(
                m.retransmissions for m in self.members.values()
            ),
            "restarts": sum(m.restarts for m in self.members.values()),
            "token_forwards": sum(
                m.token_forwards for m in self.members.values()
            ),
            "token_entries_sent": sum(
                m.token_entries_sent for m in self.members.values()
            ),
            "token_entries_max": max(
                (m.token_entries_max for m in self.members.values()),
                default=0,
            ),
            "token_resyncs": sum(
                m.token_resyncs for m in self.members.values()
            ),
            "drops": self.network.drop_stats(),
            "events_processed": self.simulator.events_processed,
        }
