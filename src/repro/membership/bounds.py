"""The paper's closed-form performance bounds for the Section 8
implementation.

As analysed in Cristian–Schmuck and quoted at the end of Section 8, the
token-ring protocol implements VS(b, d, Q) for any processor set Q with

    b = 9δ + max{π + (n + 3)δ, μ}
    d = 2π + nδ

where n = |Q|, δ bounds good-link packet delay, π is the leader's token
launch spacing (which must satisfy π > nδ), and μ is the spacing of
merge-probe attempts.  Theorem 7.2 then gives TO(b + d, d, Q) for the
full stack.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class VSBounds:
    """Bound calculator for given protocol timing parameters.

    Parameters
    ----------
    delta:
        Good-link delivery bound δ.
    pi:
        Token launch spacing π (must exceed n·δ for the intended regime;
        :meth:`validate` checks this for a given n).
    mu:
        Merge-probe spacing μ.
    """

    delta: float
    pi: float
    mu: float

    def __post_init__(self) -> None:
        if self.delta <= 0 or self.pi <= 0 or self.mu <= 0:
            raise ValueError("delta, pi and mu must be positive")

    def validate(self, n: int) -> None:
        """Check the paper's constraint π > nδ for a group of size n."""
        if self.pi <= n * self.delta:
            raise ValueError(
                f"pi = {self.pi} must exceed n*delta = {n * self.delta}"
            )

    def b(self, n: int) -> float:
        """Membership stabilisation bound b(n)."""
        return 9 * self.delta + max(self.pi + (n + 3) * self.delta, self.mu)

    def d(self, n: int) -> float:
        """Safe-delivery latency bound d(n)."""
        return 2 * self.pi + n * self.delta

    def to_b(self, n: int) -> float:
        """The TO-level stabilisation bound b + d (Theorem 7.2)."""
        return self.b(n) + self.d(n)

    def to_d(self, n: int) -> float:
        """The TO-level delivery bound d (Theorem 7.2)."""
        return self.d(n)

    # ------------------------------------------------------------------
    # Bounds for this repository's concrete token variants.  The paper's
    # d assumes the exact Cristian–Schmuck token discipline; our two
    # variants have slightly different worst cases (same shape — linear
    # in π and n·δ):
    #
    # - periodic (hold-until-tick, the literal Section 8 reading): a
    #   message can wait a launch for its append pass, a second for its
    #   wrap-around deliveries, and early-ring members learn the
    #   completed counts one further pass later → ≈ 3π + nδ;
    # - work-conserving (leader relaunches while any entry is unsafe):
    #   one launch wait plus at most four back-to-back passes
    #   → ≈ π + 4nδ.
    # ------------------------------------------------------------------
    def d_impl(self, n: int, work_conserving: bool = False) -> float:
        """Worst-case safe latency of this repository's implementation."""
        if work_conserving:
            return self.pi + 4 * n * self.delta
        return 3 * self.pi + n * self.delta
