"""The per-processor membership/token protocol (Section 8).

Each processor runs a :class:`RingMember`.  A view is held together by a
token circulating a logical ring (members in sorted order); the token
carries the view's message order and per-member delivery counts.  View
formation is the 3-round Cristian–Schmuck exchange:

1. an initiator broadcasts a call-for-participation (:class:`NewGroup`)
   carrying a fresh view identifier larger than any it has seen;
2. processors reply with :class:`Accept` unless already committed to a
   higher identifier;
3. after ``2δ`` the initiator fixes the membership as the responders and
   announces it with :class:`Join`; members install the view unless
   committed higher.

Formation triggers: token loss (watchdog timeout), a missing
:class:`Join` after accepting (join watchdog), and contact from outside
the current membership (merge probes, sent every ``μ``).

Failure-status interaction: the network refuses sends from and deliveries
to *bad* processors; every timer callback here additionally checks the
oracle, so a bad processor takes no locally controlled steps — state is
preserved across the bad period exactly as the paper models crashes.

Token install: to tolerate channel reordering (the model bounds delay
but does not order packets), the token carries the view membership, and
a processor that accepted a view but missed the Join installs the view
directly from the first token it sees for it.

Hardening beyond the model (exercised by :mod:`repro.faults`): every
outgoing packet is wrapped in :class:`Sequenced` and duplicates are
suppressed per sender (injected duplication of a token would otherwise
put two live tokens in the ring and fork the view's order); the
membership-round messages can be blindly retransmitted a bounded number
of times with exponential backoff (``RingConfig.retransmit_attempts``);
:meth:`RingMember.restart` implements crash-restart with fresh volatile
state (only the durable epoch/seq counters survive), the rejoin going
through the ordinary merge-probe path; and :meth:`set_timer_skew` lets
a nemesis run one member's timers fast or slow.
"""

from __future__ import annotations

import itertools
from collections.abc import Callable, Hashable
from typing import TYPE_CHECKING, Any, Protocol

from repro.core.types import View
from repro.membership.messages import (
    Accept,
    Join,
    NewGroup,
    Probe,
    RingViewId,
    Sequenced,
    Token,
)
from repro.net.network import Network, NetworkNode
from repro.sim.timers import PeriodicTimer, WatchdogTimer

if TYPE_CHECKING:
    from repro.obs import Observability
    from repro.obs.metrics import Counter, Histogram
    from repro.obs.tracing import LifecycleTracer

ProcId = Hashable

#: How many (sender, seq) pairs a member remembers per peer before
#: pruning; packets at or below the pruned floor are rejected outright.
DEDUP_WINDOW = 1024


class RingConfig:
    """Timing parameters of the protocol.

    ``delta`` must match the network's good-link bound; ``pi`` is the
    token launch spacing (must exceed n·δ); ``mu`` the merge-probe
    spacing.  Derived waits follow the Section 8 sketch: the initiator
    collects accepts for 2δ; a processor that accepted expects the Join
    within 4δ more; the token watchdog allows a launch interval plus a
    full circulation plus slack.
    """

    def __init__(
        self,
        delta: float = 1.0,
        pi: float = 10.0,
        mu: float = 30.0,
        work_conserving: bool = False,
        deliver_when_safe: bool = False,
        one_round: bool = False,
        retransmit_attempts: int = 1,
        retransmit_backoff: float | None = None,
        delta_token: bool = True,
    ) -> None:
        if delta <= 0 or pi <= 0 or mu <= 0:
            raise ValueError("delta, pi and mu must be positive")
        if retransmit_attempts < 1:
            raise ValueError("retransmit_attempts must be at least 1")
        if retransmit_backoff is not None and retransmit_backoff <= 0:
            raise ValueError("retransmit_backoff must be positive")
        self.delta = delta
        self.pi = pi
        self.mu = mu
        #: When True, the leader keeps the token circulating while any
        #: entry is not yet safe at every member, instead of holding it
        #: until the next π tick.  Trades token traffic for latency; the
        #: periodic mode is the literal Section 8 protocol.
        self.work_conserving = work_conserving
        #: Totem/Transis-style "safe delivery" (§1 discussion point 5):
        #: delay gprcv until every member's lower layer has the message
        #: (has seen it on a token pass).  The paper's design (False)
        #: delivers immediately and raises a separate safe notification
        #: later; the ablation benchmark measures the delivery-latency
        #: cost of the alternative.
        self.deliver_when_safe = deliver_when_safe
        #: Footnote 7 of Section 8: the one-round membership protocol.
        #: The initiator skips the call-for-participation round and
        #: announces a view made of the processors it has *recently
        #: heard from* — cheaper, but membership is a guess from stale
        #: connectivity information, so stabilisation after a partition
        #: takes longer (the paper: "this would stabilize less
        #: quickly"), which the ablation benchmark measures.
        self.one_round = one_round
        #: Total transmissions of each membership-round message
        #: (NewGroup / Accept / Join).  1 is the literal Section 8
        #: protocol (the watchdogs alone mask losses); >1 adds bounded
        #: blind retransmission with exponential backoff, which keeps
        #: view formation converging under injected per-packet loss.
        #: Retransmissions stop early once the message is irrelevant
        #: (the formation was superseded or the view replaced).
        self.retransmit_attempts = retransmit_attempts
        self._retransmit_backoff = retransmit_backoff
        #: Delta-encode the circulating token: each forwarder trims the
        #: order window to what its successor has not yet acknowledged
        #: (``token.seen``), so a steady-state hop carries O(appends)
        #: entries instead of the view's whole history.  False restores
        #: the legacy full-order-every-hop encoding (the literal
        #: ``queue[g]``-on-the-token reading of Section 8); both modes
        #: deliver identical sequences.
        self.delta_token = delta_token

    @property
    def alive_window(self) -> float:
        """How recently a processor must have been heard from to count
        as connected in a one-round view announcement."""
        return 1.5 * self.mu

    @property
    def retransmit_backoff(self) -> float:
        """Initial retransmission backoff (doubles per attempt)."""
        if self._retransmit_backoff is not None:
            return self._retransmit_backoff
        return 2 * self.delta

    @property
    def accept_wait(self) -> float:
        return 2 * self.delta

    @property
    def join_wait(self) -> float:
        return 4 * self.delta

    def token_timeout(self, n: int) -> float:
        return self.pi + (n + 3) * self.delta


class RingService(Protocol):
    """What a :class:`RingMember` needs from its host service."""

    network: Network

    def emit_newview(self, view: View, p: ProcId) -> None: ...

    def emit_gprcv(self, payload: Any, src: ProcId, dst: ProcId) -> None: ...

    def emit_safe(self, payload: Any, src: ProcId, dst: ProcId) -> None: ...


class RingMember(NetworkNode):
    """The protocol endpoint for one processor."""

    def __init__(
        self,
        proc_id: ProcId,
        service: RingService,
        config: RingConfig,
        initial_view: View | None,
    ) -> None:
        super().__init__(proc_id)
        self.service = service
        self.config = config
        self._sim = service.network.simulator
        self._oracle = service.network.oracle

        # Membership state.
        self.view: View | None = initial_view
        self.max_epoch: int = initial_view.id[0] if initial_view else 0
        self.committed: RingViewId | None = (
            initial_view.id if initial_view else None
        )
        self._forming_viewid: RingViewId | None = None
        self._forming_accepts: set[ProcId] = set()
        self._forming_deadline = None  # EventHandle

        # Per-view message state.
        self.buffered: list[tuple[RingViewId, Any]] = []
        self.delivered_idx: int = 0
        self.safe_idx: int = 0
        self.held_token: Token | None = None
        #: Local replica of the current view's full message order.  With
        #: delta-encoded tokens each hop carries only a window of the
        #: sequence; the replica is what deliveries read from and what a
        #: forwarder re-expands windows from.  Invariant: after this
        #: member processes a token it is not behind on, ``log`` equals
        #: the full logical order known to that token.
        self.log: list = []

        # Connectivity estimate for the one-round protocol.
        self.last_heard: dict[ProcId, float] = {}

        # Highest view id this processor ever installed.  Survives a
        # crash-restart (together with max_epoch/committed it is the one
        # durable word of "stable storage") so a restarted processor can
        # never re-announce or re-install a view from before its crash —
        # which would break per-location view-id monotonicity.
        self._max_installed: RingViewId | None = (
            initial_view.id if initial_view else None
        )

        # Local clock-rate skew (1.0 = nominal).  Multiplies every
        # one-shot deadline this member arms; the nemesis layer uses it
        # to drive watchdogs early/late.  See :meth:`set_timer_skew`.
        self.timer_skew: float = 1.0

        # Per-sender packet sequencing and duplicate suppression.  The
        # send counter is strictly increasing across the whole run (it
        # deliberately survives restart(): peers remember our old
        # numbers, so reusing them would make our fresh packets look
        # like duplicates).
        self._send_seq = itertools.count(1)
        self._seen_seq: dict[ProcId, set[int]] = {}
        self._seen_floor: dict[ProcId, int] = {}

        # Pending bounded retransmissions (cancellable on restart).
        self._retransmit_handles: list = []

        # Statistics.
        self.formations_initiated = 0
        self.tokens_processed = 0
        self.duplicates_suppressed = 0
        self.retransmissions = 0
        self.restarts = 0
        self.token_forwards = 0
        self.token_entries_sent = 0
        self.token_entries_max = 0
        self.token_resyncs = 0
        # Client-send batching: how many buffered gpsnd payloads each
        # token visit appended (all queued sends ride one circulation).
        self.token_entries_appended = 0
        self.token_append_batches = 0
        self.token_append_max = 0

        # Observability slots (bound by attach_obs; `is None` guarded).
        self._m_tokens: Counter | None = None
        self._m_rotations: Counter | None = None
        self._m_round_hist: Histogram | None = None
        self._m_dedup: Counter | None = None
        self._m_retrans: Counter | None = None
        self._m_formations: Counter | None = None
        self._tracer: LifecycleTracer | None = None
        self._round_started: float | None = None

        # Timers.
        self._watchdog = WatchdogTimer(self._sim, self._on_token_timeout)
        self._join_watchdog = WatchdogTimer(self._sim, self._on_join_timeout)
        self._launch_timer = PeriodicTimer(self._sim, config.pi, self._on_launch_tick)
        self._probe_timer = PeriodicTimer(self._sim, config.mu, self._on_probe_tick)

    # ------------------------------------------------------------------
    def attach_obs(self, obs: Observability | None) -> None:
        """Bind per-processor ring metrics (token flow, round durations,
        dedup, retransmissions, formations) and the lifecycle tracer."""
        if obs is None:
            return
        if obs.metrics is not None:
            metrics = obs.metrics
            proc = str(self.proc_id)
            self._m_tokens = metrics.counter(
                "ring_tokens_processed_total", "token visits per member",
                labels=("proc",),
            ).labels(proc)
            self._m_rotations = metrics.counter(
                "ring_rotations_total",
                "full token circulations observed by the leader",
                labels=("proc",),
            ).labels(proc)
            self._m_round_hist = metrics.histogram(
                "ring_round_duration",
                "virtual-time length of one token circulation",
                labels=("proc",),
            ).labels(proc)
            self._m_dedup = metrics.counter(
                "ring_duplicates_suppressed_total",
                "packets rejected by per-sender dedup",
                labels=("proc",),
            ).labels(proc)
            self._m_retrans = metrics.counter(
                "ring_retransmissions_total",
                "blind retransmissions actually sent",
                labels=("proc",),
            ).labels(proc)
            self._m_formations = metrics.counter(
                "ring_formations_initiated_total",
                "view formations this member started",
                labels=("proc",),
            ).labels(proc)
        self._tracer = obs.tracer

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Arm timers; the initial leader creates the first token."""
        self._probe_timer.start()
        if self.view is None:
            return
        if self.is_leader:
            self.held_token = Token(
                viewid=self.view.id,
                members=self._ring_order(),
            )
            self._launch_timer.start()
            self._sim.call_soon(self._on_launch_tick)
        else:
            self._arm_watchdog()

    @property
    def is_leader(self) -> bool:
        return self.view is not None and self._ring_order()[0] == self.proc_id

    def _ring_order(self) -> tuple[ProcId, ...]:
        assert self.view is not None
        return tuple(sorted(self.view.set))

    def _successor(self) -> ProcId:
        ring = self._ring_order()
        index = ring.index(self.proc_id)
        return ring[(index + 1) % len(ring)]

    def _alive(self) -> bool:
        """Bad processors take no locally controlled steps."""
        return not self._oracle.processor_bad(self.proc_id)

    # ------------------------------------------------------------------
    # Hardened transport: sequencing, dedup, bounded retransmission
    # ------------------------------------------------------------------
    def _send(self, dst: ProcId, body: Any) -> None:
        """Unicast a protocol message stamped with a fresh packet seq."""
        self.service.network.send(
            self.proc_id, dst, Sequenced(next(self._send_seq), body)
        )

    def _broadcast(self, body: Any) -> None:
        """Broadcast a protocol message under one fresh packet seq (each
        destination sees the seq once, so per-sender dedup still works)."""
        self.service.network.broadcast(
            self.proc_id, Sequenced(next(self._send_seq), body)
        )

    def _schedule_retransmits(
        self, transmit: Callable[[], None], relevant: Callable[[], bool]
    ) -> None:
        """Schedule the configured extra transmissions with exponential
        backoff; each fires only while the message is still relevant."""
        attempts = self.config.retransmit_attempts
        if attempts <= 1:
            return
        now = self._sim.now
        self._retransmit_handles = [
            h for h in self._retransmit_handles if h.time > now
        ]

        def fire() -> None:
            if self._alive() and relevant():
                self.retransmissions += 1
                if self._m_retrans is not None:
                    self._m_retrans.inc()
                transmit()

        offset = 0.0
        backoff = self.config.retransmit_backoff
        for _ in range(attempts - 1):
            offset += backoff
            self._retransmit_handles.append(
                self._sim.schedule(self.timer_skew * offset, fire)
            )
            backoff *= 2

    def _send_reliable(
        self, dst: ProcId, body: Any, relevant: Callable[[], bool]
    ) -> None:
        self._send(dst, body)
        self._schedule_retransmits(lambda: self._send(dst, body), relevant)

    def _broadcast_reliable(
        self, body: Any, relevant: Callable[[], bool]
    ) -> None:
        self._broadcast(body)
        self._schedule_retransmits(lambda: self._broadcast(body), relevant)

    def _accept_packet(self, src: ProcId, seq: int) -> bool:
        """Record (src, seq); False when it is a duplicate (or below the
        pruned floor, where we can no longer tell and reject for safety
        — any packet delayed past DEDUP_WINDOW successors is stale)."""
        if seq <= self._seen_floor.get(src, 0):
            return False
        seen = self._seen_seq.setdefault(src, set())
        if seq in seen:
            return False
        seen.add(seq)
        if len(seen) > 2 * DEDUP_WINDOW:
            floor = max(seen) - DEDUP_WINDOW
            self._seen_floor[src] = max(self._seen_floor.get(src, 0), floor)
            self._seen_seq[src] = {s for s in seen if s > floor}
        return True

    # ------------------------------------------------------------------
    # Fault-injection hooks (timer skew, crash-restart)
    # ------------------------------------------------------------------
    def set_timer_skew(self, factor: float) -> None:
        """Run this member's local timers at ``factor`` times nominal
        duration (>1 = slow clock: deadlines late; <1 = fast clock:
        watchdogs fire early and force spurious formations)."""
        if factor <= 0:
            raise ValueError("timer skew factor must be positive")
        self.timer_skew = factor
        self._launch_timer.period = self.config.pi * factor
        self._probe_timer.period = self.config.mu * factor

    def restart(self) -> None:
        """Crash-restart: come back with fresh protocol state.

        Everything volatile is reset — current view, buffered and
        delivered message state, the held token, connectivity estimates,
        dedup memory, pending retransmissions and armed deadlines.  Only
        the epoch knowledge (``max_epoch``/``committed``/highest
        installed view id) and the packet send counter survive, the two
        durable counters a real implementation would keep in stable
        storage; without them a restarted processor could announce a
        view id below one it already used, violating per-location view
        monotonicity.  The restarted processor rejoins through the
        normal merge path: it holds no view, so its probes (and the
        probes of others) trigger a formation that includes it.
        """
        self.restarts += 1
        self._cancel_formation()
        for handle in self._retransmit_handles:
            handle.cancel()
        self._retransmit_handles = []
        self._watchdog.disarm()
        self._join_watchdog.disarm()
        self._launch_timer.stop()
        self.view = None
        self.buffered = []
        self.delivered_idx = 0
        self.safe_idx = 0
        self.held_token = None
        self.log = []
        self.last_heard = {}
        self._seen_seq = {}
        self._seen_floor = {}
        if not self._probe_timer.running:
            self._probe_timer.start()

    # ------------------------------------------------------------------
    # Optional instrumentation (the WeakVS shadow machine listens here;
    # see repro.membership.shadow)
    # ------------------------------------------------------------------
    def _notify_createview(
        self, viewid: RingViewId, members: tuple[ProcId, ...]
    ) -> None:
        if self._tracer is not None:
            self._tracer.on_createview(self._sim.now, viewid, members)
        hook = getattr(self.service, "notify_createview", None)
        if hook is not None:
            hook(View(viewid, frozenset(members)))

    def _notify_order(self, payload: Any, viewid: RingViewId) -> None:
        hook = getattr(self.service, "notify_order", None)
        if hook is not None:
            hook(payload, self.proc_id, viewid)

    # ------------------------------------------------------------------
    # Client interface
    # ------------------------------------------------------------------
    def gpsnd(self, payload: Any) -> None:
        """Submit a client message; associated with the current view.
        Messages sent with no current view are ignored (never delivered),
        exactly as in VS-machine."""
        if self.view is None:
            return
        self.buffered.append((self.view.id, payload))
        if (
            self.config.work_conserving
            and self.held_token is not None
            and self._alive()
        ):
            # Wake the circulation immediately instead of waiting for
            # the next π tick.
            self._sim.call_soon(self._on_launch_tick)

    # ------------------------------------------------------------------
    # Message dispatch
    # ------------------------------------------------------------------
    def on_message(self, src: ProcId, message: Any) -> None:
        if isinstance(message, Sequenced):
            if not self._accept_packet(src, message.seq):
                self.duplicates_suppressed += 1
                if self._m_dedup is not None:
                    self._m_dedup.inc()
                return
            message = message.body
        self.last_heard[src] = self._sim.now
        if isinstance(message, NewGroup):
            self._on_newgroup(message)
        elif isinstance(message, Accept):
            self._on_accept(message)
        elif isinstance(message, Join):
            self._on_join(message)
        elif isinstance(message, Token):
            self._on_token(message)
        elif isinstance(message, Probe):
            self._on_probe(message)

    # ------------------------------------------------------------------
    # View formation
    # ------------------------------------------------------------------
    def initiate_formation(self) -> None:
        """Start formation: round 1 of the 3-round protocol, or the
        direct announcement of the one-round variant (footnote 7)."""
        if not self._alive():
            return
        if self._forming_viewid is not None:
            return
        self.max_epoch += 1
        viewid: RingViewId = (self.max_epoch, self.proc_id)
        self.committed = viewid
        self.formations_initiated += 1
        if self._m_formations is not None:
            self._m_formations.inc()
        if self._tracer is not None:
            self._tracer.on_formation(self._sim.now, viewid, self.proc_id)
        self._join_watchdog.disarm()
        if self.config.one_round:
            members = self._connectivity_estimate()
            self._notify_createview(viewid, members)
            join = Join(viewid=viewid, members=members)
            for member in members:
                if member != self.proc_id:
                    self._send_reliable(
                        member,
                        join,
                        lambda: self.view is not None
                        and self.view.id == viewid,
                    )
            self._install(viewid, members)
            return
        self._forming_viewid = viewid
        self._forming_accepts = {self.proc_id}
        self._broadcast_reliable(
            NewGroup(viewid=viewid, initiator=self.proc_id),
            lambda: self._forming_viewid == viewid,
        )
        self._forming_deadline = self._sim.schedule(
            self.timer_skew * self.config.accept_wait,
            self._on_formation_deadline,
        )

    def _connectivity_estimate(self) -> tuple[ProcId, ...]:
        """Who the one-round initiator believes is connected: everyone
        heard from within the alive window (stale by construction)."""
        now = self._sim.now
        alive = {
            p
            for p, heard_at in self.last_heard.items()
            if now - heard_at <= self.config.alive_window
        }
        alive.add(self.proc_id)
        return tuple(sorted(alive))

    def _on_newgroup(self, message: NewGroup) -> None:
        self.max_epoch = max(self.max_epoch, message.viewid[0])
        if self.committed is not None and message.viewid <= self.committed:
            return
        self.committed = message.viewid
        # A higher call supersedes our own in-progress formation.
        if (
            self._forming_viewid is not None
            and self._forming_viewid < message.viewid
        ):
            self._cancel_formation()
        if message.initiator == self.proc_id:
            return
        viewid = message.viewid
        self._send_reliable(
            message.initiator,
            Accept(viewid=viewid, member=self.proc_id),
            lambda: self.committed == viewid,
        )
        self._join_watchdog.arm(self.timer_skew * self.config.join_wait)

    def _on_accept(self, message: Accept) -> None:
        if self._forming_viewid == message.viewid:
            self._forming_accepts.add(message.member)

    def _on_formation_deadline(self) -> None:
        if not self._alive():
            self._cancel_formation()
            return
        viewid = self._forming_viewid
        if viewid is None:
            return
        members = tuple(sorted(self._forming_accepts))
        self._cancel_formation()
        if self.committed is not None and self.committed > viewid:
            return  # superseded while collecting
        self._notify_createview(viewid, members)
        join = Join(viewid=viewid, members=members)
        for member in members:
            if member != self.proc_id:
                self._send_reliable(
                    member,
                    join,
                    lambda: self.view is not None and self.view.id == viewid,
                )
        self._install(viewid, members)

    def _cancel_formation(self) -> None:
        self._forming_viewid = None
        self._forming_accepts = set()
        if self._forming_deadline is not None:
            self._forming_deadline.cancel()
            self._forming_deadline = None

    def _on_join(self, message: Join) -> None:
        self.max_epoch = max(self.max_epoch, message.viewid[0])
        if self.proc_id not in message.members:
            return
        if self.committed is not None and message.viewid < self.committed:
            return
        if self.view is not None and message.viewid <= self.view.id:
            return
        self._install(message.viewid, message.members)

    def _install(self, viewid: RingViewId, members: tuple[ProcId, ...]) -> None:
        """Install a new view: reset per-view state, announce newview,
        and (as leader) launch the first token."""
        # Local monotonicity: never go backwards.  The high-water mark
        # (not self.view, which a restart clears) is what prevents a
        # restarted processor from re-installing its pre-crash view from
        # a stale in-flight Join or token.
        if self._max_installed is not None and viewid <= self._max_installed:
            return
        self._max_installed = viewid
        # Every install is epoch knowledge — without this, a member that
        # learned a view only from the token (missed Join) could later
        # initiate with a stale epoch and announce a *lower* view id.
        self.max_epoch = max(self.max_epoch, viewid[0])
        self._join_watchdog.disarm()
        self.view = View(viewid, frozenset(members))
        self.committed = max(self.committed, viewid) if self.committed else viewid
        self.buffered = [
            entry for entry in self.buffered if entry[0] == viewid
        ]
        self.delivered_idx = 0
        self.safe_idx = 0
        self.held_token = None
        self.log = []
        self.service.emit_newview(self.view, self.proc_id)
        self._launch_timer.stop()
        if self.is_leader:
            self.held_token = Token(viewid=viewid, members=self._ring_order())
            self._launch_timer.start()
            self._sim.call_soon(self._on_launch_tick)
        else:
            self._arm_watchdog()

    # ------------------------------------------------------------------
    # Token circulation
    # ------------------------------------------------------------------
    def _arm_watchdog(self) -> None:
        if self.view is not None:
            self._watchdog.arm(
                self.timer_skew * self.config.token_timeout(len(self.view.set))
            )

    def _on_token(self, token: Token) -> None:
        if self.view is None or token.viewid != self.view.id:
            # Maybe the Join was lost/overtaken: install from the token.
            if (
                self.proc_id in token.members
                and (self.view is None or token.viewid > self.view.id)
                and (self.committed is None or token.viewid >= self.committed)
            ):
                self._install(token.viewid, token.members)
            else:
                return  # stale token dies here
        if self.view is None or token.viewid != self.view.id:
            return
        self._arm_watchdog()
        self._process_token(token)
        if self.is_leader:
            # The token is home: one full circulation completed.
            if self._m_rotations is not None:
                self._m_rotations.inc()
                if self._round_started is not None:
                    self._m_round_hist.observe(
                        self._sim.now - self._round_started
                    )
            if self.config.work_conserving and self._token_has_work(token):
                self._round_started = self._sim.now
                self._forward(token)
            else:
                # The token is home; hold it until the next launch tick.
                self._round_started = None
                self.held_token = token
        else:
            self._forward(token)

    def _on_launch_tick(self) -> None:
        if not self._alive():
            return
        if self.held_token is None or self.view is None:
            return
        if self.held_token.viewid != self.view.id:
            self.held_token = None
            return
        token = self.held_token
        self.held_token = None
        token.trail = []  # fresh liveness trail for this circulation
        self._arm_watchdog()
        self._process_token(token)
        if len(token.members) == 1:
            self.held_token = token  # singleton ring: token never leaves
        else:
            self._round_started = self._sim.now
            self._forward(token)

    def _process_token(self, token: Token) -> None:
        """Deliver new entries, append buffered sends, update counts and
        emit safe notifications.

        The token carries a *window* of the view's order starting at
        logical position ``token.base``; this member's ``log`` replica
        holds the prefix it has already absorbed.  Normally (and always
        with legacy full-copy tokens, where base is 0) the window
        overlaps the log, the log is extended with the new suffix and
        this member's buffered sends are appended to both.  When the
        window starts *beyond* the log — possible only for a member
        whose acknowledged position the trimmer did not know, e.g. after
        white-box state surgery; honest circulations always trim to the
        recipient's own ``seen`` entry — the member cannot interpret the
        window: it re-advertises its true position in ``token.seen`` and
        takes nothing, and the next circulation re-expands from there (a
        full-order resync for this member).
        """
        self.tokens_processed += 1
        if self._m_tokens is not None:
            self._m_tokens.inc()
        assert self.view is not None
        viewid = self.view.id
        # The trail is fresh liveness evidence for everyone it names.
        now = self._sim.now
        for member in token.trail:
            if member != self.proc_id:
                self.last_heard[member] = now
        token.trail.append(self.proc_id)
        if token.base > len(self.log):
            # Behind the window: request resync by advertising the true
            # position; no appends, no new deliveries this pass.
            self.token_resyncs += 1
        else:
            start = len(self.log) - token.base
            if start < len(token.order):
                self.log.extend(token.order[start:])
            if len(self.log) == token.total:
                # Fully caught up: append this member's buffered
                # messages for the current view — the concrete
                # counterpart of VS-machine's internal vs-order.
                appended = 0
                for entry_viewid, payload in self.buffered:
                    if entry_viewid == viewid:
                        entry = (payload, self.proc_id)
                        token.order.append(entry)
                        self.log.append(entry)
                        self._notify_order(payload, viewid)
                        appended += 1
                if appended:
                    # One token pass drains the whole buffer: every
                    # client send queued since the last visit rides this
                    # single circulation.
                    self.token_entries_appended += appended
                    self.token_append_batches += 1
                    if appended > self.token_append_max:
                        self.token_append_max = appended
                self.buffered = [e for e in self.buffered if e[0] != viewid]
        token.seen[self.proc_id] = len(self.log)
        if self.config.deliver_when_safe:
            # Totem-style: deliver only entries every member has seen.
            deliverable = token.seen_prefix_length(token.members)
        else:
            deliverable = token.total
        deliverable = min(deliverable, len(self.log))
        for payload, origin in self.log[self.delivered_idx : deliverable]:
            self.service.emit_gprcv(payload, origin, self.proc_id)
        self.delivered_idx = max(self.delivered_idx, deliverable)
        token.delivered[self.proc_id] = self.delivered_idx
        # Safe notifications for the prefix every member has delivered.
        safe_upto = min(token.safe_prefix_length(token.members), len(self.log))
        for payload, origin in self.log[self.safe_idx : safe_upto]:
            self.service.emit_safe(payload, origin, self.proc_id)
        self.safe_idx = max(self.safe_idx, safe_upto)
        token.safed[self.proc_id] = self.safe_idx
        token.hop += 1

    def _token_has_work(self, token: Token) -> bool:
        """Work-conserving mode: is any entry not yet known safe at
        every member?  While true the leader relaunches immediately."""
        total = token.total
        if total == 0:
            return False
        if token.safe_prefix_length(token.members) < total:
            return True
        return any(token.safed.get(m, 0) < total for m in token.members)

    def _forward(self, token: Token) -> None:
        successor = self._successor()
        if successor == self.proc_id:
            self.held_token = token
            return
        self._send(successor, self._encode_for(successor, token))

    def _encode_for(self, successor: ProcId, token: Token) -> Token:
        """The successor's copy of the token.  With delta encoding a
        caught-up forwarder re-expands the window from its own log,
        starting at the successor's acknowledged position — O(appends)
        per hop in the steady state instead of O(order).  A forwarder
        that is itself behind (so its log cannot produce arbitrary
        suffixes) passes the window through unchanged, as does legacy
        mode."""
        out = token.copy()
        if self.config.delta_token and len(self.log) == token.total:
            ack = min(max(token.seen.get(successor, 0), 0), len(self.log))
            out.base = ack
            out.order = list(self.log[ack:])
        self.token_forwards += 1
        self.token_entries_sent += len(out.order)
        if len(out.order) > self.token_entries_max:
            self.token_entries_max = len(out.order)
        return out

    def _on_token_timeout(self) -> None:
        if not self._alive():
            # Stay vigilant: check again after recovery instead of
            # silently never noticing the lost token.
            self._arm_watchdog()
            return
        if self.view is None:
            return
        self.initiate_formation()

    def _on_join_timeout(self) -> None:
        if not self._alive():
            self._join_watchdog.arm(self.timer_skew * self.config.join_wait)
            return
        self.initiate_formation()

    # ------------------------------------------------------------------
    # Merge probing
    # ------------------------------------------------------------------
    def _on_probe_tick(self) -> None:
        if not self._alive():
            return
        members = self.view.set if self.view is not None else frozenset()
        viewid = self.view.id if self.view is not None else (0, self.proc_id)
        for target in self.service.network.processors:
            if target == self.proc_id or target in members:
                continue
            self._send(target, Probe(sender=self.proc_id, viewid=viewid))

    def _on_probe(self, message: Probe) -> None:
        # Outside contact: the prober is not in our view, or it is a
        # nominal member running a *different* view (a stale survivor
        # that missed our reconfigurations, or vice versa).
        same_view = (
            self.view is not None
            and message.sender in self.view.set
            and message.viewid == self.view.id
        )
        if same_view:
            return
        if self._forming_viewid is not None or self._join_watchdog.armed:
            return  # a formation that can include the prober is in flight
        self.initiate_formation()
