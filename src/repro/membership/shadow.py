"""The Section 8 implementation proof, made executable.

The paper sketches the ring's correctness as a forward simulation to
*WeakVS-machine*: the event where an initiator fixes a view's
membership maps to ``createview``, appending a buffered message to the
token maps to ``vs-order``, and the interface events map to themselves;
WeakVS-machine then implements VS-machine by reordering createviews.

:class:`WeakVSShadow` runs that simulation live.  Attached to a
:class:`~repro.membership.service.TokenRingVS`, it drives a real
:class:`~repro.core.vs_spec.WeakVSMachine` with the abstract action
corresponding to every concrete protocol event; an illegal abstract
step (a :class:`~repro.ioa.automaton.TransitionError`) falsifies the
simulation on the spot.  Combined with
:func:`~repro.core.vs_spec.reorder_weak_execution` and a replay on the
strict VS-machine, the whole Section 8 argument —

    ring execution  →  WeakVS execution  →  VS execution

— is checked mechanically on every run (see
``tests/membership/test_shadow.py``).
"""

from __future__ import annotations

from collections.abc import Hashable
from typing import TYPE_CHECKING, Any

from repro.core.types import View
from repro.core.vs_spec import VSMachine, WeakVSMachine
from repro.ioa.actions import Action, act

if TYPE_CHECKING:
    from repro.membership.service import TokenRingVS

ProcId = Hashable


class WeakVSShadow:
    """A live WeakVS-machine shadowing a token-ring service."""

    def __init__(self, service: TokenRingVS) -> None:
        self.service = service
        self.machine = WeakVSMachine(
            service.processors,
            initial_members=service.initial_view.set,
            g0=service.initial_view.id,
        )
        #: the abstract execution, including internal actions
        self.actions: list[Action] = []
        self.steps_simulated = 0
        self._attach(service)

    # ------------------------------------------------------------------
    def _step(self, action: Action) -> None:
        self.machine.step(action)  # raises TransitionError if illegal
        self.actions.append(action)
        self.steps_simulated += 1

    # ``Any`` here for the same reason as OnlineVSMonitor.attach: the
    # wrappers deliberately shadow bound methods on the instance.
    def _attach(self, service: Any) -> None:
        service.notify_createview = self._on_createview
        service.notify_order = self._on_order
        old_gprcv = service.on_gprcv
        old_safe = service.on_safe
        old_newview = service.on_newview

        def gprcv(payload: Any, src: ProcId, dst: ProcId) -> None:
            self._step(act("gprcv", payload, src, dst))
            if old_gprcv:
                old_gprcv(payload, src, dst)

        def safe(payload: Any, src: ProcId, dst: ProcId) -> None:
            self._step(act("safe", payload, src, dst))
            if old_safe:
                old_safe(payload, src, dst)

        def newview(view: View, p: ProcId) -> None:
            self._step(act("newview", view, p))
            if old_newview:
                old_newview(view, p)

        service.on_gprcv = gprcv
        service.on_safe = safe
        service.on_newview = newview

        original_gpsnd = service.gpsnd

        def gpsnd(p: ProcId, payload: Any) -> None:
            self._step(act("gpsnd", payload, p))
            original_gpsnd(p, payload)

        service.gpsnd = gpsnd

    # ------------------------------------------------------------------
    def _on_createview(self, view: View) -> None:
        self._step(act("createview", view))

    def _on_order(self, payload: Any, p: ProcId, viewid: Any) -> None:
        self._step(act("vs-order", payload, p, viewid))

    # ------------------------------------------------------------------
    def replay_on_strict_machine(self) -> VSMachine:
        """Close the Section 8 argument: reorder this shadow execution's
        createviews and replay it verbatim on a strict VS-machine.
        Raises on any illegal step; returns the final machine."""
        from repro.core.vs_spec import reorder_weak_execution

        reordered = reorder_weak_execution(self.actions)
        machine = VSMachine(
            self.service.processors,
            initial_members=self.service.initial_view.set,
            g0=self.service.initial_view.id,
        )
        for action in reordered:
            machine.step(action)
        return machine
