"""Sequentially consistent replicated memory (the paper's footnote 3).

Each processor keeps a full replica.  A read returns the local copy
immediately; a write is sent through the totally ordered broadcast
service and applied at every replica (including the writer's) when
delivered — the classic replicated-state-machine construction, whose
sequential consistency follows from the TO ordering guarantees.

:func:`check_sequential_consistency` is an executable checker for the
histories this implementation produces: it verifies that a legal serial
order exists by replaying each processor's reads against the global
write order at the position the read actually observed.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Hashable, Iterable
from typing import Any

from repro.apps.totalorder import TotalOrderBroadcast

ProcId = Hashable


@dataclass(frozen=True)
class MemoryOp:
    """One completed operation in a processor's local history.

    ``kind`` is "read" or "write"; ``applied_writes`` records how many
    globally ordered writes the replica had applied when the operation
    took effect locally — the hook the consistency checker uses.
    """

    time: float
    proc: ProcId
    kind: str
    key: Any
    value: Any
    applied_writes: int


class SequentiallyConsistentMemory:
    """A replicated key→value memory over a TO broadcast service.

    Writes complete asynchronously (the ack arrives when the write is
    delivered back at its origin); reads are local and immediate.
    """

    def __init__(self, tob: TotalOrderBroadcast) -> None:
        self.tob = tob
        tob.runtime.on_deliver = self._apply
        self.replicas: dict[ProcId, dict[Any, Any]] = {
            p: {} for p in tob.processors
        }
        self.applied_count: dict[ProcId, int] = {p: 0 for p in tob.processors}
        #: global write order as applied (identical prefix everywhere)
        self.global_writes: list[tuple[Any, Any, ProcId]] = []
        self.history: dict[ProcId, list[MemoryOp]] = {
            p: [] for p in tob.processors
        }
        self.pending_writes: dict[ProcId, int] = {p: 0 for p in tob.processors}

    # ------------------------------------------------------------------
    def read(self, p: ProcId, key: Any) -> Any:
        """Immediate local read at p."""
        value = self.replicas[p].get(key)
        self.history[p].append(
            MemoryOp(
                time=self.tob.now,
                proc=p,
                kind="read",
                key=key,
                value=value,
                applied_writes=self.applied_count[p],
            )
        )
        return value

    def write(self, p: ProcId, key: Any, value: Any) -> None:
        """Submit a write at p; applied at every replica on delivery."""
        self.pending_writes[p] += 1
        self.tob.broadcast(p, ("write", key, value))

    def schedule_read(self, time: float, p: ProcId, key: Any) -> None:
        self.tob.vs.simulator.schedule_at(time, lambda: self.read(p, key))

    def schedule_write(self, time: float, p: ProcId, key: Any, value: Any) -> None:
        self.tob.vs.simulator.schedule_at(
            time, lambda: self.write(p, key, value)
        )

    def run_until(self, time: float) -> None:
        self.tob.run_until(time)

    # ------------------------------------------------------------------
    def _apply(self, payload: Any, origin: ProcId, dst: ProcId) -> None:
        kind, key, value = payload
        if kind != "write":
            return
        self.replicas[dst][key] = value
        self.applied_count[dst] += 1
        if dst == origin:
            self.pending_writes[origin] -= 1
        self.history[dst].append(
            MemoryOp(
                time=self.tob.now,
                proc=dst,
                kind="write",
                key=key,
                value=value,
                applied_writes=self.applied_count[dst],
            )
        )
        if dst == min(self.tob.processors, key=str):
            # One designated replica records the global order (all
            # replicas apply the same sequence; using one avoids dups).
            self.global_writes.append((key, value, origin))


def check_sequential_consistency(
    memory: SequentiallyConsistentMemory,
    processors: Iterable[ProcId] | None = None,
) -> tuple[bool, str]:
    """Verify the recorded histories are sequentially consistent.

    Strategy: all replicas applied the same global write sequence (a
    prefix each).  Serialise each read at the point after the writes its
    replica had applied when it executed; a history is sequentially
    consistent if every read returns the value of the latest earlier
    write to its key in that serial order (or None when there is none),
    and each processor's operations appear in program order — which the
    construction guarantees since ``applied_writes`` is monotone within
    one processor's history.
    """
    processors = (
        tuple(processors) if processors is not None else memory.tob.processors
    )
    writes = memory.global_writes
    for p in processors:
        last_position = -1
        for op in memory.history[p]:
            if op.applied_writes < 0 or op.applied_writes > len(writes):
                return False, f"replica {p!r} applied more writes than exist"
            if op.applied_writes < last_position:
                return (
                    False,
                    f"program order violated at {p!r}: applied count went "
                    f"backwards",
                )
            last_position = op.applied_writes
            if op.kind != "read":
                continue
            expected = None
            for key, value, _origin in writes[: op.applied_writes]:
                if key == op.key:
                    expected = value
            if op.value != expected:
                return (
                    False,
                    f"read of {op.key!r} at {p!r} returned {op.value!r}, "
                    f"serial order implies {expected!r}",
                )
    return True, ""
