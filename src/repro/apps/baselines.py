"""Baseline: stable-storage-first ordered broadcast (Keidar–Dolev style).

Section 1 discusses the design space: "In the work of Dolev and Keidar
the message is written to stable storage before it is ordered or
acknowledged, thus their solution trades latency for fault-tolerance."
This module implements that discipline over the same substrate so the
trade-off can be measured (experiment E8):

- a submitted value is first written to simulated stable storage
  (latency ``storage_latency``) at its origin before entering the TO
  pipeline;
- each replica likewise logs a delivered value for ``storage_latency``
  before passing it to the client.

Against this baseline, the paper's VStoTO (which keeps state in memory
across view changes, modelling crashes as delays without state loss)
saves two storage writes per message on the critical path.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Hashable, Iterable
from typing import Any

from repro.apps.totalorder import TotalOrderBroadcast
from repro.core.quorums import QuorumSystem
from repro.membership.ring import RingConfig

ProcId = Hashable


@dataclass(frozen=True)
class LoggedDelivery:
    """A client delivery after the replica's stable-storage write."""

    time: float
    value: Any
    origin: ProcId
    dst: ProcId


class StableStorageBroadcast:
    """Totally ordered broadcast with write-ahead stable storage.

    The API mirrors :class:`TotalOrderBroadcast`; ``delivered`` reports
    values only after the post-delivery log write completes, and
    ``broadcast`` inserts the pre-submission log write.
    """

    def __init__(
        self,
        processors: Iterable[ProcId],
        storage_latency: float = 5.0,
        config: RingConfig | None = None,
        quorums: QuorumSystem | None = None,
        seed: int = 0,
    ) -> None:
        if storage_latency < 0:
            raise ValueError("storage latency must be nonnegative")
        self.storage_latency = storage_latency
        self.tob = TotalOrderBroadcast(
            processors, config=config, quorums=quorums, seed=seed
        )
        self.tob.runtime.on_deliver = self._on_deliver
        self.logged_deliveries: list[LoggedDelivery] = []
        self.storage_writes = 0

    # ------------------------------------------------------------------
    @property
    def processors(self) -> tuple[ProcId, ...]:
        return self.tob.processors

    @property
    def now(self) -> float:
        return self.tob.now

    def broadcast(self, p: ProcId, value: Any) -> None:
        """Log to stable storage, then submit to the TO pipeline."""
        self.storage_writes += 1
        self.tob.vs.simulator.schedule(
            self.storage_latency, lambda: self.tob.broadcast(p, value)
        )

    def schedule_broadcast(self, time: float, p: ProcId, value: Any) -> None:
        self.tob.vs.simulator.schedule_at(
            time, lambda: self.broadcast(p, value)
        )

    def run_until(self, time: float) -> None:
        self.tob.run_until(time)

    # ------------------------------------------------------------------
    def _on_deliver(self, value: Any, origin: ProcId, dst: ProcId) -> None:
        self.storage_writes += 1
        self.tob.vs.simulator.schedule(
            self.storage_latency,
            lambda: self.logged_deliveries.append(
                LoggedDelivery(
                    time=self.now, value=value, origin=origin, dst=dst
                )
            ),
        )

    def delivered(self, p: ProcId) -> list[Any]:
        """Values whose post-delivery log write has completed at p."""
        return [d.value for d in self.logged_deliveries if d.dst == p]
