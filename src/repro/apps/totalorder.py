"""The user-facing totally ordered broadcast service.

:class:`TotalOrderBroadcast` assembles the full stack of Figure 1: a
token-ring VS layer (Section 8) under a VStoTO process per location
(Section 5), and exposes exactly the TO interface of Section 3 —
``broadcast`` in, per-location delivery callbacks out — plus the
simulation controls (scenario installation, virtual-time stepping) and
the timed traces the property checkers consume.

This is the "building block" the paper argues for: a client needs only
this class and the TO specification to reason about its application.
"""

from __future__ import annotations

from collections.abc import Callable, Hashable, Iterable
from typing import Any

from repro.core.quorums import MajorityQuorumSystem, QuorumSystem
from repro.core.vstoto.runtime import Delivery, VStoTORuntime
from repro.ioa.timed import TimedTrace
from repro.membership.ring import RingConfig
from repro.membership.service import TokenRingVS
from repro.net.scenarios import PartitionScenario

ProcId = Hashable
DeliverCallback = Callable[[Any, ProcId, ProcId], None]


class TotalOrderBroadcast:
    """Totally ordered broadcast among a fixed set of processors.

    Example
    -------
    ::

        tob = TotalOrderBroadcast([1, 2, 3], seed=7)
        tob.schedule_broadcast(5.0, 1, "hello")
        tob.run_until(100.0)
        assert tob.delivered(2) == tob.delivered(3)

    Parameters
    ----------
    processors:
        Processor identifiers (mutually orderable).
    config:
        Ring timing parameters; defaults to δ=1, π=10, μ=30,
        work-conserving circulation.
    quorums:
        Quorum system for primary views; defaults to majorities of P.
    seed:
        Master randomness seed (channel delays etc.).
    """

    def __init__(
        self,
        processors: Iterable[ProcId],
        config: RingConfig | None = None,
        quorums: QuorumSystem | None = None,
        seed: int = 0,
        on_deliver: DeliverCallback | None = None,
    ) -> None:
        self.processors = tuple(processors)
        self.config = (
            config
            if config is not None
            else RingConfig(delta=1.0, pi=10.0, mu=30.0, work_conserving=True)
        )
        self.quorums = (
            quorums
            if quorums is not None
            else MajorityQuorumSystem(self.processors)
        )
        self.vs = TokenRingVS(self.processors, self.config, seed=seed)
        self.runtime = VStoTORuntime(self.vs, self.quorums, on_deliver=on_deliver)

    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        return self.vs.simulator.now

    def broadcast(self, p: ProcId, value: Any) -> None:
        """Submit ``value`` at location p (TO's ``bcast`` input).

        Values must be hashable (they travel inside content sets and
        summaries); unhashable payloads are rejected here with a clear
        error instead of failing deep inside the protocol.
        """
        if p not in self.processors:
            raise KeyError(f"unknown processor {p!r}")
        try:
            hash(value)
        except TypeError as exc:
            raise TypeError(
                f"broadcast values must be hashable, got {type(value).__name__}"
            ) from exc
        self.runtime.broadcast(p, value)

    def schedule_broadcast(self, time: float, p: ProcId, value: Any) -> None:
        """Submit at an absolute virtual time."""
        self.runtime.schedule_broadcast(time, p, value)

    def run_until(self, time: float) -> None:
        """Advance virtual time (starting the service on first call)."""
        self.runtime.start()
        self.runtime.run_until(time)

    def install_scenario(self, scenario: PartitionScenario) -> None:
        """Script partitions/merges/failures over virtual time."""
        self.vs.install_scenario(scenario)

    # ------------------------------------------------------------------
    def delivered(self, p: ProcId) -> list[Any]:
        """Values delivered to the client at p, in delivery order."""
        return self.runtime.delivered_values(p)

    @property
    def deliveries(self) -> list[Delivery]:
        return self.runtime.deliveries

    def to_trace(self) -> TimedTrace:
        """The TO-level timed trace plus failure-status events."""
        return self.runtime.merged_trace()

    def vs_trace(self) -> TimedTrace:
        """The VS-level timed trace plus failure-status events."""
        return self.vs.merged_trace()

    def stats(self) -> dict[str, Any]:
        stats = self.vs.stats()
        stats["deliveries"] = len(self.runtime.deliveries)
        return stats
