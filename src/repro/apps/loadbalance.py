"""View-aware load balancing — the style of application the paper cites
as built on this VS specification (Fekete–Khazan–Lynch, "Group
Communication as a base for a Load-Balancing, Replicated Data Service",
DISC 1998; reference [27]).

Tasks are announced through the group service; ownership is a pure
function of (task, current view): the member at position
``hash(task) mod |view|`` of the sorted membership owns it.  An owner
*executes* a task only once the announcement is **safe** — every member
of the view has seen it, so no two members of one view can disagree
about the assignment — and then announces the completion.

On a view change, ownership is recomputed over the new membership, so
tasks owned by departed members are automatically re-owned by survivors
(at-least-once execution: concurrent partition sides may both execute a
task; a stable group executes each task exactly once, which the tests
assert).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from collections.abc import Hashable
from typing import Any

from repro.core.types import View
from repro.membership.service import TokenRingVS

ProcId = Hashable


def owner_of(task_id: str, view: View) -> ProcId:
    """The deterministic owner of ``task_id`` in ``view``."""
    members = sorted(view.set)
    digest = hashlib.sha256(task_id.encode()).digest()
    return members[int.from_bytes(digest[:4], "big") % len(members)]


@dataclass
class TaskRecord:
    """Per-member knowledge about one task."""

    task_id: str
    payload: Any
    safe: bool = False
    completed_by: list = field(default_factory=list)

    @property
    def completed(self) -> bool:
        return bool(self.completed_by)


class LoadBalancedWorkers:
    """A work-sharing group over a VS service.

    Parameters
    ----------
    service:
        A token-ring VS instance; this class installs itself as the
        service's callback sink.
    on_execute:
        Optional callback ``(task_id, payload, executor)`` invoked when
        a member executes a task.
    """

    def __init__(
        self,
        service: TokenRingVS,
        on_execute=None,
    ) -> None:
        self.service = service
        self.on_execute = on_execute
        self.processors = service.processors
        #: per-member task tables
        self.tasks: dict[ProcId, dict[str, TaskRecord]] = {
            p: {} for p in self.processors
        }
        #: per-member current view (as reported by VS)
        self.views: dict[ProcId, View | None] = {
            p: (service.initial_view if p in service.initial_view.set else None)
            for p in self.processors
        }
        #: executions performed: (task_id, executor, time)
        self.executions: list[tuple[str, ProcId, float]] = []
        service.on_gprcv = self._on_gprcv
        service.on_safe = self._on_safe
        service.on_newview = self._on_newview

    # ------------------------------------------------------------------
    def start(self) -> None:
        self.service.start()

    def run_until(self, time: float) -> None:
        self.start()
        self.service.run_until(time)

    def submit(self, p: ProcId, task_id: str, payload: Any = None) -> None:
        """Announce a task to the group from member p.

        The submitter records the task locally at once: announcements
        in flight when a view changes are lost with the view, and the
        re-announcement on ``newview`` can only cover tasks the member
        knows about.
        """
        self.tasks[p].setdefault(
            task_id, TaskRecord(task_id=task_id, payload=payload)
        )
        self.service.gpsnd(p, ("task", task_id, payload))

    def schedule_submit(
        self, time: float, p: ProcId, task_id: str, payload: Any = None
    ) -> None:
        self.service.simulator.schedule_at(
            time, lambda: self.submit(p, task_id, payload)
        )

    # ------------------------------------------------------------------
    def _on_gprcv(self, message: Any, src: ProcId, dst: ProcId) -> None:
        kind = message[0]
        if kind == "task":
            _kind, task_id, payload = message
            self.tasks[dst].setdefault(
                task_id, TaskRecord(task_id=task_id, payload=payload)
            )
        elif kind == "done":
            _kind, task_id, executor = message
            record = self.tasks[dst].setdefault(
                task_id, TaskRecord(task_id=task_id, payload=None)
            )
            record.completed_by.append(executor)

    def _on_safe(self, message: Any, src: ProcId, dst: ProcId) -> None:
        if message[0] != "task":
            return
        _kind, task_id, _payload = message
        record = self.tasks[dst].get(task_id)
        if record is None:
            return
        record.safe = True
        self._maybe_execute(dst, record)

    def _on_newview(self, view: View, p: ProcId) -> None:
        self.views[p] = view
        # Re-evaluate ownership of everything known and not completed.
        # Tasks must be re-announced in the new view before execution
        # (safety is per view); the cheapest correct policy is for every
        # member to re-announce its incomplete tasks.
        for record in self.tasks[p].values():
            record.safe = False
            if not record.completed:
                self.service.gpsnd(p, ("task", record.task_id, record.payload))

    # ------------------------------------------------------------------
    def _maybe_execute(self, member: ProcId, record: TaskRecord) -> None:
        view = self.views[member]
        if view is None or record.completed or not record.safe:
            return
        if owner_of(record.task_id, view) != member:
            return
        now = self.service.simulator.now
        self.executions.append((record.task_id, member, now))
        record.completed_by.append(member)
        if self.on_execute is not None:
            self.on_execute(record.task_id, record.payload, member)
        self.service.gpsnd(member, ("done", record.task_id, member))

    # ------------------------------------------------------------------
    def completed_tasks(self, p: ProcId) -> set[str]:
        """Tasks member p knows to be completed."""
        return {
            task_id
            for task_id, record in self.tasks[p].items()
            if record.completed
        }

    def execution_counts(self) -> dict[str, int]:
        """How many times each task was executed (across all members)."""
        counts: dict[str, int] = {}
        for task_id, _member, _time in self.executions:
            counts[task_id] = counts.get(task_id, 0) + 1
        return counts

    def load_by_member(self) -> dict[ProcId, int]:
        counts = {p: 0 for p in self.processors}
        for _task, member, _time in self.executions:
            counts[member] += 1
        return counts
