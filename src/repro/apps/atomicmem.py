"""Atomic (linearisable) replicated memory.

Footnote 3's alternative construction: *all* operations — reads as well
as writes — go through the totally ordered broadcast service.  A read
completes only when its own marker is delivered back at the reader,
which serialises it against every write, giving atomicity at the price
of read latency (reads are no longer local).

Because every replica applies the same delivery sequence, the position
of an operation in that sequence is a global *serialisation index*; the
executable checker :func:`check_linearizability` uses it to verify both
legality (every read returns the latest preceding write) and real-time
order (an operation that completed before another was invoked is
serialised first) — the two halves of linearisability.

The latency difference against
:class:`~repro.apps.seqmem.SequentiallyConsistentMemory` is measured by
``benchmarks/bench_seqmem.py``.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from collections.abc import Callable, Hashable
from typing import Any

from repro.apps.totalorder import TotalOrderBroadcast

ProcId = Hashable


@dataclass
class PendingOp:
    """An operation awaiting its own delivery at its origin."""

    op_id: int
    proc: ProcId
    kind: str  # "read" | "write"
    key: Any
    value: Any
    issued_at: float
    callback: Callable[[Any], None] | None


@dataclass(frozen=True)
class CompletedOp:
    """An operation with its global serialisation index."""

    op_id: int
    proc: ProcId
    kind: str
    key: Any
    value: Any  # written value, or the value a read returned
    issued_at: float
    completed_at: float
    index: int  # position in the global total order

    @property
    def latency(self) -> float:
        return self.completed_at - self.issued_at


class AtomicMemory:
    """Linearisable key→value memory: every operation is broadcast."""

    def __init__(self, tob: TotalOrderBroadcast) -> None:
        self.tob = tob
        tob.runtime.on_deliver = self._apply
        self.replicas: dict[ProcId, dict[Any, Any]] = {
            p: {} for p in tob.processors
        }
        self._op_ids = itertools.count()
        self._pending: dict[int, PendingOp] = {}
        #: completed operations, in completion order
        self.ops: list[CompletedOp] = []
        self.writes_applied: dict[ProcId, int] = {p: 0 for p in tob.processors}
        #: per-replica count of applied payloads (the serialisation index)
        self._applied_count: dict[ProcId, int] = {
            p: 0 for p in tob.processors
        }

    # ------------------------------------------------------------------
    @property
    def completed_reads(self) -> list[CompletedOp]:
        return [op for op in self.ops if op.kind == "read"]

    @property
    def completed_writes(self) -> list[CompletedOp]:
        return [op for op in self.ops if op.kind == "write"]

    # ------------------------------------------------------------------
    def write(self, p: ProcId, key: Any, value: Any) -> int:
        op_id = next(self._op_ids)
        self._pending[op_id] = PendingOp(
            op_id=op_id,
            proc=p,
            kind="write",
            key=key,
            value=value,
            issued_at=self.tob.now,
            callback=None,
        )
        self.tob.broadcast(p, ("write", key, value, op_id))
        return op_id

    def read(
        self,
        p: ProcId,
        key: Any,
        callback: Callable[[Any], None] | None = None,
    ) -> int:
        """Issue an atomic read; returns the operation id.  The value is
        reported through ``callback`` (and :attr:`ops`) when the read's
        marker is delivered back at p."""
        op_id = next(self._op_ids)
        self._pending[op_id] = PendingOp(
            op_id=op_id,
            proc=p,
            kind="read",
            key=key,
            value=None,
            issued_at=self.tob.now,
            callback=callback,
        )
        self.tob.broadcast(p, ("read", key, None, op_id))
        return op_id

    def schedule_write(self, time: float, p: ProcId, key: Any, value: Any) -> None:
        self.tob.vs.simulator.schedule_at(time, lambda: self.write(p, key, value))

    def schedule_read(self, time: float, p: ProcId, key: Any) -> None:
        self.tob.vs.simulator.schedule_at(time, lambda: self.read(p, key))

    def run_until(self, time: float) -> None:
        self.tob.run_until(time)

    # ------------------------------------------------------------------
    def _apply(self, payload: Any, origin: ProcId, dst: ProcId) -> None:
        kind, key, value, op_id = payload
        self._applied_count[dst] += 1
        index = self._applied_count[dst]
        if kind == "write":
            self.replicas[dst][key] = value
            self.writes_applied[dst] += 1
        if dst != origin:
            return
        pending = self._pending.pop(op_id, None)
        if pending is None:
            return
        result = value if kind == "write" else self.replicas[dst].get(key)
        completed = CompletedOp(
            op_id=op_id,
            proc=dst,
            kind=kind,
            key=key,
            value=result,
            issued_at=pending.issued_at,
            completed_at=self.tob.now,
            index=index,
        )
        self.ops.append(completed)
        if pending.callback is not None:
            pending.callback(result)


def check_linearizability(memory: AtomicMemory) -> tuple[bool, str]:
    """Verify the completed-operation history is linearisable.

    The serialisation is the global total order (each op's ``index``).
    Checks:

    1. *legality*: every read returns the value of the latest write to
       its key with a smaller index (or None when there is none);
    2. *real-time order*: if op A completed before op B was issued, then
       A's index precedes B's;
    3. indices are distinct (the order is a sequence).
    """
    ops = sorted(memory.ops, key=lambda op: op.index)
    indices = [op.index for op in ops]
    if len(set(indices)) != len(indices):
        return False, "duplicate serialisation indices"

    last_value: dict[Any, Any] = {}
    for op in ops:
        if op.kind == "write":
            last_value[op.key] = op.value
        else:
            expected = last_value.get(op.key)
            if op.value != expected:
                return (
                    False,
                    f"read {op.op_id} of {op.key!r} returned {op.value!r}; "
                    f"serialisation implies {expected!r}",
                )

    for a in memory.ops:
        for b in memory.ops:
            if a.completed_at < b.issued_at and a.index >= b.index:
                return (
                    False,
                    f"real-time order violated: op {a.op_id} completed at "
                    f"{a.completed_at:.6g} before op {b.op_id} was issued "
                    f"at {b.issued_at:.6g}, but is serialised later",
                )
    return True, ""
