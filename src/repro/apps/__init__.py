"""Applications built on the TO service.

- :mod:`repro.apps.totalorder` — :class:`TotalOrderBroadcast`, the
  user-facing façade assembling the full stack (token-ring VS +
  VStoTO);
- :mod:`repro.apps.seqmem` — the sequentially consistent replicated
  memory of the paper's footnote 3 (replicated state machine), plus an
  executable sequential-consistency checker;
- :mod:`repro.apps.atomicmem` — the atomic-memory variant (all
  operations through TO);
- :mod:`repro.apps.baselines` — a Keidar–Dolev-style baseline that logs
  to (simulated) stable storage before acknowledging, for the latency
  trade-off discussion of Section 1;
- :mod:`repro.apps.loadbalance` — view-aware work sharing in the style
  of the load-balancing service the paper cites as built on this VS
  specification (reference [27]).
"""

from repro.apps.totalorder import TotalOrderBroadcast
from repro.apps.seqmem import (
    MemoryOp,
    SequentiallyConsistentMemory,
    check_sequential_consistency,
)
from repro.apps.atomicmem import AtomicMemory, check_linearizability
from repro.apps.baselines import StableStorageBroadcast
from repro.apps.loadbalance import LoadBalancedWorkers, owner_of

__all__ = [
    "TotalOrderBroadcast",
    "SequentiallyConsistentMemory",
    "MemoryOp",
    "check_sequential_consistency",
    "AtomicMemory",
    "check_linearizability",
    "StableStorageBroadcast",
    "LoadBalancedWorkers",
    "owner_of",
]
