"""Actions and signatures for I/O automata.

An *action* is a named event with parameters, e.g. ``bcast(a)_p`` from the
paper's TO interface becomes ``act("bcast", a, p)``.  Subscripts in the
paper (the location(s) an action occurs at) are ordinary trailing
parameters here; by convention the location parameters come last, in the
paper's subscript order (source before destination).

A *signature* classifies action names as input, output or internal.
Classification is by action name: every action sharing a name has the
same kind within one automaton, which matches how the paper's signatures
are written (``gprcv(m)_{p,q}`` is one schema covering all m, p, q).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from collections.abc import Iterable
from typing import Any


class ActionKind(enum.Enum):
    """Kind of an action within a signature."""

    INPUT = "input"
    OUTPUT = "output"
    INTERNAL = "internal"
    TIME_PASSAGE = "time-passage"


@dataclass(frozen=True)
class Action:
    """An action instance: a name plus a tuple of parameters.

    Actions are immutable and hashable so they can be stored in traces,
    used as dictionary keys by schedulers, and compared for equality when
    matching a concrete step against an abstract one.
    """

    name: str
    args: tuple[Any, ...] = ()

    def __str__(self) -> str:
        inner = ", ".join(repr(a) for a in self.args)
        return f"{self.name}({inner})"

    def arg(self, index: int) -> Any:
        """Return the parameter at ``index`` (0-based)."""
        return self.args[index]


def act(name: str, *args: Any) -> Action:
    """Convenience constructor: ``act("bcast", value, p)``."""
    return Action(name, tuple(args))


class Signature:
    """An action signature: disjoint sets of input/output/internal names.

    The *external* actions are the inputs and outputs; only these appear
    in traces.  ``TIME_PASSAGE`` is handled by the timed layer and never
    appears in a signature.
    """

    def __init__(
        self,
        inputs: Iterable[str] = (),
        outputs: Iterable[str] = (),
        internals: Iterable[str] = (),
    ) -> None:
        self._inputs = frozenset(inputs)
        self._outputs = frozenset(outputs)
        self._internals = frozenset(internals)
        overlap = (
            (self._inputs & self._outputs)
            | (self._inputs & self._internals)
            | (self._outputs & self._internals)
        )
        if overlap:
            raise ValueError(f"action names in more than one class: {sorted(overlap)}")

    @property
    def inputs(self) -> frozenset[str]:
        return self._inputs

    @property
    def outputs(self) -> frozenset[str]:
        return self._outputs

    @property
    def internals(self) -> frozenset[str]:
        return self._internals

    @property
    def external(self) -> frozenset[str]:
        """Names of external (input or output) actions."""
        return self._inputs | self._outputs

    @property
    def locally_controlled(self) -> frozenset[str]:
        """Names of locally controlled (output or internal) actions."""
        return self._outputs | self._internals

    @property
    def all_names(self) -> frozenset[str]:
        return self._inputs | self._outputs | self._internals

    def kind_of(self, name: str) -> ActionKind:
        """Classify ``name``; raises :class:`KeyError` if absent."""
        if name in self._inputs:
            return ActionKind.INPUT
        if name in self._outputs:
            return ActionKind.OUTPUT
        if name in self._internals:
            return ActionKind.INTERNAL
        raise KeyError(f"action {name!r} not in signature")

    def contains(self, name: str) -> bool:
        return name in self.all_names

    def hide(self, names: Iterable[str]) -> Signature:
        """Return a signature with the given output names made internal.

        Hiding is how the paper forms *VStoTO-system*: the ``gpsnd``,
        ``gprcv``, ``safe`` and ``newview`` actions used between the two
        layers are hidden after composition.
        """
        names = frozenset(names)
        unknown = names - self._outputs
        if unknown:
            raise ValueError(f"cannot hide non-output actions: {sorted(unknown)}")
        return Signature(
            inputs=self._inputs,
            outputs=self._outputs - names,
            internals=self._internals | names,
        )

    def __repr__(self) -> str:
        return (
            f"Signature(inputs={sorted(self._inputs)}, "
            f"outputs={sorted(self._outputs)}, "
            f"internals={sorted(self._internals)})"
        )
