"""Bounded exhaustive state-space exploration (explicit-state model
checking) for I/O automata.

The randomized harnesses sample executions; for *small* configurations
the spec machines can instead be checked on **every** reachable state, a
TLA⁺-style guarantee.  :func:`explore` performs breadth-first search
over the reachable state graph:

- states are snapshots frozen into hashable canonical forms;
- transitions are the automaton's enabled locally controlled actions
  plus a finite set of caller-supplied input actions (possibly
  state-dependent);
- every discovered state is passed to the caller's invariant check.

The automaton must tolerate :func:`restore_snapshot` — having its
``__dict__`` replaced by a deep copy of an earlier snapshot — which
holds for all the plain-attribute spec machines in this repository.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass
from collections.abc import Callable, Iterable
from typing import Any

from repro.ioa.actions import Action
from repro.ioa.automaton import Automaton


def freeze(value: Any) -> Any:
    """Canonicalise a snapshot value into a hashable form."""
    if isinstance(value, dict):
        return (
            "dict",
            tuple(
                sorted(
                    ((freeze(k), freeze(v)) for k, v in value.items()),
                    key=repr,
                )
            ),
        )
    if isinstance(value, (list, tuple)):
        return ("seq", tuple(freeze(v) for v in value))
    if isinstance(value, (set, frozenset)):
        return ("set", tuple(sorted((freeze(v) for v in value), key=repr)))
    return value


def restore_snapshot(automaton: Automaton, snapshot: dict[str, Any]) -> None:
    """Load a snapshot back into the automaton (deep-copied)."""
    for key, value in snapshot.items():
        setattr(automaton, key, copy.deepcopy(value))


@dataclass
class ExplorationResult:
    """Outcome of :func:`explore`."""

    states_visited: int
    transitions_taken: int
    truncated: bool
    #: (state snapshot, action sequence reaching it) for the first
    #: invariant violation, if any
    violation: tuple[dict, tuple[Action, ...]] | None = None
    deepest_level: int = 0

    @property
    def ok(self) -> bool:
        return self.violation is None


def restore_composition(composition: Any, snapshot: dict[str, Any]) -> None:
    """Restore hook for :class:`repro.ioa.composition.Composition`
    snapshots ({component name: component snapshot})."""
    for component in composition.components:
        restore_snapshot(component, snapshot[component.name])


def explore(
    automaton: Automaton,
    inputs_for: Callable[[Automaton], Iterable[Action]] = lambda a: (),
    check: Callable[[Automaton], bool] | None = None,
    max_states: int = 50_000,
    max_depth: int = 10_000,
    restore: Callable[[Automaton, dict], None] | None = None,
) -> ExplorationResult:
    """Breadth-first exploration from the automaton's current state.

    Parameters
    ----------
    automaton:
        The machine to explore, in its start state; it is mutated during
        the search and left in an arbitrary reachable state afterwards.
    inputs_for:
        Yields the input actions to try from a given state (keep this
        finite — it bounds the branching).
    check:
        Predicate evaluated on every discovered state; returning False
        records a violation (with its action path) and stops the search.
    max_states, max_depth:
        Truncation bounds; exceeding them sets ``truncated``.
    """
    do_restore = restore if restore is not None else restore_snapshot
    initial = automaton.snapshot()
    frontier: list[tuple[dict, tuple[Action, ...]]] = [(initial, ())]
    seen = {freeze(initial)}
    result = ExplorationResult(states_visited=0, transitions_taken=0, truncated=False)

    if check is not None:
        do_restore(automaton, initial)
        if not check(automaton):
            result.states_visited = 1
            result.violation = (initial, ())
            return result

    while frontier:
        next_frontier: list[tuple[dict, tuple[Action, ...]]] = []
        for snapshot, path in frontier:
            result.states_visited += 1
            do_restore(automaton, snapshot)
            actions = list(automaton.enabled_actions())
            do_restore(automaton, snapshot)
            actions.extend(inputs_for(automaton))
            for action in actions:
                do_restore(automaton, snapshot)
                automaton.step(action)
                result.transitions_taken += 1
                successor = automaton.snapshot()
                key = freeze(successor)
                if key in seen:
                    continue
                seen.add(key)
                successor_path = path + (action,)
                if check is not None and not check(automaton):
                    result.violation = (successor, successor_path)
                    return result
                if len(seen) >= max_states:
                    result.truncated = True
                    return result
                next_frontier.append((successor, successor_path))
        frontier = next_frontier
        result.deepest_level += 1
        if result.deepest_level >= max_depth:
            result.truncated = True
            return result
    return result
