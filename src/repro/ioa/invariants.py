"""Named invariants and invariant suites.

The paper proves roughly two dozen invariants of *VStoTO-system*
(Lemmas 6.1–6.24) by induction on executions.  Here each invariant is an
executable predicate over a state snapshot; a suite evaluates all of them
on every reachable state visited during a run and reports the first
violation with enough context to debug it.  This is the runtime analogue
of the paper's PVS mechanical checking (see DESIGN.md substitutions).
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Callable, Iterable, Iterator
from typing import Any

Predicate = Callable[[Any], bool]


@dataclass(frozen=True)
class Invariant:
    """A named predicate over a state snapshot.

    ``check`` returns True when the invariant holds.  ``reference`` cites
    the paper lemma the invariant transcribes.
    """

    name: str
    check: Predicate
    reference: str = ""

    def holds(self, state: Any) -> bool:
        return bool(self.check(state))


class InvariantViolation(AssertionError):
    """Raised when an invariant fails on a reachable state."""

    def __init__(self, invariant: Invariant, step_index: int, detail: str = "") -> None:
        self.invariant = invariant
        self.step_index = step_index
        message = (
            f"invariant {invariant.name!r} ({invariant.reference}) violated "
            f"at step {step_index}"
        )
        if detail:
            message += f": {detail}"
        super().__init__(message)


class InvariantSuite:
    """A collection of invariants evaluated together.

    Use :meth:`check_state` inside an ``on_step`` hook of
    :func:`repro.ioa.execution.run_automaton`, or :meth:`violations` to
    collect all failures without raising.
    """

    def __init__(self, invariants: Iterable[Invariant]) -> None:
        self.invariants: tuple[Invariant, ...] = tuple(invariants)
        names = [inv.name for inv in self.invariants]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate invariant names: {names}")
        self.checked_states = 0

    def check_state(self, state: Any, step_index: int = -1) -> None:
        """Evaluate every invariant; raise on the first failure."""
        self.checked_states += 1
        for invariant in self.invariants:
            if not invariant.holds(state):
                raise InvariantViolation(invariant, step_index)

    def violations(self, state: Any) -> list[Invariant]:
        """Return all invariants that fail on ``state`` (never raises)."""
        self.checked_states += 1
        return [inv for inv in self.invariants if not inv.holds(state)]

    def named(self, name: str) -> Invariant:
        for invariant in self.invariants:
            if invariant.name == name:
                return invariant
        raise KeyError(name)

    def __len__(self) -> int:
        return len(self.invariants)

    def __iter__(self) -> Iterator[Invariant]:
        return iter(self.invariants)


def all_hold(suite: InvariantSuite, states: Iterable[Any]) -> tuple[int, Invariant] | None:
    """Check a suite over many states; return (index, invariant) of the
    first violation, or None when all hold."""
    for index, state in enumerate(states):
        for invariant in suite:
            if not invariant.holds(state):
                return index, invariant
    return None
