"""Executions, traces and nondeterminism schedulers.

An execution of an I/O automaton alternates states and actions.  The
framework records the action sequence plus (optionally) state snapshots,
and resolves nondeterminism with a pluggable :class:`Scheduler` — the
"adversary" that picks which enabled action fires next.  All schedulers
are seeded, so every run in the test and benchmark suites is
reproducible.

Environment inputs (e.g. clients submitting ``bcast`` values) are modelled
either by composing a client automaton in, or by passing an
``input_source`` callable to :func:`run_automaton` that may inject an
input action before each step.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from collections.abc import Callable, Iterable, Sequence
from typing import Any, Protocol

from repro.ioa.actions import Action, ActionKind
from repro.ioa.automaton import Automaton


class Scheduler(Protocol):
    """Chooses the next action among the enabled ones."""

    def choose(self, actions: Sequence[Action]) -> Action:  # pragma: no cover
        ...


class RandomScheduler:
    """Uniformly random choice with a private seeded RNG."""

    def __init__(self, seed: int = 0) -> None:
        self._rng = random.Random(seed)

    def choose(self, actions: Sequence[Action]) -> Action:
        return actions[self._rng.randrange(len(actions))]


class RoundRobinScheduler:
    """Cycles through action names to guarantee a weakly fair schedule.

    Among the enabled actions, prefers the name least recently fired;
    ties within a name are broken by a seeded RNG.  This approximates the
    fairness that the paper's liveness arguments assume of *good*
    processors (enabled steps happen promptly).
    """

    def __init__(self, seed: int = 0) -> None:
        self._rng = random.Random(seed)
        self._last_fired: dict[str, int] = {}
        self._clock = 0

    def choose(self, actions: Sequence[Action]) -> Action:
        self._clock += 1
        by_staleness = sorted(
            actions, key=lambda a: self._last_fired.get(a.name, -1)
        )
        stalest = by_staleness[0]
        candidates = [
            a
            for a in actions
            if self._last_fired.get(a.name, -1)
            == self._last_fired.get(stalest.name, -1)
        ]
        choice = candidates[self._rng.randrange(len(candidates))]
        self._last_fired[choice.name] = self._clock
        return choice


class WeightedScheduler:
    """Random choice with per-action-name weights.

    Useful for biasing runs, e.g. making ``createview`` rare relative to
    message traffic so executions exercise long stable periods, the
    regime the paper's conditional properties describe.
    """

    def __init__(
        self,
        weight_of: Callable[[Action], float],
        seed: int = 0,
    ) -> None:
        self._weight_of = weight_of
        self._rng = random.Random(seed)

    def choose(self, actions: Sequence[Action]) -> Action:
        weights = [max(self._weight_of(a), 0.0) for a in actions]
        total = sum(weights)
        if total <= 0.0:
            return actions[self._rng.randrange(len(actions))]
        return self._rng.choices(actions, weights=weights, k=1)[0]


@dataclass
class Execution:
    """A recorded execution: the action sequence, and optional snapshots.

    ``snapshots[i]`` is the state *after* ``actions[i]`` was applied;
    ``initial_snapshot`` is the start state.  Snapshots are recorded only
    when requested, since deep-copying large compositions is costly.
    """

    automaton_name: str
    actions: list[Action] = field(default_factory=list)
    initial_snapshot: Any | None = None
    snapshots: list[Any] = field(default_factory=list)

    def trace(self, external_names: Iterable[str]) -> list[Action]:
        """Project the execution onto the given external action names."""
        external = frozenset(external_names)
        return [a for a in self.actions if a.name in external]

    def __len__(self) -> int:
        return len(self.actions)


def run_automaton(
    automaton: Automaton,
    scheduler: Scheduler,
    max_steps: int,
    input_source: Callable[[int], Action | None] | None = None,
    record_snapshots: bool = False,
    on_step: Callable[[int, Action], None] | None = None,
) -> Execution:
    """Drive ``automaton`` for up to ``max_steps`` transitions.

    Before each step, ``input_source(step_index)`` (if given) may return
    an input action to inject; otherwise the scheduler picks among the
    enabled locally controlled actions.  The run stops early when
    nothing is enabled and the input source yields nothing.

    ``on_step(step_index, action)`` is invoked after each applied action;
    invariant suites hook in here.
    """
    execution = Execution(automaton_name=automaton.name)
    if record_snapshots:
        execution.initial_snapshot = automaton.snapshot()
    for step_index in range(max_steps):
        action: Action | None = None
        if input_source is not None:
            action = input_source(step_index)
            if action is not None:
                kind = automaton.signature.kind_of(action.name)
                if kind is not ActionKind.INPUT:
                    raise ValueError(
                        f"input_source produced non-input action {action}"
                    )
        if action is None:
            enabled = list(automaton.enabled_actions())
            if not enabled:
                break
            action = scheduler.choose(enabled)
        automaton.step(action)
        execution.actions.append(action)
        if record_snapshots:
            execution.snapshots.append(automaton.snapshot())
        if on_step is not None:
            on_step(step_index, action)
    return execution
