"""Parallel composition of I/O automata.

Composition follows Lynch–Tuttle: components synchronise on shared action
names.  An action is an output of the composite if it is an output of
some component; it is an input if it is an input of some component and an
output of none; internal actions are not shared.  When the composite
takes an action, every component whose signature contains the action's
name takes it simultaneously.

Compatibility requirements enforced here:

- output action names are disjoint across components (at the *instance*
  level — the paper's per-location subscripts are parameters here, so we
  instead allow shared output names only when the components' outputs are
  distinguished by their parameters; the framework enforces the stronger
  name-level rule by default and callers with parameter-distinguished
  outputs compose through :class:`MultiOwnerComposition` semantics via
  ``allow_shared_outputs``);
- internal action names of one component do not appear in any other
  component's signature.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Sequence
from typing import Any

from repro.ioa.actions import Action, ActionKind, Signature
from repro.ioa.automaton import Automaton, TransitionError


class CompatibilityError(Exception):
    """Raised when components cannot legally be composed."""


def _composite_signature(
    components: Sequence[Automaton],
    allow_shared_outputs: bool,
    allow_shared_internals: bool,
) -> Signature:
    outputs: set[str] = set()
    inputs: set[str] = set()
    internals: set[str] = set()
    for comp in components:
        sig = comp.signature
        if not allow_shared_internals:
            shared_internal = internals & sig.all_names
            if shared_internal:
                raise CompatibilityError(
                    f"internal actions shared with {comp.name}: "
                    f"{sorted(shared_internal)}"
                )
            for other in components:
                if other is comp:
                    continue
                leak = sig.internals & other.signature.all_names
                if leak:
                    raise CompatibilityError(
                        f"internal actions of {comp.name} appear in {other.name}: "
                        f"{sorted(leak)}"
                    )
        if not allow_shared_outputs:
            clash = outputs & sig.outputs
            if clash:
                raise CompatibilityError(
                    f"output actions owned by two components: {sorted(clash)}"
                )
        outputs |= sig.outputs
        inputs |= sig.inputs
        internals |= sig.internals
    inputs -= outputs
    return Signature(inputs=inputs, outputs=outputs, internals=internals)


class Composition(Automaton):
    """The parallel composition of a sequence of component automata.

    Parameters
    ----------
    components:
        The component automata.  Each must have a distinct ``name``.
    hidden:
        Output action names to reclassify as internal after composition
        (the paper hides ``gpsnd``/``gprcv``/``safe``/``newview`` when
        forming *VStoTO-system*).
    allow_shared_outputs:
        Permit two components to declare the same output action *name*.
        This is needed because the paper's per-location automata (e.g.
        ``VStoTO_p`` for each p) all declare ``gpsnd`` as an output and
        are distinguished by the location parameter.  When enabled, an
        output action is applied at every component that declares it and
        currently enables it as an output, and as input everywhere else
        it appears; at most one component may enable it as an output at
        a time for the composite step to be well defined, and this is
        checked at apply time.
    """

    def __init__(
        self,
        components: Sequence[Automaton],
        name: str = "composition",
        hidden: Iterable[str] = (),
        allow_shared_outputs: bool = False,
        allow_shared_internals: bool = False,
    ) -> None:
        names = [c.name for c in components]
        if len(set(names)) != len(names):
            raise CompatibilityError(f"duplicate component names: {names}")
        self.components: tuple[Automaton, ...] = tuple(components)
        self.name = name
        self._allow_shared_outputs = allow_shared_outputs
        sig = _composite_signature(
            self.components, allow_shared_outputs, allow_shared_internals
        )
        hidden = tuple(hidden)
        if hidden:
            sig = sig.hide(hidden)
        self.signature = sig
        self._by_action: dict[str, list[Automaton]] = {}
        for comp in self.components:
            for action_name in comp.signature.all_names:
                self._by_action.setdefault(action_name, []).append(comp)

    # ------------------------------------------------------------------
    def component(self, name: str) -> Automaton:
        """Look up a component by name."""
        for comp in self.components:
            if comp.name == name:
                return comp
        raise KeyError(name)

    def participants(self, action: Action) -> list[Automaton]:
        """Components whose signature contains the action's name."""
        return self._by_action.get(action.name, [])

    # ------------------------------------------------------------------
    def is_enabled(self, action: Action) -> bool:
        participants = self.participants(action)
        if not participants:
            return False
        kind = self.signature.kind_of(action.name)
        if kind is ActionKind.INPUT:
            return True
        owners = [
            comp
            for comp in participants
            if comp.signature.kind_of(action.name)
            in (ActionKind.OUTPUT, ActionKind.INTERNAL)
        ]
        return any(comp.is_enabled(action) for comp in owners)

    def apply(self, action: Action) -> None:
        participants = self.participants(action)
        if not participants:
            raise TransitionError(f"{self.name}: no component for {action}")
        owners = [
            comp
            for comp in participants
            if comp.signature.kind_of(action.name)
            in (ActionKind.OUTPUT, ActionKind.INTERNAL)
            and comp.is_enabled(action)
        ]
        composite_kind = self.signature.kind_of(action.name)
        if composite_kind is not ActionKind.INPUT:
            if not owners:
                raise TransitionError(f"{self.name}: {action} enabled at no owner")
            if len(owners) > 1:
                raise TransitionError(
                    f"{self.name}: {action} enabled at several owners: "
                    f"{[c.name for c in owners]}"
                )
        for comp in participants:
            comp_kind = comp.signature.kind_of(action.name)
            if comp_kind is ActionKind.INPUT or comp in owners:
                comp.apply(action)

    def enabled_actions(self) -> Iterator[Action]:
        seen: set[Action] = set()
        for comp in self.components:
            for action in comp.enabled_actions():
                if action in seen:
                    continue
                seen.add(action)
                yield action

    # ------------------------------------------------------------------
    def snapshot(self) -> dict[str, Any]:
        """Snapshot maps component name to that component's snapshot."""
        return {comp.name: comp.snapshot() for comp in self.components}
