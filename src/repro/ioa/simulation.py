"""Executable forward-simulation checking.

Theorem 6.26 of the paper is proved with a forward simulation ``f`` from
*VStoTO-system* to *TO-machine* (Lemma 6.25): every concrete step
corresponds to zero or one abstract steps, and the abstract state tracks
``f`` of the concrete state.

This module makes that proof structure executable.  A
:class:`ForwardSimulation` is given:

- the abstract automaton (a fresh instance in its start state);
- ``abstraction(concrete_state) -> abstract_state_dict`` computing f;
- ``corresponding_actions(pre, action, post) -> list[Action]`` giving the
  abstract action sequence matching one concrete step (usually empty or a
  single action — exactly the shape of the Lemma 6.25 case analysis).

During a run, :meth:`step` is called per concrete transition; the checker
applies the corresponding abstract actions (verifying each is enabled)
and then verifies the abstract automaton's state equals ``f(post)``.
A mismatch raises :class:`SimulationError` with a state diff.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from typing import Any

from repro.ioa.actions import Action, ActionKind
from repro.ioa.automaton import Automaton


class SimulationError(AssertionError):
    """The simulation relation failed to hold across a step."""


def diff_states(expected: dict[str, Any], actual: dict[str, Any]) -> str:
    """Produce a human-readable diff of two state dicts."""
    lines: list[str] = []
    for key in sorted(set(expected) | set(actual)):
        exp, act_ = expected.get(key, "<absent>"), actual.get(key, "<absent>")
        if exp != act_:
            lines.append(f"  {key}: expected {exp!r}, actual {act_!r}")
    return "\n".join(lines) if lines else "  (states equal?)"


class ForwardSimulation:
    """Step-wise checker for a forward simulation relation.

    Parameters
    ----------
    abstract:
        The specification automaton, in its start state.
    abstraction:
        Computes the abstract state (as a comparable dict) from the
        concrete state snapshot.
    corresponding_actions:
        Maps a concrete step to the abstract action sequence it
        simulates.  Receives (pre_snapshot, action, post_snapshot).
    """

    def __init__(
        self,
        abstract: Automaton,
        abstraction: Callable[[Any], dict[str, Any]],
        corresponding_actions: Callable[[Any, Action, Any], Sequence[Action]],
    ) -> None:
        self.abstract = abstract
        self.abstraction = abstraction
        self.corresponding_actions = corresponding_actions
        self.steps_checked = 0

    def check_initial(self, concrete_snapshot: Any) -> None:
        """Verify f(start state) equals the abstract start state."""
        expected = self.abstraction(concrete_snapshot)
        actual = self.abstract.snapshot()
        if expected != actual:
            raise SimulationError(
                "initial states do not correspond:\n"
                + diff_states(expected, actual)
            )

    def step(self, pre: Any, action: Action, post: Any) -> None:
        """Check one concrete transition against the abstract machine."""
        abstract_actions = self.corresponding_actions(pre, action, post)
        for abstract_action in abstract_actions:
            kind = self.abstract.signature.kind_of(abstract_action.name)
            if kind is not ActionKind.INPUT and not self.abstract.is_enabled(
                abstract_action
            ):
                raise SimulationError(
                    f"abstract action {abstract_action} not enabled "
                    f"(simulating concrete {action})"
                )
            self.abstract.apply(abstract_action)
        expected = self.abstraction(post)
        actual = self.abstract.snapshot()
        if expected != actual:
            raise SimulationError(
                f"simulation relation broken after concrete {action} "
                f"(abstract steps {[str(a) for a in abstract_actions]}):\n"
                + diff_states(expected, actual)
            )
        self.steps_checked += 1
