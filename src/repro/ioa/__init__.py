"""I/O automaton framework (Lynch–Tuttle untimed model, Lynch–Vaandrager
timed model).

The paper expresses every specification and algorithm as an I/O automaton
in precondition/effect style.  This package provides:

- :mod:`repro.ioa.actions` — actions, action kinds and signatures;
- :mod:`repro.ioa.automaton` — the :class:`Automaton` base class with
  precondition/effect transitions and state snapshotting;
- :mod:`repro.ioa.composition` — parallel composition with action
  synchronisation and hiding;
- :mod:`repro.ioa.execution` — executions, traces and pluggable
  nondeterminism schedulers (the "adversary");
- :mod:`repro.ioa.timed` — timed automata with ``nu(t)`` time passage and
  timed traces;
- :mod:`repro.ioa.invariants` — named invariants and suites, evaluated on
  every reachable state of a run;
- :mod:`repro.ioa.simulation` — executable forward-simulation checking
  (Lynch–Vaandrager, used for Theorem 6.26).
"""

from repro.ioa.actions import Action, ActionKind, Signature, act
from repro.ioa.automaton import Automaton, TransitionError
from repro.ioa.composition import CompatibilityError, Composition
from repro.ioa.explore import ExplorationResult, explore, freeze
from repro.ioa.execution import (
    Execution,
    RandomScheduler,
    RoundRobinScheduler,
    Scheduler,
    WeightedScheduler,
    run_automaton,
)
from repro.ioa.invariants import Invariant, InvariantSuite, InvariantViolation
from repro.ioa.simulation import ForwardSimulation, SimulationError
from repro.ioa.timed import TimedAutomaton, TimedEvent, TimedTrace

__all__ = [
    "Action",
    "ActionKind",
    "Signature",
    "act",
    "Automaton",
    "TransitionError",
    "Composition",
    "CompatibilityError",
    "Execution",
    "Scheduler",
    "RandomScheduler",
    "RoundRobinScheduler",
    "WeightedScheduler",
    "run_automaton",
    "ExplorationResult",
    "explore",
    "freeze",
    "Invariant",
    "InvariantSuite",
    "InvariantViolation",
    "ForwardSimulation",
    "SimulationError",
    "TimedAutomaton",
    "TimedEvent",
    "TimedTrace",
]
