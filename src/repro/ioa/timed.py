"""Timed automata (Lynch–Vaandrager) and timed traces.

A timed automaton extends an untimed one with time-passage actions
``nu(t)`` for t > 0.  The paper uses the timed model only for the
performance/fault-tolerance layer (Section 7): processors gain a
``failure-status`` variable, outputs/internal actions are disabled while
*bad*, and time may not pass while a *good* processor has an enabled
locally controlled action (its steps happen "immediately").

The framework keeps timed behaviour simple and explicit:

- :class:`TimedAutomaton` adds :meth:`can_advance`/:meth:`advance`;
- :class:`TimedEvent` pairs an action with its occurrence time;
- :class:`TimedTrace` is a sequence of timed events plus an ``ltime``.

Timed executions in this reproduction are produced by the discrete-event
simulator in :mod:`repro.sim` (which interleaves ``nu(t)`` steps with
discrete actions), or by the direct drivers in :mod:`repro.net`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from math import inf
from typing import Iterable, Iterator, Optional

from repro.ioa.actions import Action
from repro.ioa.automaton import Automaton


class TimedAutomaton(Automaton):
    """Base class for timed automata.

    Subclasses override :meth:`can_advance` to veto time passage (the
    "urgent action" rule) and :meth:`advance` to update any state that
    depends on time (deadlines, timers).  The base implementation allows
    arbitrary time passage and tracks :attr:`now`.
    """

    def __init__(self) -> None:
        self.now: float = 0.0

    def can_advance(self, delta: float) -> bool:
        """May time advance by ``delta`` from the current state?"""
        return delta > 0.0

    def advance(self, delta: float) -> None:
        """Apply the time-passage action ``nu(delta)``."""
        if delta <= 0.0:
            raise ValueError("time passage must be positive")
        self.now += delta


@dataclass(frozen=True)
class TimedEvent:
    """An action paired with its occurrence time."""

    time: float
    action: Action

    def __str__(self) -> str:
        return f"{self.time:.6g}:{self.action}"


@dataclass
class TimedTrace:
    """A timed trace: timed events in non-decreasing time order, plus the
    limit time ``ltime`` (``inf`` for admissible traces)."""

    events: list[TimedEvent] = field(default_factory=list)
    ltime: float = inf

    def append(self, time: float, action: Action) -> None:
        if self.events and time < self.events[-1].time - 1e-12:
            raise ValueError(
                f"non-monotonic timed trace: {time} after {self.events[-1].time}"
            )
        self.events.append(TimedEvent(time, action))

    def project(self, names: Iterable[str]) -> "TimedTrace":
        """Restrict to events whose action name is in ``names``."""
        keep = frozenset(names)
        return TimedTrace(
            events=[e for e in self.events if e.action.name in keep],
            ltime=self.ltime,
        )

    def untimed(self) -> list[Action]:
        """Drop timing information (clause 1 of both TO- and VS-property)."""
        return [e.action for e in self.events]

    def events_in(self, start: float, end: float = inf) -> Iterator[TimedEvent]:
        """Events with start <= time < end."""
        for event in self.events:
            if start <= event.time < end:
                yield event

    def last_event_named(
        self, name: str, before: float = inf
    ) -> Optional[TimedEvent]:
        """The latest event with the given action name strictly before
        ``before`` (used to evaluate failure status 'after' a prefix)."""
        result: Optional[TimedEvent] = None
        for event in self.events:
            if event.time >= before:
                break
            if event.action.name == name:
                result = event
        return result

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[TimedEvent]:
        return iter(self.events)
