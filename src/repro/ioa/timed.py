"""Timed automata (Lynch–Vaandrager) and timed traces.

A timed automaton extends an untimed one with time-passage actions
``nu(t)`` for t > 0.  The paper uses the timed model only for the
performance/fault-tolerance layer (Section 7): processors gain a
``failure-status`` variable, outputs/internal actions are disabled while
*bad*, and time may not pass while a *good* processor has an enabled
locally controlled action (its steps happen "immediately").

The framework keeps timed behaviour simple and explicit:

- :class:`TimedAutomaton` adds :meth:`can_advance`/:meth:`advance`;
- :class:`TimedEvent` pairs an action with its occurrence time;
- :class:`TimedTrace` is a sequence of timed events plus an ``ltime``.

Timed executions in this reproduction are produced by the discrete-event
simulator in :mod:`repro.sim` (which interleaves ``nu(t)`` steps with
discrete actions), or by the direct drivers in :mod:`repro.net`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from math import inf
from collections.abc import Callable, Iterable, Iterator, Sequence
from typing import Any

from repro.ioa.actions import Action, act
from repro.ioa.automaton import Automaton


class TimedAutomaton(Automaton):
    """Base class for timed automata.

    Subclasses override :meth:`can_advance` to veto time passage (the
    "urgent action" rule) and :meth:`advance` to update any state that
    depends on time (deadlines, timers).  The base implementation allows
    arbitrary time passage and tracks :attr:`now`.
    """

    def __init__(self) -> None:
        self.now: float = 0.0

    def can_advance(self, delta: float) -> bool:
        """May time advance by ``delta`` from the current state?"""
        return delta > 0.0

    def advance(self, delta: float) -> None:
        """Apply the time-passage action ``nu(delta)``."""
        if delta <= 0.0:
            raise ValueError("time passage must be positive")
        self.now += delta


@dataclass(frozen=True)
class TimedEvent:
    """An action paired with its occurrence time."""

    time: float
    action: Action

    def __str__(self) -> str:
        return f"{self.time:.6g}:{self.action}"


@dataclass
class TimedTrace:
    """A timed trace: timed events in non-decreasing time order, plus the
    limit time ``ltime`` (``inf`` for admissible traces)."""

    events: list[TimedEvent] = field(default_factory=list)
    ltime: float = inf

    def append(self, time: float, action: Action) -> None:
        if self.events and time < self.events[-1].time - 1e-12:
            raise ValueError(
                f"non-monotonic timed trace: {time} after {self.events[-1].time}"
            )
        self.events.append(TimedEvent(time, action))

    def project(self, names: Iterable[str]) -> TimedTrace:
        """Restrict to events whose action name is in ``names``."""
        keep = frozenset(names)
        return TimedTrace(
            events=[e for e in self.events if e.action.name in keep],
            ltime=self.ltime,
        )

    def untimed(self) -> list[Action]:
        """Drop timing information (clause 1 of both TO- and VS-property)."""
        return [e.action for e in self.events]

    def events_in(self, start: float, end: float = inf) -> Iterator[TimedEvent]:
        """Events with start <= time < end."""
        for event in self.events:
            if start <= event.time < end:
                yield event

    def last_event_named(
        self, name: str, before: float = inf
    ) -> TimedEvent | None:
        """The latest event with the given action name strictly before
        ``before`` (used to evaluate failure status 'after' a prefix)."""
        result: TimedEvent | None = None
        for event in self.events:
            if event.time >= before:
                break
            if event.action.name == name:
                result = event
        return result

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[TimedEvent]:
        return iter(self.events)


def status_event_action(status_event: Any) -> Action:
    """Convert an oracle failure-status event (duck-typed: ``time``,
    ``status``, ``target``) into the trace action the property checkers
    expect."""
    target = status_event.target
    args = target if isinstance(target, tuple) else (target,)
    return act(status_event.status.value, *args)


class IncrementalStatusMerger:
    """Incrementally maintain the merge of a primary :class:`TimedTrace`
    with a secondary time-monotonic event stream.

    Reproduces exactly the ordering of the batch construction it
    replaces — sort by ``(time, index)`` with every primary event
    indexed before every secondary event — so at equal times all primary
    events precede all secondary events, and each stream keeps its own
    internal order.  Both streams are recorded at the simulator's
    non-decreasing clock, so every *new* event's time is >= every
    already-merged event's time; the only repair an update needs is
    re-merging tail secondary events that share a timestamp with newly
    arrived primary events.  Repeated calls with no new events return
    the cached trace in O(1); previously returned traces are never
    mutated.

    The merger self-heals: if either source shrank (a test reset the
    trace), the merge is rebuilt from scratch.
    """

    def __init__(
        self,
        primary: TimedTrace,
        secondary: Callable[[], Sequence[Any]],
        convert: Callable[[Any], Action] = status_event_action,
    ) -> None:
        self._primary = primary
        self._secondary = secondary
        self._convert = convert
        #: merged (time, stream, action) triples; stream 0 = primary.
        self._events: list[tuple[float, int, Action]] = []
        self._p_idx = 0
        self._s_idx = 0
        self._cache: TimedTrace | None = None

    def merged(self) -> TimedTrace:
        primary = self._primary.events
        secondary = self._secondary()
        if len(primary) < self._p_idx or len(secondary) < self._s_idx:
            self._events = []
            self._p_idx = 0
            self._s_idx = 0
            self._cache = None
        if (
            self._cache is not None
            and self._p_idx == len(primary)
            and self._s_idx == len(secondary)
        ):
            return self._cache
        new_primary = [(e.time, 0, e.action) for e in primary[self._p_idx :]]
        self._p_idx = len(primary)
        new_secondary = [
            (s.time, 1, self._convert(s)) for s in secondary[self._s_idx :]
        ]
        self._s_idx = len(secondary)
        if new_primary:
            # Tail repair: already-merged secondary events at (or after)
            # the first new primary time must sort after it.
            t0 = new_primary[0][0]
            reordered: list[tuple[float, int, Action]] = []
            while (
                self._events
                and self._events[-1][1] == 1
                and self._events[-1][0] >= t0
            ):
                reordered.append(self._events.pop())
            reordered.reverse()
            new_secondary = reordered + new_secondary
        out = self._events
        i = j = 0
        while i < len(new_primary) and j < len(new_secondary):
            if new_secondary[j][0] < new_primary[i][0]:
                out.append(new_secondary[j])
                j += 1
            else:
                out.append(new_primary[i])
                i += 1
        out.extend(new_primary[i:])
        out.extend(new_secondary[j:])
        merged = TimedTrace()
        for time, _stream, action in out:
            merged.append(time, action)
        self._cache = merged
        return merged
