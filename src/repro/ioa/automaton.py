"""The :class:`Automaton` base class.

An automaton subclass declares its signature and implements its
transitions in the paper's precondition/effect style:

- ``is_enabled(action)`` evaluates the precondition (inputs are always
  enabled, as the I/O automaton model requires);
- ``apply(action)`` performs the effect;
- ``enabled_actions()`` enumerates the currently enabled locally
  controlled actions, which is what a scheduler chooses among.

State is held in ordinary instance attributes, which keeps the
transcription of the paper's figures direct.  For invariant checking and
simulation proofs the framework needs snapshots of state;
:meth:`Automaton.snapshot` deep-copies the instance ``__dict__`` (minus
framework-internal attributes), and subclasses may override it when they
hold unpicklable members.
"""

from __future__ import annotations

import copy
from abc import ABC, abstractmethod
from collections.abc import Iterator
from typing import Any

from repro.ioa.actions import Action, ActionKind, Signature


class TransitionError(Exception):
    """Raised when a locally controlled action is applied while disabled,
    or an action outside the signature is applied."""


class Automaton(ABC):
    """Base class for (untimed) I/O automata.

    Subclasses must set :attr:`signature` (a :class:`Signature`) before
    use — typically in ``__init__`` — and implement the three transition
    methods.
    """

    #: Attributes excluded from snapshots (framework bookkeeping).
    _SNAPSHOT_EXCLUDE: frozenset[str] = frozenset({"signature", "name"})

    signature: Signature
    name: str = "automaton"

    # ------------------------------------------------------------------
    # Transition interface
    # ------------------------------------------------------------------
    @abstractmethod
    def is_enabled(self, action: Action) -> bool:
        """Evaluate the precondition of ``action`` in the current state.

        Input actions must always return True (input-enabledness); the
        default implementations of :meth:`step` rely on this.
        """

    @abstractmethod
    def apply(self, action: Action) -> None:
        """Perform the effect of ``action`` on the current state."""

    @abstractmethod
    def enabled_actions(self) -> Iterator[Action]:
        """Yield currently enabled locally controlled actions.

        The enumeration need not be exhaustive when the enabled set is
        infinite, but must cover every action that any run of this
        reproduction needs to be able to schedule.
        """

    # ------------------------------------------------------------------
    # Driving
    # ------------------------------------------------------------------
    def step(self, action: Action) -> None:
        """Validate and apply a single transition."""
        if not self.signature.contains(action.name):
            raise TransitionError(f"{self.name}: action {action} not in signature")
        kind = self.signature.kind_of(action.name)
        if kind is not ActionKind.INPUT and not self.is_enabled(action):
            raise TransitionError(f"{self.name}: action {action} not enabled")
        self.apply(action)

    # ------------------------------------------------------------------
    # State snapshotting
    # ------------------------------------------------------------------
    def snapshot(self) -> dict[str, Any]:
        """Deep-copy the automaton state for later inspection.

        The result is a plain dict mapping attribute name to copied
        value; it is *not* meant to be restored into the automaton (runs
        are replayed from seeds instead), only inspected by invariants
        and simulation relations.
        """
        return {
            key: copy.deepcopy(value)
            for key, value in self.__dict__.items()
            if key not in self._SNAPSHOT_EXCLUDE and not key.startswith("_framework")
        }

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name}>"
