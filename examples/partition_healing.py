"""Partition and healing: the paper's headline scenario.

A five-processor group splits into a majority {1,2,3} and a minority
{4,5}.  The majority side (a primary view — it contains a quorum) keeps
confirming and delivering messages; the minority stalls (its view is
non-primary, so nothing can be confirmed there).  When the partition
heals, the VStoTO state-exchange protocol reconciles the histories and
every processor converges to one total order that includes the
minority's buffered messages.

Run with::

    python examples/partition_healing.py
"""

from repro.apps import TotalOrderBroadcast
from repro.net.scenarios import PartitionScenario

SPLIT_AT = 50.0
HEAL_AT = 350.0


def main() -> None:
    processors = [1, 2, 3, 4, 5]
    tob = TotalOrderBroadcast(processors, seed=7)

    scenario = (
        PartitionScenario()
        .add(SPLIT_AT, [[1, 2, 3], [4, 5]])
        .add(HEAL_AT, [[1, 2, 3, 4, 5]])
    )
    tob.install_scenario(scenario)

    # Messages from both sides, before and during the partition.
    for i in range(6):
        tob.schedule_broadcast(10.0 + 5.0 * i, processors[i % 5], f"pre-{i}")
    for i in range(6):
        tob.schedule_broadcast(100.0 + 30.0 * i, 1, f"majority-{i}")
        tob.schedule_broadcast(100.0 + 30.0 * i, 4, f"minority-{i}")

    # --- during the partition ---
    tob.run_until(HEAL_AT - 10.0)
    print(f"t={tob.now:.0f} (partitioned)")
    print(f"  view at 1: {tob.vs.current_view(1)}")
    print(f"  view at 4: {tob.vs.current_view(4)}")
    print(f"  delivered at 1 ({len(tob.delivered(1))} values): "
          f"{tob.delivered(1)}")
    print(f"  delivered at 4 ({len(tob.delivered(4))} values): "
          f"{tob.delivered(4)}")
    majority_progress = len(tob.delivered(1))
    minority_progress = len(tob.delivered(4))
    assert majority_progress > minority_progress

    # --- after healing ---
    tob.run_until(HEAL_AT + 500.0)
    print(f"\nt={tob.now:.0f} (healed)")
    print(f"  common view: {tob.vs.current_view(1)}")
    reference = tob.delivered(1)
    for p in processors:
        assert tob.delivered(p) == reference, f"{p} disagrees"
    print(f"  all 5 processors delivered the same {len(reference)} values,")
    print(f"  including the minority's: "
          f"{[v for v in reference if str(v).startswith('minority')]}")


if __name__ == "__main__":
    main()
