"""A replicated bank ledger on sequentially consistent memory.

The footnote-3 construction in action: three bank branches replicate an
account table.  Deposits and withdrawals are updates sent through the
totally ordered broadcast service; balance inquiries are local reads.
Even with a network partition in the middle of the day, every branch
ends with identical books, and the executable consistency checker
verifies the run.

Run with::

    python examples/replicated_bank.py
"""

import random

from repro.apps import (
    SequentiallyConsistentMemory,
    TotalOrderBroadcast,
    check_sequential_consistency,
)
from repro.net.scenarios import PartitionScenario

BRANCHES = ["london", "nyc", "tokyo"]
ACCOUNTS = ["acct-100", "acct-200", "acct-300"]


def main() -> None:
    tob = TotalOrderBroadcast(BRANCHES, seed=99)
    ledger = SequentiallyConsistentMemory(tob)

    # A mid-day partition separates tokyo from the others.
    tob.install_scenario(
        PartitionScenario()
        .add(100.0, [["london", "nyc"], ["tokyo"]])
        .add(250.0, [BRANCHES])
    )

    rng = random.Random(4)
    t = 5.0
    submitted = 0
    for i in range(40):
        branch = rng.choice(BRANCHES)
        account = rng.choice(ACCOUNTS)
        if rng.random() < 0.6:
            amount = rng.randint(-50, 100)
            ledger.schedule_write(t, branch, account, amount)
            submitted += 1
        else:
            ledger.schedule_read(t, branch, account)
        t += rng.uniform(2.0, 12.0)

    ledger.run_until(t + 500.0)

    print("Final books at each branch:")
    for branch in BRANCHES:
        books = {a: ledger.replicas[branch].get(a) for a in ACCOUNTS}
        print(f"  {branch:8s}: {books}")

    reference = ledger.replicas[BRANCHES[0]]
    for branch in BRANCHES[1:]:
        assert ledger.replicas[branch] == reference, f"{branch} diverged!"

    ok, why = check_sequential_consistency(ledger)
    assert ok, why
    print(f"\n{submitted} updates applied in one global order "
          f"({len(ledger.global_writes)} recorded); "
          f"sequential consistency verified.")


if __name__ == "__main__":
    main()
