"""A fault-tolerant distributed work queue on top of VS.

Four workers share a stream of jobs.  Ownership of each job is a pure
function of the job id and the *current view*, and a worker executes a
job only once the announcement is **safe** (seen by every member), so a
stable group executes every job exactly once with no coordinator.

Mid-run, worker 4 crashes; the group reconfigures and worker 4's
outstanding jobs are automatically re-owned by the survivors — no
recovery code in the application, the view change *is* the failover.

Run with::

    python examples/work_queue.py
"""

from repro.apps import LoadBalancedWorkers, owner_of
from repro.membership.ring import RingConfig
from repro.membership.service import TokenRingVS
from repro.net.scenarios import PartitionScenario

WORKERS = [1, 2, 3, 4]
CRASH_AT = 120.0


def main() -> None:
    service = TokenRingVS(
        WORKERS,
        RingConfig(delta=1.0, pi=8.0, mu=25.0, work_conserving=True),
        seed=13,
    )
    pool = LoadBalancedWorkers(service)

    # Jobs trickle in before and after the crash.  Submissions go
    # through workers 1–3 (a job submitted at a crashed node dies with
    # it, like any client whose front-end is down); ownership still
    # spreads over all four workers while worker 4 is alive.
    for i in range(24):
        submit_time = 5.0 + 9.0 * i
        pool.schedule_submit(submit_time, WORKERS[i % 3], f"job-{i:02d}")

    # Worker 4 crashes at CRASH_AT and never comes back.
    service.install_scenario(
        PartitionScenario().add(CRASH_AT, [[1, 2, 3]])
    )

    pool.run_until(800.0)

    load = pool.load_by_member()
    counts = pool.execution_counts()
    print(f"Jobs executed per worker: {load}")
    print(f"Total executions: {sum(load.values())} for {len(counts)} jobs")

    assert len(counts) == 24, "some job was never executed"
    assert all(n >= 1 for n in counts.values())
    duplicates = {j: n for j, n in counts.items() if n > 1}
    print(f"Jobs re-executed across the reconfiguration: "
          f"{sorted(duplicates) or 'none'}")

    # Jobs initially owned by the crashed worker were taken over.
    initial_view = service.initial_view
    orphaned = [
        job for job in counts
        if owner_of(job, initial_view) == 4
    ]
    survivors_executed = {
        job for job, member, _t in pool.executions if member != 4
    }
    taken_over = [job for job in orphaned if job in survivors_executed]
    print(f"Worker 4 originally owned {len(orphaned)} jobs; "
          f"{len(taken_over)} were taken over by survivors.")


if __name__ == "__main__":
    main()
