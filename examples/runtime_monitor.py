"""Runtime verification: the VS specification as a live monitor.

The paper argues a precisely specified service lets applications (and
operators) reason about behaviour without reading the implementation.
Here the specification is *executed against* the implementation: an
:class:`OnlineVSMonitor` sits in front of the token-ring service and
validates every event — view discipline, per-view total order,
per-sender FIFO, safe-notification causality — while a partition and a
heal play out.  At the end, the trace timeline around the
reconfiguration is printed.

Run with::

    python examples/runtime_monitor.py
"""

from repro.analysis.tracefmt import format_timeline, summarize_trace
from repro.core.monitor import OnlineVSMonitor
from repro.membership.ring import RingConfig
from repro.membership.service import TokenRingVS
from repro.membership.shadow import WeakVSShadow
from repro.net.scenarios import PartitionScenario

PROCS = [1, 2, 3, 4]


def main() -> None:
    vs = TokenRingVS(
        PROCS,
        RingConfig(delta=1.0, pi=8.0, mu=25.0, work_conserving=True),
        seed=21,
    )
    # Two independent verifiers ride along: the trace-level monitor and
    # the WeakVS shadow machine (the Section 8 simulation proof, live).
    shadow = WeakVSShadow(vs)
    monitor = OnlineVSMonitor(PROCS, vs.initial_view)
    monitor.attach(vs)

    vs.install_scenario(
        PartitionScenario()
        .add(40.0, [[1, 2], [3, 4]])
        .add(160.0, [[1, 2, 3, 4]])
    )
    for i in range(10):
        vs.schedule_send(5.0 + 20.0 * i, PROCS[i % 4], f"msg-{i}")

    vs.run_until(500.0)

    print(f"Monitor verdict: {'CONFORMANT' if monitor.ok else 'VIOLATION'}")
    print(f"Events checked online: {monitor.events_checked}")
    shadow.replay_on_strict_machine()
    print(
        f"Shadow simulation: {shadow.steps_simulated} abstract steps "
        f"legal; reordered execution replays on strict VS-machine."
    )
    print(f"Views observed: {sorted(monitor.views)}")
    print(f"Event counts: {summarize_trace(vs.trace)}")

    print("\nTimeline around the reconfigurations (views + sends):")
    window = vs.merged_trace().project({"newview", "gpsnd", "bad", "good"})
    print(format_timeline(window, PROCS, limit=40))

    assert monitor.ok


if __name__ == "__main__":
    main()
