"""A trading-floor ticker: the Isis-style motivation from the paper's
introduction ("timely and consistent data has to be delivered and
filtered at multiple trading floor locations").

Six trading-floor workstations receive a consistent, totally ordered
stream of price updates.  The example also demonstrates the *safe*
indication at the VS level: a workstation only acts on ("executes
against") a price once it is safe, i.e. known to have reached every
workstation in the view — nobody trades on a price a peer has not seen.

Run with::

    python examples/trading_floor.py
"""

from repro.core.quorums import MajorityQuorumSystem
from repro.membership.ring import RingConfig
from repro.membership.service import TokenRingVS

FLOORS = ["nyse-1", "nyse-2", "nyse-3", "zurich-1", "zurich-2", "paris-1"]
SYMBOLS = ["ACME", "GLOBEX", "INITECH"]


def main() -> None:
    config = RingConfig(delta=0.5, pi=5.0, mu=20.0, work_conserving=True)
    vs = TokenRingVS(FLOORS, config, seed=31)

    quotes_seen: dict[str, list] = {f: [] for f in FLOORS}
    executable: dict[str, list] = {f: [] for f in FLOORS}

    vs.on_gprcv = lambda quote, src, dst: quotes_seen[dst].append(quote)
    vs.on_safe = lambda quote, src, dst: executable[dst].append(quote)

    # The first floor publishes a stream of quotes.
    price = 100.0
    for i in range(15):
        price += (-1) ** i * (0.5 + 0.1 * i)
        symbol = SYMBOLS[i % len(SYMBOLS)]
        vs.schedule_send(
            2.0 + 3.0 * i, FLOORS[i % 2], (symbol, round(price, 2))
        )

    vs.run_until(200.0)

    reference = quotes_seen[FLOORS[0]]
    print(f"Ticker stream ({len(reference)} quotes), identical everywhere:")
    for symbol, quote_price in reference[:6]:
        print(f"  {symbol:8s} @ {quote_price}")
    print("  ...")

    for floor in FLOORS:
        assert quotes_seen[floor] == reference, f"{floor} saw a different tape"
        # Safe (executable) quotes are always a prefix of the seen tape.
        n_safe = len(executable[floor])
        assert executable[floor] == reference[:n_safe]

    safe_counts = {f: len(executable[f]) for f in FLOORS}
    print(f"\nEvery floor saw the same tape; executable (safe) prefix "
          f"lengths: {safe_counts}")
    print(f"Protocol stats: {vs.stats()}")


if __name__ == "__main__":
    main()
