"""Quickstart: totally ordered broadcast in five lines of setup.

Five processors broadcast interleaved values; every client observes the
same total order, as the TO specification guarantees.  Run with::

    python examples/quickstart.py
"""

from repro.apps import TotalOrderBroadcast


def main() -> None:
    processors = ["alice", "bob", "carol", "dave", "erin"]
    tob = TotalOrderBroadcast(processors, seed=2024)

    # Everyone broadcasts a couple of messages at staggered times.
    for i in range(10):
        sender = processors[i % len(processors)]
        tob.schedule_broadcast(5.0 + 4.0 * i, sender, f"{sender}-says-{i}")

    tob.run_until(300.0)

    reference = tob.delivered("alice")
    print("Delivered sequence (identical at every processor):")
    for index, value in enumerate(reference, start=1):
        print(f"  {index:2d}. {value}")

    for p in processors:
        assert tob.delivered(p) == reference, f"{p} disagrees!"
    print(f"\nAll {len(processors)} processors agree on all "
          f"{len(reference)} messages.")
    print(f"Network stats: {tob.stats()}")


if __name__ == "__main__":
    main()
