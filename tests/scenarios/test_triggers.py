"""Protocol-event triggers: spec validation, hub wiring, window opening."""

import pytest

from repro.core.quorums import MajorityQuorumSystem
from repro.core.vstoto.runtime import VStoTORuntime
from repro.faults import (
    FaultSchedule,
    ProtocolEventHub,
    TokenLossInjector,
    TriggerSpec,
)
from repro.membership.ring import RingConfig
from repro.membership.service import TokenRingVS
from repro.net.scenarios import PartitionScenario

PROCS = (1, 2, 3, 4, 5)


def split_then_heal(start, stop):
    return (
        PartitionScenario()
        .add(start, ((1, 2, 3), (4, 5)))
        .add(stop, (PROCS,))
    )


def stack(seed=0):
    service = TokenRingVS(
        PROCS, RingConfig(delta=1.0, pi=10.0, mu=30.0), seed=seed
    )
    runtime = VStoTORuntime(service, MajorityQuorumSystem(PROCS))
    return service, runtime


class TestTriggerSpec:
    def test_validation(self):
        with pytest.raises(ValueError, match="unknown trigger event"):
            TriggerSpec(event="supernova", duration=5.0)
        with pytest.raises(ValueError, match="duration"):
            TriggerSpec(event="newview", duration=0.0)
        with pytest.raises(ValueError, match="status"):
            TriggerSpec(event="status_enter", duration=5.0)
        with pytest.raises(ValueError, match="status"):
            TriggerSpec(event="status_enter", duration=5.0, status="zen")
        with pytest.raises(ValueError, match="no status"):
            TriggerSpec(event="newview", duration=5.0, status="normal")
        with pytest.raises(ValueError, match="delay"):
            TriggerSpec(event="newview", duration=5.0, delay=-1.0)

    def test_round_trip(self):
        spec = TriggerSpec(
            event="status_enter",
            status="collect",
            duration=12.0,
            delay=1.5,
            once=False,
            after=30.0,
        )
        assert TriggerSpec.from_dict(spec.to_dict()) == spec


class TestHub:
    def test_status_edges_and_view_events_observed(self):
        service, runtime = stack()
        hub = ProtocolEventHub(service)
        hub.attach_runtime(runtime)
        service.install_scenario(split_then_heal(40.0, 80.0))
        runtime.schedule_broadcast(20.0, 1, "v")
        runtime.run_until(300.0)
        kinds = {e.kind for e in hub.events}
        assert "newview" in kinds
        assert "view_change" in kinds
        assert "status_enter" in kinds
        statuses = {
            e.detail for e in hub.events if e.kind == "status_enter"
        }
        assert {"send", "collect", "normal"} <= statuses

    def test_triggered_window_opens_on_view_change(self):
        service, runtime = stack()
        hub = ProtocolEventHub(service)
        hub.attach_runtime(runtime)
        opened = []
        hub.add_window_observer(lambda kind, a, b: opened.append((kind, a, b)))
        injector = TokenLossInjector("tl", rate=1.0)
        schedule = FaultSchedule(horizon=200.0)
        schedule.add_triggered(
            injector, TriggerSpec(event="view_change", duration=10.0, after=30.0)
        )
        schedule.install(service, hub=hub)
        service.install_scenario(split_then_heal(40.0, 80.0))
        runtime.run_until(300.0)
        assert injector.activations == 1
        assert len(opened) == 1
        kind, start, stop = opened[0]
        assert kind == "token_loss"
        assert 30.0 <= start < stop <= 200.0

    def test_once_false_fires_repeatedly(self):
        service, runtime = stack()
        hub = ProtocolEventHub(service)
        hub.attach_runtime(runtime)
        injector = TokenLossInjector("tl", rate=0.0)
        schedule = FaultSchedule(horizon=400.0)
        schedule.add_triggered(
            injector,
            TriggerSpec(event="newview", duration=5.0, once=False, after=30.0),
        )
        schedule.install(service, hub=hub)
        service.install_scenario(split_then_heal(40.0, 80.0))
        runtime.run_until(500.0)
        assert injector.activations > 1

    def test_install_with_triggered_requires_hub(self):
        service, _ = stack()
        schedule = FaultSchedule(horizon=100.0)
        schedule.add_triggered(
            TokenLossInjector("tl", rate=1.0),
            TriggerSpec(event="newview", duration=5.0),
        )
        with pytest.raises(ValueError, match="ProtocolEventHub"):
            schedule.install(service)

    def test_windows_clamped_to_horizon(self):
        service, runtime = stack()
        hub = ProtocolEventHub(service)
        hub.attach_runtime(runtime)
        opened = []
        hub.add_window_observer(lambda kind, a, b: opened.append((a, b)))
        schedule = FaultSchedule(horizon=120.0)
        schedule.add_triggered(
            TokenLossInjector("tl", rate=1.0),
            TriggerSpec(event="view_change", duration=500.0, after=30.0),
        )
        schedule.install(service, hub=hub)
        service.install_scenario(split_then_heal(40.0, 80.0))
        runtime.run_until(300.0)
        assert opened
        for start, stop in opened:
            assert start < 120.0
            # A 500-long window cannot fit before the horizon: clamped.
            assert stop == 120.0
