"""Shrinker acceptance: the ISSUE's end-to-end delta-debugging demo.

A seeded six-window violating schedule — one planted forced-violation
window among five innocuous decoys — must shrink to at most two windows
that still reproduce, deterministically, and the emitted scenario file
must re-run to the same verdict.
"""

import pytest

from repro.faults import (
    FaultSchedule,
    ForcedViolationInjector,
    PacketLossInjector,
    TokenLossInjector,
)
from repro.scenarios import (
    ScenarioSpec,
    run_scenario,
    shrink_scenario,
)


def violating_spec(seed=11):
    schedule = FaultSchedule(horizon=120.0)
    schedule.add(PacketLossInjector("decoy1", rate=0.2), 20.0, 50.0)
    schedule.add(TokenLossInjector("decoy2", rate=0.3), 30.0, 60.0)
    schedule.add(PacketLossInjector("decoy3", rate=0.1), 40.0, 80.0)
    schedule.add(ForcedViolationInjector("planted"), 55.0, 75.0)
    schedule.add(TokenLossInjector("decoy4", rate=0.2), 60.0, 90.0)
    schedule.add(PacketLossInjector("decoy5", rate=0.15), 70.0, 110.0)
    return ScenarioSpec(
        name="shrink-demo",
        schedule=schedule.to_dict(),
        processors=3,
        seed=seed,
        sends=3,
        settle=150.0,
    )


@pytest.fixture(scope="module")
def shrunk():
    return shrink_scenario(violating_spec())


class TestShrinkDemo:
    def test_six_windows_shrink_to_at_most_two(self, shrunk):
        assert shrunk.windows_before == 6
        assert shrunk.windows_after <= 2
        assert shrunk.verdict == "violation"

    def test_minimal_keeps_the_planted_window(self, shrunk):
        kinds = [
            w["injector"]["kind"]
            for w in shrunk.minimal.schedule["windows"]
        ]
        assert "forced_violation" in kinds

    def test_deterministic(self, shrunk):
        again = shrink_scenario(violating_spec())
        assert again.minimal == shrunk.minimal
        assert again.evaluations == shrunk.evaluations
        assert again.steps == shrunk.steps

    def test_emitted_file_reruns_to_same_verdict(self, shrunk, tmp_path):
        path = tmp_path / "minimal.json"
        shrunk.minimal.save(path)
        outcome = run_scenario(ScenarioSpec.load(path))
        assert outcome.verdict == shrunk.verdict


class TestShrinkGuards:
    def test_clean_scenario_rejected(self):
        schedule = FaultSchedule(horizon=60.0)
        schedule.add(PacketLossInjector("mild", rate=0.05), 20.0, 30.0)
        spec = ScenarioSpec(
            name="clean",
            schedule=schedule.to_dict(),
            processors=3,
            seed=0,
            sends=2,
            settle=120.0,
        )
        with pytest.raises(ValueError, match="runs clean"):
            shrink_scenario(spec)
