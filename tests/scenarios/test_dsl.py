"""Scenario DSL: journey construction, serialization, execution."""

import json

import pytest

from repro.scenarios import (
    JOURNEYS,
    CoverageReport,
    ScenarioSpec,
    build_journey,
    journey_suite,
    run_scenario,
)


class TestSpecs:
    def test_every_journey_builds_and_round_trips(self):
        for name in JOURNEYS:
            spec = build_journey(name, processors=5, seed=3)
            clone = ScenarioSpec.from_dict(
                json.loads(json.dumps(spec.to_dict()))
            )
            assert clone == spec

    def test_save_load(self, tmp_path):
        spec = build_journey("majority_split", processors=5, seed=1)
        path = tmp_path / "scenario.json"
        spec.save(path)
        assert ScenarioSpec.load(path) == spec

    def test_unknown_journey_rejected(self):
        with pytest.raises(ValueError, match="unknown journey"):
            build_journey("warp-drive")

    def test_too_few_processors_rejected(self):
        with pytest.raises(ValueError):
            build_journey("majority_split", processors=2)

    def test_bad_schedule_rejected_at_construction(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            ScenarioSpec(
                name="bad",
                schedule={
                    "windows": [
                        {
                            "start": 0.0,
                            "stop": 10.0,
                            "injector": {"kind": "warp-drive", "name": "x"},
                        }
                    ]
                },
            )

    def test_suite_covers_every_journey_per_seed(self):
        suite = journey_suite(processors=5, seeds=(0, 1))
        assert len(suite) == 2 * len(JOURNEYS)
        assert {s.name for s in suite} == {
            f"{name}@{seed}" for name in JOURNEYS for seed in (0, 1)
        }


class TestExecution:
    def test_majority_split_runs_clean_with_coverage(self):
        outcome = run_scenario(
            build_journey("majority_split", processors=5, seed=0)
        )
        assert outcome.verdict == "ok"
        coverage = CoverageReport.from_dict(outcome.report.coverage)
        # The split must exercise both shrink directions and the heal.
        assert "shrink:primary" in coverage.view_edges
        assert "shrink:non_primary" in coverage.view_edges
        assert "grow:primary" in coverage.view_edges
        assert "partition@normal" in coverage.fault_status_pairs

    def test_triggered_journey_fires_its_window(self):
        outcome = run_scenario(
            build_journey(
                "token_loss_during_view_change", processors=5, seed=0
            )
        )
        assert outcome.verdict == "ok"
        coverage = CoverageReport.from_dict(outcome.report.coverage)
        assert coverage.triggered_windows >= 1
        assert any(
            pair.startswith("token_loss@")
            for pair in coverage.fault_status_pairs
        )

    def test_scenario_run_is_deterministic(self):
        spec = build_journey("flapping_link", processors=5, seed=4)
        a = run_scenario(spec)
        b = run_scenario(spec)
        assert a.verdict == b.verdict
        assert a.report.coverage == b.report.coverage
        assert a.report.stats == b.report.stats
